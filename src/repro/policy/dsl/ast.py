"""AST nodes for the GRBAC policy DSL.

Each statement in a policy text parses to exactly one node; nodes are
plain frozen dataclasses carrying the source line for error reporting.
The grammar is documented in :mod:`repro.policy.dsl.parser`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class Statement:
    """Base class for all DSL statements."""

    #: 1-based source line, for diagnostics.
    line: int


@dataclass(frozen=True)
class RoleDecl(Statement):
    """``subject|object|environment role NAME [extends PARENT]``"""

    kind: str  # "subject" | "object" | "environment"
    name: str = ""
    extends: Optional[str] = None


@dataclass(frozen=True)
class SubjectDecl(Statement):
    """``subject NAME is ROLE[, ROLE ...]``"""

    name: str = ""
    roles: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ObjectDecl(Statement):
    """``object NAME is ROLE[, ROLE ...]``"""

    name: str = ""
    roles: Tuple[str, ...] = ()


@dataclass(frozen=True)
class TransactionDecl(Statement):
    """``transaction NAME``"""

    name: str = ""


@dataclass(frozen=True)
class RuleDecl(Statement):
    """``[priority N] allow|deny SROLE to TXN[, TXN] [on OROLE]
    [when EROLE] [if confidence >= P%]``"""

    sign: str = "allow"  # "allow" | "deny"
    subject_role: str = ""
    transactions: Tuple[str, ...] = ()
    object_role: Optional[str] = None
    environment_role: Optional[str] = None
    min_confidence: float = 0.0
    priority: int = 0


@dataclass(frozen=True)
class ConstraintDecl(Statement):
    """``constraint ssd|dsd NAME between R1 and R2 [and R3 ...] [limit N]``"""

    flavor: str = "ssd"  # "ssd" | "dsd"
    name: str = ""
    roles: Tuple[str, ...] = ()
    limit: int = 1


@dataclass(frozen=True)
class PrecedenceDecl(Statement):
    """``precedence STRATEGY``"""

    strategy: str = "deny-overrides"


@dataclass(frozen=True)
class DefaultDecl(Statement):
    """``default allow|deny``"""

    sign: str = "deny"
