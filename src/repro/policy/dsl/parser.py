"""Parser for the GRBAC policy DSL.

Grammar (one statement per line; ``#`` comments; case-sensitive
keywords, lowercase)::

    statement :=
        "subject" "role" NAME ["extends" NAME]
      | "object" "role" NAME ["extends" NAME]
      | "environment" "role" NAME
      | "subject" NAME ["is" NAME ("," NAME)*]
      | "object" NAME ["is" NAME ("," NAME)*]
      | "transaction" NAME
      | ["priority" INT] ("allow" | "deny") NAME
            "to" NAME ("," NAME)*
            ["on" NAME] ["when" NAME]
            ["if" "confidence" ">=" PERCENT]
      | "constraint" ("ssd" | "dsd") NAME
            "between" NAME ("and" NAME)+ ["limit" INT]
      | "precedence" NAME
      | "default" ("allow" | "deny")

The §5.1 policy in this language::

    subject role family-member
    subject role parent extends family-member
    subject role child extends family-member
    object role entertainment-devices
    environment role weekday-free-time
    subject alice is child
    object livingroom/tv is entertainment-devices
    allow child to watch on entertainment-devices when weekday-free-time
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.exceptions import PolicySyntaxError
from repro.policy.dsl.ast import (
    ConstraintDecl,
    DefaultDecl,
    ObjectDecl,
    PrecedenceDecl,
    RoleDecl,
    RuleDecl,
    Statement,
    SubjectDecl,
    TransactionDecl,
)
from repro.policy.dsl.lexer import COMMA, GTE, NUMBER, PERCENT, WORD, Token, tokenize


class _LineParser:
    """Recursive-descent over one line's token list."""

    def __init__(self, tokens: List[Token], line: int) -> None:
        self._tokens = tokens
        self._line = line
        self._position = 0

    # --- primitives -----------------------------------------------------
    def peek(self) -> Optional[Token]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise PolicySyntaxError("unexpected end of statement", line=self._line)
        self._position += 1
        return token

    def expect_word(self, *expected: str) -> Token:
        token = self.next()
        if token.kind != WORD or (expected and token.text not in expected):
            wanted = " or ".join(repr(e) for e in expected) or "an identifier"
            raise PolicySyntaxError(
                f"expected {wanted}, got {token.text!r}",
                line=self._line,
                column=token.column,
            )
        return token

    def expect_name(self) -> str:
        token = self.next()
        if token.kind != WORD:
            raise PolicySyntaxError(
                f"expected a name, got {token.text!r}",
                line=self._line,
                column=token.column,
            )
        return token.text

    def at_word(self, text: str) -> bool:
        token = self.peek()
        return token is not None and token.kind == WORD and token.text == text

    def accept_word(self, text: str) -> bool:
        if self.at_word(text):
            self._position += 1
            return True
        return False

    def expect_end(self) -> None:
        token = self.peek()
        if token is not None:
            raise PolicySyntaxError(
                f"unexpected trailing input {token.text!r}",
                line=self._line,
                column=token.column,
            )

    def name_list(self, separator_kind: str = COMMA) -> Tuple[str, ...]:
        names = [self.expect_name()]
        while True:
            token = self.peek()
            if token is not None and token.kind == separator_kind:
                self.next()
                names.append(self.expect_name())
            else:
                break
        return tuple(names)

    # --- statements -----------------------------------------------------
    def parse(self) -> Statement:
        token = self.peek()
        if token is None:  # pragma: no cover - tokenize skips empties
            raise PolicySyntaxError("empty statement", line=self._line)
        head = token.text
        if head in ("subject", "object"):
            return self._parse_subject_or_object(head)
        if head == "environment":
            return self._parse_environment()
        if head == "transaction":
            self.next()
            name = self.expect_name()
            self.expect_end()
            return TransactionDecl(self._line, name)
        if head in ("allow", "deny", "priority"):
            return self._parse_rule()
        if head == "constraint":
            return self._parse_constraint()
        if head == "precedence":
            self.next()
            strategy = self.expect_name()
            self.expect_end()
            return PrecedenceDecl(self._line, strategy)
        if head == "default":
            self.next()
            sign = self.expect_word("allow", "deny").text
            self.expect_end()
            return DefaultDecl(self._line, sign)
        raise PolicySyntaxError(
            f"unknown statement {head!r}", line=self._line, column=token.column
        )

    def _parse_subject_or_object(self, kind: str) -> Statement:
        self.next()  # consume "subject"/"object"
        if self.accept_word("role"):
            name = self.expect_name()
            extends = self.expect_name() if self.accept_word("extends") else None
            self.expect_end()
            return RoleDecl(self._line, kind, name, extends)
        name = self.expect_name()
        roles: Tuple[str, ...] = ()
        if self.accept_word("is"):
            roles = self.name_list()
        self.expect_end()
        if kind == "subject":
            return SubjectDecl(self._line, name, roles)
        return ObjectDecl(self._line, name, roles)

    def _parse_environment(self) -> Statement:
        self.next()
        self.expect_word("role")
        name = self.expect_name()
        extends = self.expect_name() if self.accept_word("extends") else None
        self.expect_end()
        return RoleDecl(self._line, "environment", name, extends)

    def _parse_rule(self) -> RuleDecl:
        priority = 0
        if self.accept_word("priority"):
            token = self.next()
            if token.kind != NUMBER:
                raise PolicySyntaxError(
                    "priority needs an integer", line=self._line, column=token.column
                )
            priority = int(token.number)
        sign = self.expect_word("allow", "deny").text
        subject_role = self.expect_name()
        self.expect_word("to")
        transactions = self.name_list()
        object_role = self.expect_name() if self.accept_word("on") else None
        environment_role = self.expect_name() if self.accept_word("when") else None
        min_confidence = 0.0
        if self.accept_word("if"):
            self.expect_word("confidence")
            token = self.next()
            if token.kind != GTE:
                raise PolicySyntaxError(
                    "expected '>=' after 'confidence'",
                    line=self._line,
                    column=token.column,
                )
            token = self.next()
            if token.kind not in (PERCENT, NUMBER):
                raise PolicySyntaxError(
                    "confidence needs a percentage",
                    line=self._line,
                    column=token.column,
                )
            min_confidence = token.number
            if token.kind == NUMBER and min_confidence > 1.0:
                # Allow "90" to mean 90%.
                min_confidence /= 100.0
        self.expect_end()
        return RuleDecl(
            self._line,
            sign,
            subject_role,
            transactions,
            object_role,
            environment_role,
            min_confidence,
            priority,
        )

    def _parse_constraint(self) -> ConstraintDecl:
        self.next()
        flavor = self.expect_word("ssd", "dsd").text
        name = self.expect_name()
        self.expect_word("between")
        roles = [self.expect_name()]
        while self.accept_word("and"):
            roles.append(self.expect_name())
        if len(roles) < 2:
            raise PolicySyntaxError(
                "constraint needs at least two roles", line=self._line
            )
        limit = 1
        if self.accept_word("limit"):
            token = self.next()
            if token.kind != NUMBER:
                raise PolicySyntaxError(
                    "limit needs an integer", line=self._line, column=token.column
                )
            limit = int(token.number)
        self.expect_end()
        return ConstraintDecl(self._line, flavor, name, tuple(roles), limit)


def parse(source: str) -> List[Statement]:
    """Parse policy text into a statement list.

    :raises PolicySyntaxError: on the first malformed statement.
    """
    statements: List[Statement] = []
    for line_number, tokens in tokenize(source):
        statements.append(_LineParser(tokens, line_number).parse())
    return statements
