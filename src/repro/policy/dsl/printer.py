"""Pretty-printer: a :class:`~repro.core.GrbacPolicy` back to DSL text.

The inverse of the compiler, for the administrative story: "show me
what the house enforces" should produce something a homeowner can
read, edit, and re-apply.  Round-trip property (tested):
``compile_policy(print_policy(p))`` decides identically to ``p``.

Limitations, by construction of the DSL:

* subject/object *attributes* have no DSL syntax and are dropped —
  use the JSON serializer for lossless storage;
* multi-operation transactions print as bare ``transaction`` lines
  (the operation list has no DSL syntax);
* cardinality/prerequisite constraints have no DSL syntax and raise,
  since silently dropping a constraint would weaken the policy.
"""

from __future__ import annotations

from typing import List

from repro.core.permissions import Permission, Sign
from repro.core.policy import GrbacPolicy
from repro.core.roles import ANY_ENVIRONMENT, ANY_OBJECT
from repro.exceptions import PolicyError


def print_policy(policy: GrbacPolicy) -> str:
    """Render ``policy`` as DSL text.

    :raises PolicyError: if the policy uses constraints the DSL cannot
        express (cardinality, prerequisite).
    """
    if policy.constraints.cardinality or policy.constraints.prerequisite:
        raise PolicyError(
            "cardinality/prerequisite constraints have no DSL syntax; "
            "use repro.policy.serialize for lossless storage"
        )
    lines: List[str] = [f"# policy {policy.name!r}", ""]

    lines += _role_section(policy, "subject", policy.subject_roles, set())
    lines += _role_section(
        policy, "object", policy.object_roles, {ANY_OBJECT.name}
    )
    lines += _role_section(
        policy, "environment", policy.environment_roles, {ANY_ENVIRONMENT.name}
    )

    entity_lines: List[str] = []
    for subject in policy.subjects():
        roles = sorted(policy.authorized_subject_role_names(subject.name))
        suffix = f" is {', '.join(roles)}" if roles else ""
        entity_lines.append(f"subject {subject.name}{suffix}")
    for obj in policy.objects():
        roles = sorted(r.name for r in policy.direct_object_roles(obj.name))
        suffix = f" is {', '.join(roles)}" if roles else ""
        entity_lines.append(f"object {obj.name}{suffix}")
    referenced = {p.transaction.name for p in policy.permissions()}
    for transaction in policy.transactions():
        if transaction.name not in referenced:
            entity_lines.append(f"transaction {transaction.name}")
    if entity_lines:
        lines += entity_lines + [""]

    for permission in policy.permissions():
        lines.append(_rule_line(permission))
    if policy.permissions():
        lines.append("")

    for sod in policy.constraints.static_sod + policy.constraints.dynamic_sod:
        flavor = "ssd" if sod.static else "dsd"
        roles = " and ".join(sorted(sod.roles))
        limit = f" limit {sod.limit}" if sod.limit != 1 else ""
        lines.append(f"constraint {flavor} {sod.name} between {roles}{limit}")
    if policy.constraints.static_sod or policy.constraints.dynamic_sod:
        lines.append("")

    lines.append(f"precedence {policy.precedence.value}")
    lines.append(f"default {policy.default_sign.value}")
    return "\n".join(lines) + "\n"


def _role_section(policy, kind: str, hierarchy, skip) -> List[str]:
    lines: List[str] = []
    parents = {
        child.name: parent.name for child, parent in hierarchy.edges()
    }
    multi_parent = {}
    for child, parent in hierarchy.edges():
        multi_parent.setdefault(child.name, []).append(parent.name)
    for role in hierarchy.roles():
        if role.name in skip:
            continue
        parent_list = sorted(multi_parent.get(role.name, []))
        if not parent_list:
            lines.append(f"{kind} role {role.name}")
        else:
            # The grammar carries one `extends` per declaration; emit
            # one declaration for the first parent and explicit extra
            # declarations for the rest (re-declaration is idempotent).
            lines.append(f"{kind} role {role.name} extends {parent_list[0]}")
            for extra in parent_list[1:]:
                lines.append(f"{kind} role {role.name} extends {extra}")
    del parents
    if lines:
        lines.append("")
    return lines


def _rule_line(permission: Permission) -> str:
    verb = "allow" if permission.sign is Sign.GRANT else "deny"
    parts: List[str] = []
    if permission.priority:
        parts.append(f"priority {permission.priority}")
    parts.append(verb)
    parts.append(permission.subject_role.name)
    parts.append(f"to {permission.transaction.name}")
    if permission.object_role != ANY_OBJECT:
        parts.append(f"on {permission.object_role.name}")
    if permission.environment_role != ANY_ENVIRONMENT:
        parts.append(f"when {permission.environment_role.name}")
    if permission.min_confidence > 0:
        percent = permission.min_confidence * 100
        rendered = f"{percent:.10g}"
        parts.append(f"if confidence >= {rendered}%")
    return " ".join(parts)
