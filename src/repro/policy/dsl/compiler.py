"""Compiler: DSL statements → a :class:`~repro.core.GrbacPolicy`.

Compilation is strict about *references*: a rule, assignment, or
constraint naming an undeclared role is a
:class:`~repro.exceptions.PolicyCompileError` with the offending line
— exactly the "policy bug" feedback the paper says hierarchies and
clean structure should help surface (§4.1.2).

Two passes: declarations first (roles, subjects, objects,
transactions, configuration), then rules and constraints — so the
order of statements in the source does not matter.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.constraints import SeparationOfDuty
from repro.core.permissions import Sign
from repro.core.policy import GrbacPolicy
from repro.core.precedence import PrecedenceStrategy
from repro.core.roles import ANY_ENVIRONMENT, ANY_OBJECT
from repro.exceptions import GrbacError, PolicyCompileError
from repro.policy.dsl.ast import (
    ConstraintDecl,
    DefaultDecl,
    ObjectDecl,
    PrecedenceDecl,
    RoleDecl,
    RuleDecl,
    Statement,
    SubjectDecl,
    TransactionDecl,
)
from repro.policy.dsl.parser import parse

_STRATEGIES = {strategy.value: strategy for strategy in PrecedenceStrategy}


def compile_statements(
    statements: List[Statement],
    policy: Optional[GrbacPolicy] = None,
    name: str = "dsl-policy",
) -> GrbacPolicy:
    """Compile parsed statements into (or onto) a policy.

    :param policy: extend an existing policy instead of creating one —
        the SecureHome flow declares devices programmatically and then
        layers DSL-authored rules on top.
    """
    target = policy if policy is not None else GrbacPolicy(name)

    # Three passes so statement order never matters: roles and
    # configuration first, then entities (which reference roles), then
    # rules and constraints (which reference both).
    role_decls = [
        s
        for s in statements
        if isinstance(s, (RoleDecl, TransactionDecl, PrecedenceDecl, DefaultDecl))
    ]
    entity_decls = [s for s in statements if isinstance(s, (SubjectDecl, ObjectDecl))]
    rules = [s for s in statements if isinstance(s, (RuleDecl, ConstraintDecl))]

    for statement in role_decls + entity_decls:
        _compile_declaration(statement, target)
    for statement in rules:
        if isinstance(statement, RuleDecl):
            _compile_rule(statement, target)
        else:
            _compile_constraint(statement, target)
    return target


def compile_policy(
    source: str,
    policy: Optional[GrbacPolicy] = None,
    name: str = "dsl-policy",
) -> GrbacPolicy:
    """Parse and compile policy text in one call."""
    return compile_statements(parse(source), policy=policy, name=name)


# ----------------------------------------------------------------------
# Statement handlers
# ----------------------------------------------------------------------
def _fail(statement: Statement, message: str) -> "PolicyCompileError":
    return PolicyCompileError(f"line {statement.line}: {message}")


def _compile_declaration(statement: Statement, policy: GrbacPolicy) -> None:
    if isinstance(statement, RoleDecl):
        adders = {
            "subject": (policy.add_subject_role, policy.subject_roles),
            "object": (policy.add_object_role, policy.object_roles),
            "environment": (policy.add_environment_role, policy.environment_roles),
        }
        add, hierarchy = adders[statement.kind]
        add(statement.name)
        if statement.extends is not None:
            add(statement.extends)
            try:
                hierarchy.add_specialization(statement.name, statement.extends)
            except GrbacError as error:
                raise _fail(statement, str(error)) from error
        return
    if isinstance(statement, SubjectDecl):
        policy.add_subject(statement.name)
        for role in statement.roles:
            if role not in policy.subject_roles:
                raise _fail(statement, f"undeclared subject role {role!r}")
            policy.assign_subject(statement.name, role)
        return
    if isinstance(statement, ObjectDecl):
        policy.add_object(statement.name)
        for role in statement.roles:
            if role not in policy.object_roles:
                raise _fail(statement, f"undeclared object role {role!r}")
            policy.assign_object(statement.name, role)
        return
    if isinstance(statement, TransactionDecl):
        policy.add_transaction(statement.name)
        return
    if isinstance(statement, PrecedenceDecl):
        strategy = _STRATEGIES.get(statement.strategy)
        if strategy is None:
            raise _fail(
                statement,
                f"unknown precedence {statement.strategy!r} "
                f"(choices: {sorted(_STRATEGIES)})",
            )
        policy.precedence = strategy
        return
    if isinstance(statement, DefaultDecl):
        policy.default_sign = Sign.GRANT if statement.sign == "allow" else Sign.DENY
        return
    raise _fail(statement, f"unhandled statement {type(statement).__name__}")


def _compile_rule(statement: RuleDecl, policy: GrbacPolicy) -> None:
    if statement.subject_role not in policy.subject_roles:
        raise _fail(statement, f"undeclared subject role {statement.subject_role!r}")
    object_role = statement.object_role or ANY_OBJECT.name
    if object_role not in policy.object_roles:
        raise _fail(statement, f"undeclared object role {object_role!r}")
    environment_role = statement.environment_role or ANY_ENVIRONMENT.name
    if environment_role not in policy.environment_roles:
        raise _fail(
            statement, f"undeclared environment role {environment_role!r}"
        )
    add = policy.grant if statement.sign == "allow" else policy.deny
    for transaction in statement.transactions:
        try:
            add(
                statement.subject_role,
                transaction,
                object_role,
                environment_role,
                min_confidence=statement.min_confidence,
                priority=statement.priority,
                name=f"dsl-line-{statement.line}",
            )
        except GrbacError as error:
            raise _fail(statement, str(error)) from error


def _compile_constraint(statement: ConstraintDecl, policy: GrbacPolicy) -> None:
    for role in statement.roles:
        if role not in policy.subject_roles:
            raise _fail(statement, f"undeclared subject role {role!r}")
    try:
        policy.add_constraint(
            SeparationOfDuty(
                statement.name,
                statement.roles,
                static=(statement.flavor == "ssd"),
                limit=statement.limit,
            )
        )
    except GrbacError as error:
        raise _fail(statement, str(error)) from error
