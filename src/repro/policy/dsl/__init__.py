"""The GRBAC policy DSL: lexer, parser, AST, and compiler.

Entry points: :func:`~repro.policy.dsl.parser.parse` for text → AST
and :func:`~repro.policy.dsl.compiler.compile_policy` for text →
:class:`~repro.core.GrbacPolicy`.
"""

from repro.policy.dsl.ast import (
    ConstraintDecl,
    DefaultDecl,
    ObjectDecl,
    PrecedenceDecl,
    RoleDecl,
    RuleDecl,
    Statement,
    SubjectDecl,
    TransactionDecl,
)
from repro.policy.dsl.compiler import compile_policy, compile_statements
from repro.policy.dsl.lexer import Token, tokenize, tokenize_line
from repro.policy.dsl.parser import parse

__all__ = [
    "ConstraintDecl",
    "DefaultDecl",
    "ObjectDecl",
    "PrecedenceDecl",
    "RoleDecl",
    "RuleDecl",
    "Statement",
    "SubjectDecl",
    "Token",
    "TransactionDecl",
    "compile_policy",
    "compile_statements",
    "parse",
    "tokenize",
    "tokenize_line",
]
