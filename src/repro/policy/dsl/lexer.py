"""Tokenizer for the GRBAC policy DSL.

The language is line-oriented: one statement per line, ``#`` to end of
line is a comment, blank lines are ignored.  Tokens within a line are
words (identifiers/keywords — identifiers may contain ``-``, ``/``,
``.`` and ``_``), integers, percentages (``90%``), the comparison
``>=``, and commas.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.exceptions import PolicySyntaxError

#: token kinds
WORD = "word"
NUMBER = "number"
PERCENT = "percent"
COMMA = "comma"
GTE = "gte"

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#.*)
  | (?P<gte>>=)
  | (?P<percent>\d+(?:\.\d+)?%)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<comma>,)
  | (?P<word>[A-Za-z_][A-Za-z0-9_\-/.]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    kind: str
    text: str
    line: int
    column: int

    @property
    def number(self) -> float:
        """Numeric value for NUMBER/PERCENT tokens (percent as 0..1)."""
        if self.kind == PERCENT:
            return float(self.text[:-1]) / 100.0
        return float(self.text)


def tokenize_line(text: str, line_number: int) -> List[Token]:
    """Tokenize one source line.

    :raises PolicySyntaxError: on an unrecognized character.
    """
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise PolicySyntaxError(
                f"unexpected character {text[position]!r}",
                line=line_number,
                column=position + 1,
            )
        position = match.end()
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            continue
        tokens.append(Token(kind, match.group(), line_number, match.start() + 1))
    return tokens


def tokenize(source: str) -> Iterator[Tuple[int, List[Token]]]:
    """Yield ``(line_number, tokens)`` for every non-empty line."""
    for line_number, line in enumerate(source.splitlines(), start=1):
        tokens = tokenize_line(line, line_number)
        if tokens:
            yield line_number, tokens
