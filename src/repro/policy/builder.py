"""Fluent programmatic policy builder.

The usability argument of the paper is about *policy authoring*:
"ease of security policy definition and implementation is a key
requirement" (§1).  For Python-native callers the builder provides a
declarative, chainable surface over :class:`~repro.core.GrbacPolicy`::

    policy = (
        PolicyBuilder("home")
        .subject_role("family-member")
        .subject_role("parent", extends="family-member")
        .subject_role("child", extends="family-member")
        .subject("alice", roles=["child"])
        .object_role("entertainment-devices")
        .object("livingroom/tv", roles=["entertainment-devices"])
        .environment_role("free-time")
        .allow("child", "watch", on="entertainment-devices", when="free-time")
        .build()
    )

(For non-programmers the same vocabulary exists as a text DSL in
:mod:`repro.policy.dsl`.)
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.constraints import (
    CardinalityConstraint,
    PrerequisiteConstraint,
    SeparationOfDuty,
)
from repro.core.permissions import Sign
from repro.core.policy import GrbacPolicy
from repro.core.precedence import PrecedenceStrategy
from repro.core.roles import ANY_ENVIRONMENT, ANY_OBJECT


class PolicyBuilder:
    """Chainable construction of a :class:`GrbacPolicy`."""

    def __init__(self, name: str = "policy") -> None:
        self._policy = GrbacPolicy(name)

    # ------------------------------------------------------------------
    # Roles
    # ------------------------------------------------------------------
    def subject_role(
        self, name: str, extends: Optional[str] = None, description: str = ""
    ) -> "PolicyBuilder":
        """Declare a subject role, optionally specializing another."""
        self._policy.add_subject_role(name, description)
        if extends is not None:
            self._policy.add_subject_role(extends)
            self._policy.subject_roles.add_specialization(name, extends)
        return self

    def object_role(
        self, name: str, extends: Optional[str] = None, description: str = ""
    ) -> "PolicyBuilder":
        """Declare an object role, optionally specializing another."""
        self._policy.add_object_role(name, description)
        if extends is not None:
            self._policy.add_object_role(extends)
            self._policy.object_roles.add_specialization(name, extends)
        return self

    def environment_role(
        self, name: str, extends: Optional[str] = None, description: str = ""
    ) -> "PolicyBuilder":
        """Declare an environment role, optionally specializing another."""
        self._policy.add_environment_role(name, description)
        if extends is not None:
            self._policy.add_environment_role(extends)
            self._policy.environment_roles.add_specialization(name, extends)
        return self

    # ------------------------------------------------------------------
    # Entities
    # ------------------------------------------------------------------
    def subject(
        self, name: str, roles: Iterable[str] = (), **attributes
    ) -> "PolicyBuilder":
        """Register a subject and assign its roles."""
        self._policy.add_subject(name, **attributes)
        for role in roles:
            self._policy.assign_subject(name, role)
        return self

    def object(
        self, name: str, roles: Iterable[str] = (), **attributes
    ) -> "PolicyBuilder":
        """Register an object and classify it."""
        self._policy.add_object(name, **attributes)
        for role in roles:
            self._policy.assign_object(name, role)
        return self

    def transaction(self, name: str) -> "PolicyBuilder":
        """Register a transaction."""
        self._policy.add_transaction(name)
        return self

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    def allow(
        self,
        subject_role: str,
        *transactions: str,
        on: str = ANY_OBJECT.name,
        when: str = ANY_ENVIRONMENT.name,
        min_confidence: float = 0.0,
        priority: int = 0,
        name: str = "",
    ) -> "PolicyBuilder":
        """Add GRANT rules (one per transaction)."""
        return self._rule(
            Sign.GRANT, subject_role, transactions, on, when,
            min_confidence, priority, name,
        )

    def deny(
        self,
        subject_role: str,
        *transactions: str,
        on: str = ANY_OBJECT.name,
        when: str = ANY_ENVIRONMENT.name,
        min_confidence: float = 0.0,
        priority: int = 0,
        name: str = "",
    ) -> "PolicyBuilder":
        """Add DENY rules (one per transaction)."""
        return self._rule(
            Sign.DENY, subject_role, transactions, on, when,
            min_confidence, priority, name,
        )

    def _rule(
        self,
        sign: Sign,
        subject_role: str,
        transactions: Sequence[str],
        on: str,
        when: str,
        min_confidence: float,
        priority: int,
        name: str,
    ) -> "PolicyBuilder":
        add = self._policy.grant if sign is Sign.GRANT else self._policy.deny
        for index, transaction in enumerate(transactions):
            rule_name = name if len(transactions) == 1 or not name else f"{name}-{index}"
            add(
                subject_role,
                transaction,
                on,
                when,
                min_confidence=min_confidence,
                priority=priority,
                name=rule_name,
            )
        return self

    # ------------------------------------------------------------------
    # Constraints & configuration
    # ------------------------------------------------------------------
    def static_sod(
        self, name: str, roles: Iterable[str], limit: int = 1
    ) -> "PolicyBuilder":
        """Add a static separation-of-duty constraint."""
        self._policy.add_constraint(SeparationOfDuty(name, roles, static=True, limit=limit))
        return self

    def dynamic_sod(
        self, name: str, roles: Iterable[str], limit: int = 1
    ) -> "PolicyBuilder":
        """Add a dynamic separation-of-duty constraint."""
        self._policy.add_constraint(SeparationOfDuty(name, roles, static=False, limit=limit))
        return self

    def cardinality(self, name: str, role: str, max_members: int) -> "PolicyBuilder":
        """Bound a role's direct membership."""
        self._policy.add_constraint(CardinalityConstraint(name, role, max_members))
        return self

    def prerequisite(self, name: str, role: str, required: str) -> "PolicyBuilder":
        """Require ``required`` before ``role`` may be assigned."""
        self._policy.add_constraint(PrerequisiteConstraint(name, role, required))
        return self

    def precedence(self, strategy: PrecedenceStrategy) -> "PolicyBuilder":
        """Select the conflict-resolution strategy."""
        self._policy.precedence = strategy
        return self

    def default_deny(self) -> "PolicyBuilder":
        """Closed world: unmatched requests are denied (the default)."""
        self._policy.default_sign = Sign.DENY
        return self

    def default_allow(self) -> "PolicyBuilder":
        """Open world: unmatched requests are granted (use with care)."""
        self._policy.default_sign = Sign.GRANT
        return self

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def build(self) -> GrbacPolicy:
        """Return the constructed policy."""
        return self._policy
