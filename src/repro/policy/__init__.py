"""Policy authoring and analysis: builder, DSL, lint, MLS, templates."""

from repro.policy.admin import (
    PolicyAdministrator,
    PolicyFileWatcher,
    PrepareResult,
    ReloadAudit,
    ReloadRecord,
    ReloadResult,
    load_policy_file,
    load_policy_text,
)
from repro.policy.analysis import Conflict, Finding, PolicyAnalyzer
from repro.policy.builder import PolicyBuilder
from repro.policy.diff import CategoryDiff, PolicyDiff, diff_policies
from repro.policy.dsl import compile_policy, parse
from repro.policy.dsl.printer import print_policy
from repro.policy.serialize import from_dict, from_json, to_dict, to_json
from repro.policy.mls import (
    DEFAULT_LEVELS,
    MlsEncoding,
    ReferenceBlp,
    agreement,
    build_pair,
)
from repro.policy.templates import (
    FIGURE2_ASSIGNMENTS,
    FIGURE2_EDGES,
    install_figure2_household,
    install_figure2_roles,
    install_standard_object_roles,
    section51_rule,
)

__all__ = [
    "DEFAULT_LEVELS",
    "FIGURE2_ASSIGNMENTS",
    "FIGURE2_EDGES",
    "CategoryDiff",
    "Conflict",
    "PolicyDiff",
    "diff_policies",
    "from_dict",
    "from_json",
    "print_policy",
    "to_dict",
    "to_json",
    "Finding",
    "MlsEncoding",
    "PolicyAdministrator",
    "PolicyAnalyzer",
    "PolicyBuilder",
    "PolicyFileWatcher",
    "PrepareResult",
    "ReferenceBlp",
    "ReloadAudit",
    "ReloadRecord",
    "ReloadResult",
    "agreement",
    "build_pair",
    "compile_policy",
    "load_policy_file",
    "load_policy_text",
    "install_figure2_household",
    "install_figure2_roles",
    "install_standard_object_roles",
    "parse",
    "section51_rule",
]
