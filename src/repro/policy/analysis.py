"""Policy analysis — conflicts, shadowing, reachability, coverage.

GRBAC's generality "makes it even more susceptible to various types of
policy conflicts and ambiguities" (§4.2.4).  The paper leans on
"appropriate care for 'clean' policy definition" (§6); this module is
that care, mechanized:

* **conflicts** — a grant and a deny that can match the same concrete
  request, with how the active precedence strategy would resolve them;
* **shadowed rules** — rules that can never win under the active
  strategy (e.g. a grant wholly covered by a broader deny under
  deny-overrides);
* **unreachable rules** — rules whose subject or object role currently
  has no members at all;
* **coverage** — how many concrete (subject, transaction, object)
  triples have any applicable rule.

Findings are conservative in the safe direction: environment roles are
assumed potentially co-active (the policy object cannot know their
binding conditions), so conflict detection over-approximates rather
than misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core.permissions import Permission, Sign
from repro.core.policy import GrbacPolicy
from repro.core.precedence import PrecedenceStrategy
from repro.core.roles import ANY_ENVIRONMENT, ANY_OBJECT


@dataclass(frozen=True)
class Conflict:
    """A grant/deny pair that can collide on a concrete request."""

    grant: Permission
    deny: Permission
    #: Example subjects/objects in both scopes (evidence of overlap).
    witness_subjects: Tuple[str, ...]
    witness_objects: Tuple[str, ...]
    #: How the policy's precedence strategy resolves the collision.
    resolution: str

    def describe(self) -> str:
        return (
            f"conflict on {self.grant.transaction.name!r}: "
            f"[{self.grant.describe()}] vs [{self.deny.describe()}] "
            f"-> {self.resolution}"
        )


@dataclass(frozen=True)
class Finding:
    """One lint finding."""

    severity: str  # "error" | "warning" | "info"
    category: str
    message: str

    def describe(self) -> str:
        return f"{self.severity}:{self.category}: {self.message}"


class PolicyAnalyzer:
    """Static analysis over one policy."""

    def __init__(self, policy: GrbacPolicy) -> None:
        self._policy = policy

    # ------------------------------------------------------------------
    # Scope helpers
    # ------------------------------------------------------------------
    def _subjects_in_scope(self, permission: Permission) -> Set[str]:
        return self._policy.subjects_in_role(permission.subject_role.name)

    def _objects_in_scope(self, permission: Permission) -> Set[str]:
        return self._policy.objects_in_role(permission.object_role.name)

    def _environments_may_overlap(self, a: Permission, b: Permission) -> bool:
        """Could both environment roles be active at once?

        ``any-environment`` overlaps everything.  Two distinct named
        roles are assumed co-activatable (their conditions live outside
        the policy), except that a role and its generalization
        *certainly* overlap.  There is no disjointness information, so
        this never returns False for named roles — by design.
        """
        del a, b  # every pair may overlap; kept for future disjointness info
        return True

    # ------------------------------------------------------------------
    # Conflicts
    # ------------------------------------------------------------------
    def find_conflicts(self) -> List[Conflict]:
        """All grant/deny pairs with overlapping concrete scope."""
        permissions = self._policy.permissions()
        grants = [p for p in permissions if p.sign is Sign.GRANT]
        denies = [p for p in permissions if p.sign is Sign.DENY]
        conflicts: List[Conflict] = []
        for grant in grants:
            grant_subjects = self._subjects_in_scope(grant)
            grant_objects = self._objects_in_scope(grant)
            for deny in denies:
                if grant.transaction.name != deny.transaction.name:
                    continue
                subjects = grant_subjects & self._subjects_in_scope(deny)
                if not subjects:
                    continue
                objects = grant_objects & self._objects_in_scope(deny)
                if not objects:
                    continue
                if not self._environments_may_overlap(grant, deny):
                    continue  # pragma: no cover - currently always overlaps
                conflicts.append(
                    Conflict(
                        grant=grant,
                        deny=deny,
                        witness_subjects=tuple(sorted(subjects)[:3]),
                        witness_objects=tuple(sorted(objects)[:3]),
                        resolution=self._resolution_of(grant, deny),
                    )
                )
        return conflicts

    def _resolution_of(self, grant: Permission, deny: Permission) -> str:
        strategy = self._policy.precedence
        if strategy is PrecedenceStrategy.DENY_OVERRIDES:
            return "deny wins (deny-overrides)"
        if strategy is PrecedenceStrategy.ALLOW_OVERRIDES:
            return "grant wins (allow-overrides)"
        if strategy is PrecedenceStrategy.PRIORITY:
            if grant.priority > deny.priority:
                return f"grant wins (priority {grant.priority} > {deny.priority})"
            if deny.priority > grant.priority:
                return f"deny wins (priority {deny.priority} > {grant.priority})"
            return "deny wins (equal priority, deny-overrides tiebreak)"
        return "depends on request specificity (most-specific)"

    # ------------------------------------------------------------------
    # Shadowing
    # ------------------------------------------------------------------
    def find_shadowed_rules(self) -> List[Tuple[Permission, Permission]]:
        """Rules that can never win under the current strategy.

        Under deny-overrides, a grant is shadowed by a deny whose
        scope *contains* the grant's scope on all three dimensions and
        whose transaction matches.  Under allow-overrides, dually.
        Priority / most-specific strategies have no simple global
        shadowing, so the list is empty there.
        """
        strategy = self._policy.precedence
        if strategy is PrecedenceStrategy.DENY_OVERRIDES:
            weaker, stronger = Sign.GRANT, Sign.DENY
        elif strategy is PrecedenceStrategy.ALLOW_OVERRIDES:
            weaker, stronger = Sign.DENY, Sign.GRANT
        else:
            return []
        permissions = self._policy.permissions()
        shadowed: List[Tuple[Permission, Permission]] = []
        for victim in permissions:
            if victim.sign is not weaker:
                continue
            for cover in permissions:
                if cover.sign is not stronger:
                    continue
                if cover.transaction.name != victim.transaction.name:
                    continue
                if self._scope_contains(cover, victim):
                    shadowed.append((victim, cover))
                    break
        return shadowed

    def _scope_contains(self, outer: Permission, inner: Permission) -> bool:
        """Does ``outer``'s role scope contain ``inner``'s?"""
        subject_contains = self._policy.subject_roles.is_specialization_of(
            inner.subject_role.name, outer.subject_role.name
        )
        object_contains = (
            outer.object_role == ANY_OBJECT
            or self._policy.object_roles.is_specialization_of(
                inner.object_role.name, outer.object_role.name
            )
        )
        environment_contains = (
            outer.environment_role == ANY_ENVIRONMENT
            or self._policy.environment_roles.is_specialization_of(
                inner.environment_role.name, outer.environment_role.name
            )
        )
        return subject_contains and object_contains and environment_contains

    # ------------------------------------------------------------------
    # Reachability & coverage
    # ------------------------------------------------------------------
    def find_unreachable_rules(self) -> List[Permission]:
        """Rules whose subject or object scope has no members today."""
        unreachable = []
        for permission in self._policy.permissions():
            if not self._subjects_in_scope(permission):
                unreachable.append(permission)
                continue
            if not self._objects_in_scope(permission):
                unreachable.append(permission)
        return unreachable

    def coverage(self) -> Dict[str, int]:
        """Counts of concrete triples with/without an applicable rule.

        A triple is "covered" when some rule's subject and object
        scopes include it for its transaction (environment
        notwithstanding).
        """
        covered = 0
        total = 0
        scope_cache: List[Tuple[str, Set[str], Set[str]]] = [
            (
                p.transaction.name,
                self._subjects_in_scope(p),
                self._objects_in_scope(p),
            )
            for p in self._policy.permissions()
        ]
        for subject in self._policy.subjects():
            for transaction in self._policy.transactions():
                for obj in self._policy.objects():
                    total += 1
                    for txn_name, subjects, objects in scope_cache:
                        if (
                            txn_name == transaction.name
                            and subject.name in subjects
                            and obj.name in objects
                        ):
                            covered += 1
                            break
        return {"covered": covered, "uncovered": total - covered, "total": total}

    # ------------------------------------------------------------------
    # Lint driver
    # ------------------------------------------------------------------
    def lint(self) -> List[Finding]:
        """Aggregate all analyses into a finding list."""
        findings: List[Finding] = []
        for conflict in self.find_conflicts():
            findings.append(Finding("warning", "conflict", conflict.describe()))
        for victim, cover in self.find_shadowed_rules():
            findings.append(
                Finding(
                    "warning",
                    "shadowed",
                    f"[{victim.describe()}] can never win against "
                    f"[{cover.describe()}]",
                )
            )
        for permission in self.find_unreachable_rules():
            findings.append(
                Finding(
                    "info",
                    "unreachable",
                    f"[{permission.describe()}] matches no current "
                    f"subject/object",
                )
            )
        return findings
