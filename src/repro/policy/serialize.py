"""Policy serialization — JSON-compatible round-tripping.

A deployed home needs its policy to survive restarts and to be
inspectable ("show me exactly what the house enforces").  This module
converts a :class:`~repro.core.GrbacPolicy` to a plain JSON-compatible
dictionary and back, losslessly for everything the model defines:
entities, the three role hierarchies, assignments, permissions
(including sign/priority/confidence), constraints, and the
precedence/default configuration.

What is *not* serialized, by design: environment-role **conditions**.
A condition may close over arbitrary Python (sensors, topology
resolvers), so conditions are re-bound by the deployment code that
owns them — the policy document records the role names only, exactly
like the paper separates role *definitions* from the "environment
interface" that drives them (§4.2.2).

Round-trip property: ``from_dict(to_dict(p))`` decides identically to
``p`` on every request (verified property-based in the tests).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.constraints import (
    CardinalityConstraint,
    PrerequisiteConstraint,
    SeparationOfDuty,
)
from repro.core.permissions import Permission, Sign
from repro.core.policy import GrbacPolicy
from repro.core.precedence import PrecedenceStrategy
from repro.core.roles import Role, RoleKind
from repro.core.transactions import Transaction
from repro.exceptions import PolicyError

#: Schema version stamped into every document.
SCHEMA_VERSION = 1


def to_dict(policy: GrbacPolicy) -> Dict[str, Any]:
    """Serialize ``policy`` to a JSON-compatible dictionary."""

    def roles_of(hierarchy) -> List[Dict[str, Any]]:
        return [
            {
                "name": role.name,
                "description": role.description,
                "metadata": dict(role.metadata),
            }
            for role in hierarchy.roles()
        ]

    def edges_of(hierarchy) -> List[List[str]]:
        return sorted(
            [child.name, parent.name] for child, parent in hierarchy.edges()
        )

    constraints: List[Dict[str, Any]] = []
    for sod in policy.constraints.static_sod + policy.constraints.dynamic_sod:
        constraints.append(
            {
                "type": "separation-of-duty",
                "name": sod.name,
                "roles": sorted(sod.roles),
                "static": sod.static,
                "limit": sod.limit,
            }
        )
    for card in policy.constraints.cardinality:
        constraints.append(
            {
                "type": "cardinality",
                "name": card.name,
                "role": card.role,
                "max_members": card.max_members,
            }
        )
    for prereq in policy.constraints.prerequisite:
        constraints.append(
            {
                "type": "prerequisite",
                "name": prereq.name,
                "role": prereq.role,
                "required": prereq.required,
            }
        )

    return {
        "schema": SCHEMA_VERSION,
        "name": policy.name,
        "precedence": policy.precedence.value,
        "default_sign": policy.default_sign.value,
        "subjects": [
            {"name": subject.name, "attributes": dict(subject.attributes)}
            for subject in policy.subjects()
        ],
        "objects": [
            {"name": obj.name, "attributes": dict(obj.attributes)}
            for obj in policy.objects()
        ],
        "transactions": [
            {
                "name": transaction.name,
                "operations": [op.name for op in transaction.operations],
            }
            for transaction in policy.transactions()
        ],
        "subject_roles": roles_of(policy.subject_roles),
        "object_roles": [
            entry
            for entry in roles_of(policy.object_roles)
            if entry["name"] != "any-object"
        ],
        "environment_roles": [
            entry
            for entry in roles_of(policy.environment_roles)
            if entry["name"] != "any-environment"
        ],
        "subject_hierarchy": edges_of(policy.subject_roles),
        "object_hierarchy": edges_of(policy.object_roles),
        "environment_hierarchy": edges_of(policy.environment_roles),
        "subject_assignments": sorted(
            [subject.name, role.name]
            for subject in policy.subjects()
            for role in policy.authorized_subject_roles(subject.name)
        ),
        "object_assignments": sorted(
            [obj.name, role.name]
            for obj in policy.objects()
            for role in policy.direct_object_roles(obj.name)
        ),
        "permissions": [
            {
                "subject_role": permission.subject_role.name,
                "object_role": permission.object_role.name,
                "environment_role": permission.environment_role.name,
                "transaction": permission.transaction.name,
                "sign": permission.sign.value,
                "min_confidence": permission.min_confidence,
                "priority": permission.priority,
                "name": permission.name,
            }
            for permission in policy.permissions()
        ],
        "constraints": constraints,
    }


def from_dict(document: Dict[str, Any]) -> GrbacPolicy:
    """Rebuild a policy from :func:`to_dict` output.

    :raises PolicyError: on unknown schema versions or malformed
        documents — a policy store must never half-load.
    """
    if document.get("schema") != SCHEMA_VERSION:
        raise PolicyError(
            f"unsupported policy schema {document.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    try:
        policy = GrbacPolicy(
            document["name"],
            precedence=PrecedenceStrategy(document["precedence"]),
            default_sign=Sign(document["default_sign"]),
        )
        for entry in document["subjects"]:
            policy.add_subject(entry["name"], **entry.get("attributes", {}))
        for entry in document["objects"]:
            policy.add_object(entry["name"], **entry.get("attributes", {}))
        for entry in document["transactions"]:
            policy.add_transaction(
                Transaction.composite(entry["name"], entry["operations"])
            )
        kind_specs = [
            ("subject_roles", "subject_hierarchy", RoleKind.SUBJECT,
             policy.subject_roles),
            ("object_roles", "object_hierarchy", RoleKind.OBJECT,
             policy.object_roles),
            ("environment_roles", "environment_hierarchy",
             RoleKind.ENVIRONMENT, policy.environment_roles),
        ]
        for roles_key, edges_key, kind, hierarchy in kind_specs:
            for entry in document[roles_key]:
                hierarchy.add_role(
                    Role(
                        entry["name"],
                        kind,
                        entry.get("description", ""),
                        entry.get("metadata", {}),
                    )
                )
            for child, parent in document[edges_key]:
                hierarchy.add_specialization(child, parent)
        for subject, role in document["subject_assignments"]:
            policy.assign_subject(subject, role)
        for obj, role in document["object_assignments"]:
            policy.assign_object(obj, role)
        # Constraints come after assignments: the serialized state was
        # already constraint-valid, and replaying prerequisites in
        # arbitrary assignment order would spuriously fail.  Static
        # SoD is still re-validated by add_constraint itself.
        for entry in document["constraints"]:
            policy.add_constraint(_constraint_from(entry))
        for entry in document["permissions"]:
            policy.add_permission(
                Permission(
                    subject_role=policy.subject_roles.role(entry["subject_role"]),
                    object_role=policy.object_roles.role(entry["object_role"]),
                    environment_role=policy.environment_roles.role(
                        entry["environment_role"]
                    ),
                    transaction=policy.transaction(entry["transaction"]),
                    sign=Sign(entry["sign"]),
                    min_confidence=entry.get("min_confidence", 0.0),
                    priority=entry.get("priority", 0),
                    name=entry.get("name", ""),
                )
            )
    except KeyError as error:
        raise PolicyError(f"malformed policy document: missing {error}") from error
    return policy


def _constraint_from(entry: Dict[str, Any]):
    constraint_type = entry.get("type")
    if constraint_type == "separation-of-duty":
        return SeparationOfDuty(
            entry["name"], entry["roles"], entry["static"], entry["limit"]
        )
    if constraint_type == "cardinality":
        return CardinalityConstraint(
            entry["name"], entry["role"], entry["max_members"]
        )
    if constraint_type == "prerequisite":
        return PrerequisiteConstraint(
            entry["name"], entry["role"], entry["required"]
        )
    raise PolicyError(f"unknown constraint type {constraint_type!r}")


def to_json(policy: GrbacPolicy, indent: int = 2) -> str:
    """Serialize to a JSON string."""
    import json

    return json.dumps(to_dict(policy), indent=indent, sort_keys=True)


def from_json(text: str) -> GrbacPolicy:
    """Rebuild a policy from :func:`to_json` output."""
    import json

    return from_dict(json.loads(text))
