"""Canned policy templates — the paper's household, reusable.

Templates install the *role structure* of the paper's examples onto a
policy so that scenarios, examples, tests and benchmarks share one
canonical vocabulary instead of re-declaring it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.policy import GrbacPolicy
from repro.core.roles import Role

#: Figure 2's subject-role specialization edges (child, parent).
FIGURE2_EDGES = [
    ("family-member", "home-user"),
    ("authorized-guest", "home-user"),
    ("parent", "family-member"),
    ("child", "family-member"),
    ("service-agent", "authorized-guest"),
]

#: Figure 2's user → role assignments.
FIGURE2_ASSIGNMENTS = {
    "mom": "parent",
    "dad": "parent",
    "alice": "child",
    "bobby": "child",
    "dishwasher-repair-tech": "service-agent",
}


def install_figure2_roles(policy: GrbacPolicy) -> List[Role]:
    """Install the Figure 2 subject-role hierarchy.

    Roles: home-user ← {family-member, authorized-guest};
    family-member ← {parent, child}; authorized-guest ← service-agent.
    Returns the created roles.
    """
    names = {"home-user"}
    for child, parent in FIGURE2_EDGES:
        names.add(child)
        names.add(parent)
    roles = [policy.add_subject_role(name) for name in sorted(names)]
    for child, parent in FIGURE2_EDGES:
        policy.subject_roles.add_specialization(child, parent)
    return roles


def install_figure2_household(policy: GrbacPolicy) -> Dict[str, str]:
    """Install roles *and* the example users (Mom, Dad, Alice, Bobby,
    and the Dishwasher Repair Technician).  Returns the assignment map."""
    install_figure2_roles(policy)
    for subject, role in FIGURE2_ASSIGNMENTS.items():
        policy.add_subject(subject)
        policy.assign_subject(subject, role)
    return dict(FIGURE2_ASSIGNMENTS)


def install_standard_object_roles(policy: GrbacPolicy) -> List[Role]:
    """The standard device-object roles used across examples.

    ``entertainment-devices`` (§5.1), ``dangerous-appliances`` (§3's
    negative-rights example), ``sensitive-documents`` (medical/tax
    records), plus the specialized ``television`` role under
    entertainment.
    """
    roles = [
        policy.add_object_role("entertainment-devices"),
        policy.add_object_role("television"),
        policy.add_object_role("dangerous-appliances"),
        policy.add_object_role("sensitive-documents"),
    ]
    policy.object_roles.add_specialization("television", "entertainment-devices")
    return roles


def section51_rule(policy: GrbacPolicy) -> None:
    """The one rule of §5.1: "any child can use entertainment devices
    on weekdays during free time."

    Requires the Figure 2 subject roles, the standard object roles,
    and a ``weekday-free-time`` environment role to be present.
    """
    policy.grant(
        "child",
        "watch",
        "entertainment-devices",
        "weekday-free-time",
        name="s51-entertainment",
    )
    policy.grant(
        "child",
        "power_on",
        "entertainment-devices",
        "weekday-free-time",
        name="s51-power",
    )
