"""Multilevel security encoded in GRBAC (§6, ref. [1]).

The paper claims: "The GRBAC model can be used to implement multilevel
access control, but the converse is not true."  This module makes the
first half executable and testable:

* :class:`ReferenceBlp` — a direct Bell–LaPadula reference monitor
  over a linear lattice of security levels: *simple security* (no read
  up: read allowed iff clearance ≥ classification) and the strict
  *★-property* (no write down: write allowed iff classification ≥
  clearance).
* :class:`MlsEncoding` — the same lattice compiled into ordinary
  GRBAC roles and permissions.

Encoding scheme (for levels ``L0 < L1 < ... < Ln``):

* subject role chain ``cleared-Li``, where ``cleared-L(i+1)``
  specializes ``cleared-Li`` — possession of a high clearance implies
  possession of all lower ones; plus one *flat* role ``writes-at-Li``
  per subject (no inheritance), pinning the exact clearance for the
  ★-property.
* object role ``class-Li`` (the exact classification) specializing
  ``atleast-Li``, with ``atleast-L(i+1)`` specializing ``atleast-Li``
  — an object classified ``Li`` possesses ``atleast-Lj`` for all
  ``j ≤ i``.
* read rules: ``grant read to cleared-Li on class-Li`` — a subject
  cleared ``S`` matches exactly the classes ``C ≤ S``.
* write rules: ``grant write to writes-at-Li on atleast-Li`` — a
  subject cleared exactly ``S`` may write exactly objects with
  ``C ≥ S``.

Experiment E9 verifies decision-for-decision agreement between the
encoding and the reference monitor over exhaustive request grids.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.core.mediation import MediationEngine
from repro.core.policy import GrbacPolicy
from repro.exceptions import PolicyError, UnknownEntityError

#: The classic four-level military lattice.
DEFAULT_LEVELS = ("unclassified", "confidential", "secret", "top-secret")


class ReferenceBlp:
    """A direct Bell–LaPadula reference monitor (linear lattice)."""

    def __init__(self, levels: Sequence[str] = DEFAULT_LEVELS) -> None:
        if len(levels) < 2 or len(set(levels)) != len(levels):
            raise PolicyError("need >= 2 distinct security levels")
        self._levels = tuple(levels)
        self._rank = {level: index for index, level in enumerate(levels)}
        self._clearance: Dict[str, int] = {}
        self._classification: Dict[str, int] = {}

    @property
    def levels(self) -> Tuple[str, ...]:
        return self._levels

    def _rank_of(self, level: str) -> int:
        try:
            return self._rank[level]
        except KeyError:
            raise UnknownEntityError(f"unknown security level {level!r}") from None

    def set_clearance(self, subject: str, level: str) -> None:
        """Assign a subject's clearance level."""
        self._clearance[subject] = self._rank_of(level)

    def set_classification(self, obj: str, level: str) -> None:
        """Assign an object's classification level."""
        self._classification[obj] = self._rank_of(level)

    def can_read(self, subject: str, obj: str) -> bool:
        """Simple security: clearance >= classification."""
        return self._lookup(subject, obj)[0] >= self._lookup(subject, obj)[1]

    def can_write(self, subject: str, obj: str) -> bool:
        """Strict ★-property: classification >= clearance."""
        clearance, classification = self._lookup(subject, obj)
        return classification >= clearance

    def _lookup(self, subject: str, obj: str) -> Tuple[int, int]:
        if subject not in self._clearance:
            raise UnknownEntityError(f"no clearance for subject {subject!r}")
        if obj not in self._classification:
            raise UnknownEntityError(f"no classification for object {obj!r}")
        return self._clearance[subject], self._classification[obj]


class MlsEncoding:
    """Bell–LaPadula compiled into a GRBAC policy."""

    def __init__(self, levels: Sequence[str] = DEFAULT_LEVELS) -> None:
        if len(levels) < 2 or len(set(levels)) != len(levels):
            raise PolicyError("need >= 2 distinct security levels")
        self._levels = tuple(levels)
        self.policy = GrbacPolicy("mls")
        policy = self.policy
        policy.add_transaction("read")
        policy.add_transaction("write")

        previous_cleared = None
        previous_atleast = None
        for level in levels:
            cleared = policy.add_subject_role(self._cleared(level))
            policy.add_subject_role(self._writes_at(level))
            class_role = policy.add_object_role(self._class(level))
            atleast = policy.add_object_role(self._atleast(level))
            policy.object_roles.add_specialization(class_role, atleast)
            if previous_cleared is not None:
                # Higher clearance implies lower clearance.
                policy.subject_roles.add_specialization(cleared, previous_cleared)
                # Higher floor implies lower floor: atleast-L(i+1) -> atleast-Li.
                policy.object_roles.add_specialization(atleast, previous_atleast)
            previous_cleared = cleared
            previous_atleast = atleast

        for level in levels:
            policy.grant(
                self._cleared(level), "read", self._class(level),
                name=f"mls-read-{level}",
            )
            policy.grant(
                self._writes_at(level), "write", self._atleast(level),
                name=f"mls-write-{level}",
            )
        self._engine = MediationEngine(policy)

    # ------------------------------------------------------------------
    # Role-name scheme
    # ------------------------------------------------------------------
    @staticmethod
    def _cleared(level: str) -> str:
        return f"cleared-{level}"

    @staticmethod
    def _writes_at(level: str) -> str:
        return f"writes-at-{level}"

    @staticmethod
    def _class(level: str) -> str:
        return f"class-{level}"

    @staticmethod
    def _atleast(level: str) -> str:
        return f"atleast-{level}"

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add_subject(self, subject: str, clearance: str) -> None:
        """Register a subject with a clearance level."""
        if clearance not in self._levels:
            raise UnknownEntityError(f"unknown security level {clearance!r}")
        self.policy.add_subject(subject, clearance=clearance)
        self.policy.assign_subject(subject, self._cleared(clearance))
        self.policy.assign_subject(subject, self._writes_at(clearance))

    def add_object(self, obj: str, classification: str) -> None:
        """Register an object with a classification level."""
        if classification not in self._levels:
            raise UnknownEntityError(f"unknown security level {classification!r}")
        self.policy.add_object(obj, classification=classification)
        self.policy.assign_object(obj, self._class(classification))

    # ------------------------------------------------------------------
    # Mediation
    # ------------------------------------------------------------------
    def can_read(self, subject: str, obj: str) -> bool:
        """Read decision through GRBAC mediation."""
        return self._engine.check(subject, "read", obj)

    def can_write(self, subject: str, obj: str) -> bool:
        """Write decision through GRBAC mediation."""
        return self._engine.check(subject, "write", obj)


def build_pair(
    levels: Sequence[str],
    subjects: Dict[str, str],
    objects: Dict[str, str],
) -> Tuple[ReferenceBlp, MlsEncoding]:
    """Build reference and encoding with identical populations.

    :param subjects: subject -> clearance level.
    :param objects: object -> classification level.
    """
    reference = ReferenceBlp(levels)
    encoding = MlsEncoding(levels)
    for subject, clearance in subjects.items():
        reference.set_clearance(subject, clearance)
        encoding.add_subject(subject, clearance)
    for obj, classification in objects.items():
        reference.set_classification(obj, classification)
        encoding.add_object(obj, classification)
    return reference, encoding


def agreement(
    reference: ReferenceBlp,
    encoding: MlsEncoding,
    subjects: Sequence[str],
    objects: Sequence[str],
) -> Dict[str, int]:
    """Exhaustively compare decisions; returns agree/disagree counts."""
    agree = disagree = 0
    for subject in subjects:
        for obj in objects:
            for operation in ("read", "write"):
                ref = (
                    reference.can_read(subject, obj)
                    if operation == "read"
                    else reference.can_write(subject, obj)
                )
                enc = (
                    encoding.can_read(subject, obj)
                    if operation == "read"
                    else encoding.can_write(subject, obj)
                )
                if ref == enc:
                    agree += 1
                else:
                    disagree += 1
    return {"agree": agree, "disagree": disagree}
