"""Exception hierarchy for the GRBAC reproduction.

Every error raised by the library derives from :class:`GrbacError`, so
callers can catch one base class.  Sub-classes are fine-grained enough
that tests can assert on the *reason* an operation was rejected.
"""

from __future__ import annotations


class GrbacError(Exception):
    """Base class for all errors raised by this library."""


class PolicyError(GrbacError):
    """A policy is malformed or an operation on it is invalid."""


class UnknownEntityError(PolicyError):
    """A subject, object, role, or transaction is not registered."""


class DuplicateEntityError(PolicyError):
    """An entity with the same identifier is already registered."""


class RoleKindError(PolicyError):
    """A role was used where a different kind of role is required.

    For example, passing an environment role where a subject role is
    expected, or linking roles of different kinds in one hierarchy.
    """


class HierarchyError(PolicyError):
    """An invalid role-hierarchy operation (e.g. introducing a cycle)."""


class HierarchyCycleError(HierarchyError):
    """Adding an inheritance edge would create a cycle."""


class ConstraintViolationError(GrbacError):
    """A separation-of-duty or cardinality constraint was violated."""

    def __init__(self, message: str, constraint_name: str = "") -> None:
        super().__init__(message)
        #: Name of the violated constraint, when known.
        self.constraint_name = constraint_name


class ActivationError(GrbacError):
    """A role activation request is not permitted."""


class SessionError(GrbacError):
    """An operation referenced a missing or terminated session."""


class AuthenticationError(GrbacError):
    """An authentication step failed outright (not merely low confidence)."""


class EnvironmentError_(GrbacError):
    """An environment provider or condition failed.

    Named with a trailing underscore to avoid shadowing the Python
    built-in ``EnvironmentError`` alias of :class:`OSError`.
    """


class TemporalExpressionError(GrbacError):
    """A periodic time expression is malformed."""


class PolicySyntaxError(GrbacError):
    """The policy DSL text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class PolicyCompileError(GrbacError):
    """A parsed DSL policy referenced entities that do not exist."""


class DeviceError(GrbacError):
    """An invalid operation on a simulated home device."""


class AccessDeniedError(GrbacError):
    """The mediation engine denied an enforced operation.

    Carries the full :class:`~repro.core.mediation.Decision` so
    callers (and tests) can inspect why.
    """

    def __init__(self, message: str, decision=None) -> None:
        super().__init__(message)
        self.decision = decision


class WorkloadError(GrbacError):
    """A workload generator was misconfigured."""


class PolicyStoreError(GrbacError):
    """A policy-store operation is invalid.

    Raised for unknown tenants/versions, activation of a candidate
    that fails the lint gate, and a corrupt store log — never for an
    access denial, which the serving layer reports as an explicit
    decision outcome.
    """


class ServiceError(GrbacError):
    """A decision-service (PDP) operation is invalid.

    Raised for lifecycle misuse (submitting before start / after
    shutdown) and malformed wire traffic — never for an access denial,
    which is always reported as an explicit outcome so callers cannot
    confuse "the service broke" with "the request was refused".
    """
