"""The versioned multi-tenant policy store — append-only source of truth.

The paper frames GRBAC per home (§4: each smart home has its own
subjects, environment roles, and policy); the ROADMAP's
millions-of-users target needs *many* such homes served as tenants
from one cluster.  This module is the persistence half of that story,
in the "policy store as single source of truth" shape of the openedx
Casbin ADR (SNIPPETS.md): every policy a tenant has ever served is a
**version** in an append-only JSONL log, an explicit **active
pointer** selects the one decisions render against, and nothing is
ever rewritten — ``put`` appends, ``activate``/``rollback`` move the
pointer, history answers "what did home 17 enforce last Tuesday".

Model
-----

* **Tenant** — a named policy lineage (one smart home, in paper
  terms).  Created explicitly; names are ``[A-Za-z0-9][A-Za-z0-9_.-]*``
  up to 64 chars.
* **Version** — one immutable policy text (DSL or serialized JSON),
  numbered 1..N per tenant.  Texts are stored once per content hash
  (``sha256:...``) however many tenants or versions reference them.
* **Active pointer** — the version decisions are served from.
  ``activate`` parses the candidate and runs the same
  lint gate :class:`~repro.policy.admin.PolicyAdministrator` applies
  to hot reloads (``fail_on`` severity, diff against the previously
  active version recorded in the log); a candidate that fails the
  gate *cannot* become active.  ``rollback`` moves the pointer to the
  previously active distinct version without re-linting — it was
  gated when it first went live, and the escape hatch must not be
  blockable by a since-tightened linter.
* **Compiled snapshots** — serving goes through
  :meth:`PolicyStore.engine`: the active text is parsed and compiled
  lazily on first use into a bounded content-addressed LRU
  (:mod:`repro.store.snapshots`), so memory is bounded by the LRU
  capacity, not the tenant count.

Durability: one ``store.jsonl`` per store directory, replayed on open.
A torn final line (crash mid-append) is dropped and counted; malformed
interior lines fail loudly — they mean the log was edited by hand.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.mediation import MediationEngine
from repro.core.policy import GrbacPolicy
from repro.exceptions import GrbacError, PolicyStoreError
from repro.obs.metrics import MetricsRegistry
from repro.policy.admin import load_policy_text
from repro.policy.analysis import PolicyAnalyzer
from repro.policy.diff import diff_policies
from repro.store.snapshots import CompiledSnapshotCache

#: The tenant single-policy deployments implicitly serve; the PDP maps
#: its constructor engine to this name so store-less and store-backed
#: call sites agree on what "no tenant" means.
DEFAULT_TENANT = "default"

#: Store log filename inside a store directory.
LOG_FILENAME = "store.jsonl"

_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

#: Lint severities, most severe first (shared with policy.admin).
_SEVERITY_RANK = {"error": 0, "warning": 1, "info": 2}


def content_hash(text: str) -> str:
    """The content address of one policy text."""
    return "sha256:" + hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PolicyVersion:
    """One immutable entry in a tenant's lineage."""

    tenant: str
    version: int
    content_hash: str
    actor: str
    created_at: float
    note: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "version": self.version,
            "content_hash": self.content_hash,
            "actor": self.actor,
            "created_at": self.created_at,
            "note": self.note,
        }


@dataclass(frozen=True)
class Activation:
    """One movement of a tenant's active pointer."""

    version: int
    #: ``"activate"`` or ``"rollback"``.
    action: str
    actor: str
    timestamp: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "action": self.action,
            "actor": self.actor,
            "timestamp": self.timestamp,
        }


@dataclass
class TenantLineage:
    """A tenant's full history: versions plus pointer movements."""

    name: str
    created_at: float
    actor: str = ""
    versions: List[PolicyVersion] = field(default_factory=list)
    activations: List[Activation] = field(default_factory=list)

    @property
    def head(self) -> Optional[PolicyVersion]:
        """The latest *put* version (not necessarily the active one)."""
        return self.versions[-1] if self.versions else None

    @property
    def active_version(self) -> Optional[int]:
        """The version currently serving, or None before any activate."""
        return self.activations[-1].version if self.activations else None

    def version(self, number: int) -> PolicyVersion:
        if not 1 <= number <= len(self.versions):
            raise PolicyStoreError(
                f"tenant {self.name!r} has no version {number} "
                f"(lineage holds 1..{len(self.versions)})"
            )
        return self.versions[number - 1]

    def to_dict(self) -> Dict[str, object]:
        active = self.active_version
        return {
            "tenant": self.name,
            "created_at": self.created_at,
            "actor": self.actor,
            "active_version": active,
            "versions": [
                {**v.to_dict(), "active": v.version == active}
                for v in self.versions
            ],
            "activations": [a.to_dict() for a in self.activations],
        }


class PolicyStore:
    """Append-only, versioned, multi-tenant policy store.

    :param path: store directory (created if missing); ``None`` keeps
        everything in memory — same semantics, no durability, for
        tests and embedding.
    :param compiled_cache_size: bounded LRU capacity for compiled
        engine snapshots (content-addressed; see
        :mod:`repro.store.snapshots`).
    :param fail_on: minimum lint severity that blocks ``activate`` —
        mirrors :class:`~repro.policy.admin.PolicyAdministrator`.
        ``None`` disables the lint gate (parse failures still block).
    :param engine_mode: mediation mode compiled snapshots are built
        in (default ``"compiled"``, pre-warmed at build).
    :param reader: open the store read-only for cross-process sharing.
        A reader holds **no** append handle and takes **no** lock
        against the writing process: it replays the log to the last
        complete line, remembers that byte offset, and re-reads only
        the appended suffix when the file grows (throttled by
        ``refresh_interval_s``).  The writer's append+flush of whole
        lines is what makes this safe — a reader either sees a
        complete event or leaves the torn tail for the next refresh.
        Mutating calls raise.  This is how every worker in a PDP
        cluster boots from (and follows) one supervisor-owned
        ``store.jsonl``.
    :param refresh_interval_s: minimum seconds between a reader's
        ``stat`` probes of the log — bounds syscall cost on the
        per-request ``active_version`` path.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        compiled_cache_size: int = 8,
        fail_on: Optional[str] = "error",
        engine_mode: str = "compiled",
        reader: bool = False,
        refresh_interval_s: float = 0.2,
    ) -> None:
        if fail_on is not None and fail_on not in _SEVERITY_RANK:
            raise PolicyStoreError(
                f"fail_on must be one of {sorted(_SEVERITY_RANK)} or None"
            )
        if reader and path is None:
            raise PolicyStoreError(
                "reader mode requires a store path (nothing to follow)"
            )
        if refresh_interval_s < 0:
            raise PolicyStoreError("refresh_interval_s must be >= 0")
        self.path = path
        self.fail_on = fail_on
        self.engine_mode = engine_mode
        self._reader = reader
        self.refresh_interval_s = refresh_interval_s
        self.compiled = CompiledSnapshotCache(compiled_cache_size)
        self._lock = threading.RLock()
        self._tenants: Dict[str, TenantLineage] = {}
        self._blobs: Dict[str, str] = {}
        self._seq = 0
        self._log: Optional[io.TextIOWrapper] = None
        #: Tallies surfaced via :meth:`stats` / bound metrics.
        self.puts = 0
        self.dedup_hits = 0
        self.activations = 0
        self.rollbacks = 0
        self.torn_tail_recovered = 0
        #: Lint results memoized by content hash — text is immutable,
        #: so findings are too.  Holds ``(findings, parse_error)``;
        #: one small entry per distinct blob (same bound as
        #: ``_blobs``), which turns fleet-wide activations of a shared
        #: template into one parse+lint instead of thousands.
        self._lint_memo: Dict[str, Tuple[list, Optional[str]]] = {}
        #: Byte offset of the last complete line replayed (reader mode).
        self._read_offset = 0
        self._applied_lines = 0
        self._last_probe = float("-inf")
        self._log_path: Optional[str] = None
        if path is not None:
            os.makedirs(path, exist_ok=True)
            log_path = os.path.join(path, LOG_FILENAME)
            self._log_path = log_path
            if os.path.exists(log_path):
                self._replay(log_path)
            if not reader:
                self._log = open(log_path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # Log plumbing
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._log is not None:
            self._log.close()
            self._log = None

    def __enter__(self) -> "PolicyStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _append(self, event: Dict[str, object]) -> None:
        """Append one event to the log (no-op for in-memory stores)."""
        self._seq += 1
        event = {"seq": self._seq, "ts": time.time(), **event}
        if self._log is not None:
            self._log.write(json.dumps(event, separators=(",", ":")) + "\n")
            self._log.flush()

    def _replay(self, log_path: str) -> None:
        """Rebuild in-memory state from the log; tolerate a torn tail."""
        with open(log_path, "rb") as handle:
            data = handle.read()
        self._read_offset = self._ingest(data, log_path)
        # A cleanly-appended log ends with "\n"; trailing bytes past
        # the last newline are a torn final line (crash mid-append for
        # the writer, append-in-progress for a reader): drop and count.
        if len(data) > self._read_offset:
            self.torn_tail_recovered += 1

    def _ingest(self, data: bytes, log_path: str) -> int:
        """Apply every complete line in ``data``; bytes consumed.

        Only lines with a trailing newline are applied — an
        unterminated tail stays unconsumed so a reader can pick it up
        once the writer's flush completes it.
        """
        end = data.rfind(b"\n")
        if end < 0:
            return 0
        consumed = end + 1
        for raw in data[:end].split(b"\n"):
            if not raw:
                continue
            self._applied_lines += 1
            number = self._applied_lines
            try:
                event = json.loads(raw)
            except json.JSONDecodeError as error:
                raise PolicyStoreError(
                    f"corrupt store log {log_path}:{number}: {error}"
                ) from None
            self._apply(event, log_path, number)
            self._seq = max(self._seq, int(event.get("seq", 0)))
        return consumed

    # ------------------------------------------------------------------
    # Reader mode (cross-process sharing)
    # ------------------------------------------------------------------
    @property
    def reader(self) -> bool:
        """True when opened read-only (see the ``reader`` parameter)."""
        return self._reader

    def _require_writer(self, operation: str) -> None:
        if self._reader:
            raise PolicyStoreError(
                f"store opened reader=True: {operation} is not allowed"
            )

    def _maybe_refresh(self) -> None:
        """Throttled reader catch-up on the shared log.

        The cheap gate is a monotonic-clock compare; at most once per
        :attr:`refresh_interval_s` the log is ``stat``-ed, and only a
        grown file is re-opened and read from the remembered offset.
        Called from read paths; a no-op for writers.
        """
        if not self._reader:
            return
        now = time.monotonic()
        if now - self._last_probe < self.refresh_interval_s:
            return
        self._last_probe = now
        log_path = self._log_path
        assert log_path is not None  # reader mode requires a path
        try:
            size = os.stat(log_path).st_size
        except OSError:
            return  # log not created yet (writer still booting)
        if size <= self._read_offset:
            return
        with self._lock:
            self.refresh()

    def refresh(self) -> int:
        """Apply any log lines appended since the last read; count.

        Readers call this implicitly (throttled) on read paths; it is
        public so tests and coordination points (e.g. a worker told
        "the supervisor just activated v3") can force an immediate
        catch-up.  Writers return 0 — their own appends already
        applied in-memory, so re-reading the log would double-apply.
        """
        log_path = self._log_path
        if log_path is None or not self._reader:
            return 0
        with self._lock:
            before = self._applied_lines
            try:
                with open(log_path, "rb") as handle:
                    handle.seek(self._read_offset)
                    data = handle.read()
            except OSError:
                return 0
            self._read_offset += self._ingest(data, log_path)
            return self._applied_lines - before

    def _apply(self, event: Dict[str, object], path: str, line: int) -> None:
        kind = event.get("event")
        try:
            if kind == "create":
                self._tenants[str(event["tenant"])] = TenantLineage(
                    name=str(event["tenant"]),
                    created_at=float(event.get("ts", 0.0)),
                    actor=str(event.get("actor", "")),
                )
            elif kind == "blob":
                self._blobs[str(event["hash"])] = str(event["text"])
            elif kind == "put":
                lineage = self._tenants[str(event["tenant"])]
                lineage.versions.append(
                    PolicyVersion(
                        tenant=lineage.name,
                        version=int(event["version"]),
                        content_hash=str(event["hash"]),
                        actor=str(event.get("actor", "")),
                        created_at=float(event.get("ts", 0.0)),
                        note=str(event.get("note", "")),
                    )
                )
            elif kind == "activate":
                lineage = self._tenants[str(event["tenant"])]
                lineage.activations.append(
                    Activation(
                        version=int(event["version"]),
                        action=str(event.get("action", "activate")),
                        actor=str(event.get("actor", "")),
                        timestamp=float(event.get("ts", 0.0)),
                    )
                )
            else:
                raise KeyError(f"unknown event kind {kind!r}")
        except (KeyError, TypeError, ValueError) as error:
            raise PolicyStoreError(
                f"corrupt store log {path}:{line}: {error}"
            ) from None

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------
    def tenants(self) -> List[str]:
        """All tenant names, sorted."""
        self._maybe_refresh()
        with self._lock:
            return sorted(self._tenants)

    def __contains__(self, tenant: str) -> bool:
        self._maybe_refresh()
        return tenant in self._tenants

    def lineage(self, tenant: str) -> TenantLineage:
        self._maybe_refresh()
        with self._lock:
            found = self._tenants.get(tenant)
            if found is None:
                raise PolicyStoreError(f"unknown tenant {tenant!r}")
            return found

    def create_tenant(self, name: str, actor: str = "") -> TenantLineage:
        """Register a new, empty lineage; rejects duplicates."""
        self._require_writer("create_tenant")
        if not _TENANT_NAME.match(name or ""):
            raise PolicyStoreError(
                f"invalid tenant name {name!r} "
                "(want [A-Za-z0-9][A-Za-z0-9_.-]*, max 64 chars)"
            )
        with self._lock:
            if name in self._tenants:
                raise PolicyStoreError(f"tenant {name!r} already exists")
            lineage = TenantLineage(
                name=name, created_at=time.time(), actor=actor
            )
            self._tenants[name] = lineage
            self._append({"event": "create", "tenant": name, "actor": actor})
            return lineage

    def ensure_tenant(self, name: str, actor: str = "") -> TenantLineage:
        """The lineage for ``name``, creating it if absent."""
        with self._lock:
            found = self._tenants.get(name)
            if found is not None:
                return found
            return self.create_tenant(name, actor=actor)

    # ------------------------------------------------------------------
    # Versions
    # ------------------------------------------------------------------
    def put(
        self, tenant: str, text: str, actor: str = "", note: str = ""
    ) -> PolicyVersion:
        """Append ``text`` as the tenant's next version.

        Content-hash dedup at two levels: the text blob is stored once
        per hash store-wide, and a put identical to the tenant's
        *head* version is a no-op returning the head (re-putting the
        same file must not grow the lineage).  Does **not** parse or
        activate — the lineage records candidates; the gate runs at
        :meth:`activate`.
        """
        self._require_writer("put")
        if not isinstance(text, str) or not text.strip():
            raise PolicyStoreError("policy text must be non-empty")
        with self._lock:
            lineage = self.lineage(tenant)
            digest = content_hash(text)
            head = lineage.head
            if head is not None and head.content_hash == digest:
                self.dedup_hits += 1
                return head
            if digest not in self._blobs:
                self._blobs[digest] = text
                self._append({"event": "blob", "hash": digest, "text": text})
            else:
                self.dedup_hits += 1
            entry = PolicyVersion(
                tenant=tenant,
                version=len(lineage.versions) + 1,
                content_hash=digest,
                actor=actor,
                created_at=time.time(),
                note=note,
            )
            lineage.versions.append(entry)
            self.puts += 1
            self._append(
                {
                    "event": "put",
                    "tenant": tenant,
                    "version": entry.version,
                    "hash": digest,
                    "actor": actor,
                    "note": note,
                }
            )
            return entry

    def text(self, tenant: str, version: Optional[int] = None) -> str:
        """The policy text of ``version`` (default: the active one)."""
        with self._lock:
            entry = self._resolve_version(tenant, version)
            return self._blobs[entry.content_hash]

    def policy(
        self, tenant: str, version: Optional[int] = None
    ) -> GrbacPolicy:
        """A freshly parsed policy for ``version`` (default: active)."""
        with self._lock:
            entry = self._resolve_version(tenant, version)
            text = self._blobs[entry.content_hash]
        return load_policy_text(text, name=f"{tenant}@v{entry.version}")

    def _resolve_version(
        self, tenant: str, version: Optional[int]
    ) -> PolicyVersion:
        lineage = self.lineage(tenant)
        if version is None:
            active = lineage.active_version
            if active is None:
                raise PolicyStoreError(
                    f"tenant {tenant!r} has no active version"
                )
            version = active
        return lineage.version(version)

    # ------------------------------------------------------------------
    # Activation / rollback — the gated pointer moves
    # ------------------------------------------------------------------
    def activate(
        self,
        tenant: str,
        version: Optional[int] = None,
        actor: str = "",
    ) -> PolicyVersion:
        """Move the active pointer to ``version`` (default: head).

        The candidate is parsed and linted exactly like a hot-reload
        candidate (`fail_on` severity gate); the findings and the diff
        against the previously active version land in the log's
        activate event.  A candidate that fails the gate raises and
        the pointer does not move.

        Lint results are memoized by content hash (immutable text ->
        immutable findings), so a template shared by a thousand
        tenants is parsed and linted once, not a thousand times —
        subsequent activations of a known-clean first version skip
        the parse entirely.
        """
        self._require_writer("activate")
        with self._lock:
            lineage = self.lineage(tenant)
            if version is None:
                head = lineage.head
                if head is None:
                    raise PolicyStoreError(
                        f"tenant {tenant!r} has no versions to activate"
                    )
                version = head.version
            entry = lineage.version(version)
            if lineage.active_version == version:
                return entry  # idempotent: already serving
            memo = self._lint_memo.get(entry.content_hash)
            if memo is None:
                text = self._blobs[entry.content_hash]
                try:
                    candidate = load_policy_text(
                        text, name=f"{tenant}@v{version}"
                    )
                except (GrbacError, ValueError, KeyError, TypeError) as error:
                    memo = ([], f"parse error: {error}")
                else:
                    memo = (PolicyAnalyzer(candidate).lint(), None)
                self._lint_memo[entry.content_hash] = memo
            findings, parse_error = memo
            if parse_error is not None:
                raise PolicyStoreError(
                    f"cannot activate {tenant!r} v{version}: {parse_error}"
                )
            blocking = [
                f
                for f in findings
                if self.fail_on is not None
                and _SEVERITY_RANK.get(
                    f.severity, _SEVERITY_RANK[self.fail_on]
                )
                <= _SEVERITY_RANK[self.fail_on]
            ]
            if blocking:
                raise PolicyStoreError(
                    f"cannot activate {tenant!r} v{version}: "
                    "validation failed: "
                    + "; ".join(f.describe() for f in blocking)
                )
            diff_summary = ""
            previous = lineage.active_version
            if previous is not None and previous != version:
                try:
                    diff_summary = diff_policies(
                        self.policy(tenant, previous),
                        self.policy(tenant, version),
                    ).describe()
                except GrbacError:
                    diff_summary = "(a version no longer parses)"
            lineage.activations.append(
                Activation(
                    version=version,
                    action="activate",
                    actor=actor,
                    timestamp=time.time(),
                )
            )
            self.activations += 1
            self._append(
                {
                    "event": "activate",
                    "tenant": tenant,
                    "version": version,
                    "action": "activate",
                    "actor": actor,
                    "findings": [f.describe() for f in findings],
                    "diff_summary": diff_summary,
                }
            )
            return entry

    def rollback(self, tenant: str, actor: str = "") -> PolicyVersion:
        """Move the pointer back to the previously active distinct version.

        No re-lint: the target served before (it passed the gate when
        it first activated), and the escape hatch must not be
        blockable.  Appends a ``rollback`` activation — lineage is
        history, so rolling back twice alternates between the last two
        distinct versions, exactly like repeated ``git revert``.
        """
        self._require_writer("rollback")
        with self._lock:
            lineage = self.lineage(tenant)
            current = lineage.active_version
            if current is None:
                raise PolicyStoreError(
                    f"tenant {tenant!r} has no active version to roll back"
                )
            target: Optional[int] = None
            for activation in reversed(lineage.activations):
                if activation.version != current:
                    target = activation.version
                    break
            if target is None:
                raise PolicyStoreError(
                    f"tenant {tenant!r} has no earlier distinct version "
                    "to roll back to"
                )
            lineage.activations.append(
                Activation(
                    version=target,
                    action="rollback",
                    actor=actor,
                    timestamp=time.time(),
                )
            )
            self.rollbacks += 1
            self._append(
                {
                    "event": "activate",
                    "tenant": tenant,
                    "version": target,
                    "action": "rollback",
                    "actor": actor,
                }
            )
            return lineage.version(target)

    def active_version(self, tenant: str) -> Optional[int]:
        # Deliberately lock-free: one dict read and a list-tail read,
        # both atomic under the GIL against an append-only lineage.
        # This sits on the PDP's per-request fast path (the probe that
        # decides whether a cached engine resolution is still valid).
        # In reader mode the refresh probe rides here too — its cheap
        # gate is one clock compare, the stat syscall throttled.
        if self._reader:
            self._maybe_refresh()
        lineage = self._tenants.get(tenant)
        if lineage is None:
            raise PolicyStoreError(f"unknown tenant {tenant!r}")
        return lineage.active_version

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def engine(self, tenant: str) -> Tuple[MediationEngine, int]:
        """The compiled engine for the tenant's active version.

        Lazy: the text is parsed and compiled on first use and cached
        content-addressed (tenants sharing a text share the engine).
        :returns: ``(engine, active_version)``.
        :raises PolicyStoreError: unknown tenant / no active version.
        """
        with self._lock:
            entry = self._resolve_version(tenant, None)
            text = self._blobs[entry.content_hash]

        def build() -> MediationEngine:
            policy = load_policy_text(
                text, name=f"{tenant}@v{entry.version}"
            )
            engine = MediationEngine(policy, mode=self.engine_mode)
            if engine.mode == "compiled":
                policy.compiled()  # pre-warm outside the decision path
            return engine

        return self.compiled.get_or_build(entry.content_hash, build), (
            entry.version
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def log(self, tenant: str) -> Dict[str, object]:
        """The tenant's lineage as plain data (CLI ``tenant log``)."""
        with self._lock:
            return self.lineage(tenant).to_dict()

    def overview(self) -> List[Dict[str, object]]:
        """One summary row per tenant (wire ``tenants`` op)."""
        self._maybe_refresh()
        with self._lock:
            rows = []
            for name in sorted(self._tenants):
                lineage = self._tenants[name]
                rows.append(
                    {
                        "tenant": name,
                        "versions": len(lineage.versions),
                        "active_version": lineage.active_version,
                        "activations": len(lineage.activations),
                    }
                )
            return rows

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "path": self.path,
                "reader": self._reader,
                "read_offset": self._read_offset,
                "tenants": len(self._tenants),
                "versions": sum(
                    len(t.versions) for t in self._tenants.values()
                ),
                "blobs": len(self._blobs),
                "puts": self.puts,
                "dedup_hits": self.dedup_hits,
                "activations": self.activations,
                "rollbacks": self.rollbacks,
                "torn_tail_recovered": self.torn_tail_recovered,
                "compiled": self.compiled.stats(),
            }

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Publish store gauges into ``registry`` (PDP wiring)."""
        registry.gauge("store.tenants", lambda: float(len(self._tenants)))
        registry.gauge(
            "store.versions",
            lambda: float(
                sum(len(t.versions) for t in self._tenants.values())
            ),
        )
        registry.gauge("store.blobs", lambda: float(len(self._blobs)))
        registry.gauge("store.activations", lambda: float(self.activations))
        registry.gauge("store.rollbacks", lambda: float(self.rollbacks))
        registry.gauge(
            "store.compiled_entries", lambda: float(len(self.compiled))
        )
        registry.gauge(
            "store.compiled_hits", lambda: float(self.compiled.hits)
        )
        registry.gauge(
            "store.compiled_misses", lambda: float(self.compiled.misses)
        )
        registry.gauge(
            "store.compiled_evictions",
            lambda: float(self.compiled.evictions),
        )
