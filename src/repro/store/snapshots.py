"""Bounded LRU of compiled engine snapshots, keyed by content hash.

The store's serving contract is *lazy compile-on-first-use*: a tenant's
active policy text is parsed and compiled into a
:class:`~repro.core.mediation.MediationEngine` only when a decision
first needs it, and the resulting engine lives in this cache.  Keys are
**content hashes**, not tenant names, which buys two things:

* **dedup** — ten thousand homes serving the same template policy
  share one compiled snapshot instead of ten thousand;
* **immutability** — a content-addressed entry can never go stale.  A
  tenant moving its active pointer simply resolves a different hash;
  the old entry ages out of the LRU tail instead of needing
  invalidation.

Memory is bounded by ``capacity`` compiled engines regardless of how
many tenants the store holds — the E13 bench gates on exactly this.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict

from repro.core.mediation import MediationEngine
from repro.exceptions import PolicyStoreError


class CompiledSnapshotCache:
    """Content-hash -> compiled :class:`MediationEngine`, bounded LRU.

    :param capacity: maximum resident compiled engines (>= 1).  A
        store serving more *distinct* active policy texts than this
        recompiles on demand; tenants sharing texts share entries.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise PolicyStoreError("compiled cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, MediationEngine]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_build(
        self, content_hash: str, builder: Callable[[], MediationEngine]
    ) -> MediationEngine:
        """Return the cached engine for ``content_hash``, building on miss.

        The builder runs outside the LRU bookkeeping but under the
        cache lock, so concurrent resolvers of the same hash compile
        once; entries are content-addressed and therefore never stale.
        """
        with self._lock:
            engine = self._entries.get(content_hash)
            if engine is not None:
                self._entries.move_to_end(content_hash)
                self.hits += 1
                return engine
            self.misses += 1
            engine = builder()
            self._entries[content_hash] = engine
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return engine

    def resident(self, content_hash: str) -> bool:
        """Whether ``content_hash`` is currently compiled-resident
        (no LRU reordering — a pure probe, for tests and stats)."""
        return content_hash in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }
