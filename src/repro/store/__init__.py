"""Versioned multi-tenant policy store (append-only lineage + LRU)."""

from repro.store.snapshots import CompiledSnapshotCache
from repro.store.store import (
    DEFAULT_TENANT,
    Activation,
    PolicyStore,
    PolicyVersion,
    TenantLineage,
    content_hash,
)

__all__ = [
    "Activation",
    "CompiledSnapshotCache",
    "DEFAULT_TENANT",
    "PolicyStore",
    "PolicyVersion",
    "TenantLineage",
    "content_hash",
]
