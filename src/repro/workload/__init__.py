"""Workload generation: synthetic policies/requests, paper scenarios,
and schedule-driven daily-life traces."""

from repro.workload.adversary import (
    AdversarialGrant,
    AdversarySimulator,
    AttackReport,
)
from repro.workload.generator import (
    GeneratedRequest,
    RandomPolicyConfig,
    generate_policy,
    generate_requests,
    replay_requests,
)
from repro.workload.scenarios import (
    REPAIR_WINDOW,
    WEEKDAY_FREE_TIME,
    HomeScenario,
    build_figure2_policy,
    build_medical_records_scenario,
    build_negative_rights_scenario,
    build_repairman_scenario,
    build_s51_scenario,
    build_s52_scenario,
)
from repro.workload.traces import (
    DEFAULT_HABITS,
    DayTraceSimulator,
    TraceEvent,
    TraceResult,
    replay_trace,
)

__all__ = [
    "AdversarialGrant",
    "AdversarySimulator",
    "AttackReport",
    "DEFAULT_HABITS",
    "REPAIR_WINDOW",
    "WEEKDAY_FREE_TIME",
    "DayTraceSimulator",
    "GeneratedRequest",
    "HomeScenario",
    "RandomPolicyConfig",
    "TraceEvent",
    "TraceResult",
    "build_figure2_policy",
    "build_medical_records_scenario",
    "build_negative_rights_scenario",
    "build_repairman_scenario",
    "build_s51_scenario",
    "build_s52_scenario",
    "generate_policy",
    "generate_requests",
    "replay_requests",
    "replay_trace",
]
