"""Schedule-driven daily-life traces (experiment E12).

Residents move through the house according to their
:class:`~repro.home.residents.DailySchedule`; wherever they are, they
occasionally use the devices around them.  Every attempted use flows
through the secure home's mediation, producing an audited decision
stream — the "day in the life" workload the end-to-end benchmark
measures.

Determinism: movement comes straight from the schedules; device-use
attempts are drawn from a seeded RNG, so a trace replays identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.mediation import AccessRequest, Decision
from repro.env.location import OUTSIDE
from repro.exceptions import DeviceError, WorkloadError
from repro.home.registry import SecureHome

#: Per device kind: the operations a resident plausibly attempts.
DEFAULT_HABITS: Dict[str, Tuple[str, ...]] = {
    "television": ("power_on", "watch", "power_off"),
    "stereo": ("power_on", "play"),
    "gameconsole": ("power_on", "play"),
    "vcr": ("power_on", "play_tape"),
    "refrigerator": ("open", "read_inventory", "add_item", "remove_item"),
    "oven": ("power_on", "set_temperature"),
    "dishwasher": ("power_on", "run_cycle"),
    "thermostat": ("set_temperature",),
    "videophone": ("place_call", "hang_up"),
    "documentstore": ("read_document", "list_documents"),
}


@dataclass
class TraceEvent:
    """One attempted device use inside a trace."""

    moment: datetime
    subject: str
    device: str
    operation: str
    granted: bool


@dataclass
class TraceResult:
    """Aggregate outcome of one simulated day."""

    events: List[TraceEvent] = field(default_factory=list)
    moves: int = 0

    @property
    def grants(self) -> int:
        return sum(1 for event in self.events if event.granted)

    @property
    def denials(self) -> int:
        return len(self.events) - self.grants

    def by_subject(self) -> Dict[str, Tuple[int, int]]:
        """subject -> (grants, denials)."""
        result: Dict[str, Tuple[int, int]] = {}
        for event in self.events:
            grants, denials = result.get(event.subject, (0, 0))
            if event.granted:
                grants += 1
            else:
                denials += 1
            result[event.subject] = (grants, denials)
        return result

    def summary(self) -> str:
        return (
            f"{len(self.events)} attempts ({self.grants} granted, "
            f"{self.denials} denied), {self.moves} movements"
        )


def replay_trace(
    home: SecureHome,
    trace: Union[TraceResult, Iterable[TraceEvent]],
) -> List[Decision]:
    """Re-mediate a recorded trace's access attempts in one batch.

    Rebuilds the :class:`~repro.core.mediation.AccessRequest` of every
    trace event and pushes them through the home engine's
    :meth:`~repro.core.mediation.MediationEngine.decide_batch` — the
    what-if tool for policy edits: record a day, change the policy,
    replay the same attempts, diff the outcomes.

    Decisions are rendered against the *current* policy and
    environment state (not the state at trace time): environment roles
    resolve through the home's live environment source per request.
    Returns one decision per event, in event order.
    """
    events = trace.events if isinstance(trace, TraceResult) else list(trace)
    requests = [
        AccessRequest(
            transaction=event.operation, obj=event.device, subject=event.subject
        )
        for event in events
    ]
    return home.engine.decide_batch(requests)


class DayTraceSimulator:
    """Runs one simulated day through a secure home.

    :param home: the fully configured secure home (residents and
        devices registered, policy installed).
    :param step_minutes: clock granularity.
    :param attempt_probability: chance, per resident per step, of
        attempting to use a co-located device.
    :param seed: RNG seed for device-use draws.
    """

    def __init__(
        self,
        home: SecureHome,
        step_minutes: int = 15,
        attempt_probability: float = 0.4,
        seed: int = 0,
        habits: Optional[Dict[str, Tuple[str, ...]]] = None,
        walk_through_rooms: bool = True,
    ) -> None:
        if step_minutes < 1:
            raise WorkloadError("step_minutes must be >= 1")
        if not 0.0 <= attempt_probability <= 1.0:
            raise WorkloadError("attempt_probability must be in [0, 1]")
        self._home = home
        self._step = timedelta(minutes=step_minutes)
        self._attempt_probability = attempt_probability
        self._rng = random.Random(seed)
        self._habits = dict(DEFAULT_HABITS if habits is None else habits)
        #: Move room-by-room along topology adjacency (no teleporting
        #: through walls) so location-based roles see residents in
        #: transit.  Falls back to a direct move when no path exists.
        self._walk = walk_through_rooms
        #: device kind -> devices, grouped once
        self._devices_by_room: Dict[str, List] = {}
        for device in home.devices():
            self._devices_by_room.setdefault(device.room, []).append(device)

    def run(self, hours: float = 24.0) -> TraceResult:
        """Simulate ``hours`` of household life from the current time."""
        if hours <= 0:
            raise WorkloadError("hours must be positive")
        home = self._home
        clock = home.runtime.clock
        result = TraceResult()
        end = clock.now_datetime() + timedelta(hours=hours)
        residents = [r for r in home.residents() if r.schedule is not None]

        while clock.now_datetime() + self._step <= end:
            moment = clock.advance(self._step.total_seconds())
            for resident in residents:
                target = resident.location_at(moment)
                current = home.runtime.location.location_of(resident.name)
                if current != target:
                    result.moves += self._relocate(resident.name, current, target)
                if target == OUTSIDE:
                    continue
                if self._rng.random() >= self._attempt_probability:
                    continue
                event = self._attempt(resident.name, target, moment)
                if event is not None:
                    result.events.append(event)
        return result

    def _relocate(self, subject: str, current: str, target: str) -> int:
        """Move a resident, stepping room-by-room when possible.

        Returns the number of individual movements recorded.
        """
        home = self._home
        if self._walk:
            try:
                path = home.home.path(current, target)
            except Exception:
                path = None
            if path and len(path) > 1:
                for room in path[1:]:
                    home.move(subject, room)
                return len(path) - 1
        home.move(subject, target)
        return 1

    def _attempt(
        self, subject: str, room: str, moment: datetime
    ) -> Optional[TraceEvent]:
        devices = self._devices_by_room.get(room)
        if not devices:
            return None
        device = self._rng.choice(devices)
        kind = type(device).__name__.lower()
        operations = self._habits.get(kind)
        if not operations:
            return None
        operation = self._rng.choice(operations)
        kwargs = self._default_arguments(kind, operation)
        try:
            outcome = self._home.try_operate(
                subject, device.qualified_name, operation, **kwargs
            )
            granted = outcome.granted
        except DeviceError:
            # Access was granted but the device rejected the action
            # (e.g. watching a powered-off TV, removing absent milk).
            # Device-layer failures are part of life; the *access*
            # decision is what the trace records.
            granted = True
        return TraceEvent(
            moment=moment,
            subject=subject,
            device=device.qualified_name,
            operation=operation,
            granted=granted,
        )

    def _default_arguments(self, kind: str, operation: str) -> Dict[str, object]:
        if kind == "refrigerator" and operation == "add_item":
            return {"item": "milk", "quantity": 1}
        if kind == "refrigerator" and operation == "remove_item":
            return {"item": "milk", "quantity": 1}
        if kind == "oven" and operation == "set_temperature":
            return {"temperature_f": 350}
        if kind == "thermostat" and operation == "set_temperature":
            return {"setpoint_f": 68}
        if kind == "documentstore" and operation == "read_document":
            return {"document": "tax-return"}
        return {}
