"""Synthetic policy and request generation for benchmarks.

The paper has no workload of its own, so the scaling experiments (E1,
E10, E11) sweep synthetic policies whose shape is controlled by
:class:`RandomPolicyConfig`.  Generation is fully seeded: the same
config always yields the same policy and the same request stream.

Role hierarchies are generated as random DAGs by only drawing edges
from later-created roles to earlier-created ones, which guarantees
acyclicity by construction.  Subject/object selection in request
streams is Zipf-weighted (rank ``k`` has weight ``1/k``) so a few hot
entities dominate, as in real access logs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.mediation import AccessRequest, Decision, MediationEngine
from repro.core.policy import GrbacPolicy
from repro.exceptions import WorkloadError


@dataclass(frozen=True)
class RandomPolicyConfig:
    """Shape parameters for a synthetic GRBAC policy."""

    subjects: int = 20
    objects: int = 30
    transactions: int = 10
    subject_roles: int = 10
    object_roles: int = 8
    environment_roles: int = 6
    #: Specialization edges per hierarchy (capped by what stays acyclic).
    hierarchy_edges: int = 6
    #: Direct role assignments per subject / per object.
    roles_per_subject: int = 2
    roles_per_object: int = 2
    permissions: int = 60
    #: Fraction of permissions that are DENY rules.
    deny_fraction: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "subjects",
            "objects",
            "transactions",
            "subject_roles",
            "object_roles",
            "environment_roles",
        ):
            if getattr(self, name) < 1:
                raise WorkloadError(f"{name} must be >= 1")
        if not 0.0 <= self.deny_fraction <= 1.0:
            raise WorkloadError("deny_fraction must be in [0, 1]")


def generate_policy(config: RandomPolicyConfig) -> GrbacPolicy:
    """Build a random, structurally valid policy from ``config``."""
    rng = random.Random(config.seed)
    policy = GrbacPolicy(f"random-{config.seed}")

    subject_roles = [f"srole-{i}" for i in range(config.subject_roles)]
    object_roles = [f"orole-{i}" for i in range(config.object_roles)]
    env_roles = [f"erole-{i}" for i in range(config.environment_roles)]
    for name in subject_roles:
        policy.add_subject_role(name)
    for name in object_roles:
        policy.add_object_role(name)
    for name in env_roles:
        policy.add_environment_role(name)

    _random_dag(policy.subject_roles, subject_roles, config.hierarchy_edges, rng)
    _random_dag(policy.object_roles, object_roles, config.hierarchy_edges, rng)
    _random_dag(policy.environment_roles, env_roles, config.hierarchy_edges, rng)

    transactions = [f"txn-{i}" for i in range(config.transactions)]
    for name in transactions:
        policy.add_transaction(name)

    for index in range(config.subjects):
        subject = f"subject-{index}"
        policy.add_subject(subject)
        for role in rng.sample(
            subject_roles, min(config.roles_per_subject, len(subject_roles))
        ):
            policy.assign_subject(subject, role)
    for index in range(config.objects):
        obj = f"object-{index}"
        policy.add_object(obj)
        for role in rng.sample(
            object_roles, min(config.roles_per_object, len(object_roles))
        ):
            policy.assign_object(obj, role)

    added = 0
    attempts = 0
    max_attempts = config.permissions * 20
    while added < config.permissions and attempts < max_attempts:
        attempts += 1
        subject_role = rng.choice(subject_roles)
        object_role = rng.choice(object_roles + ["any-object"])
        env_role = rng.choice(env_roles + ["any-environment"])
        transaction = rng.choice(transactions)
        deny = rng.random() < config.deny_fraction
        try:
            if deny:
                policy.deny(subject_role, transaction, object_role, env_role)
            else:
                policy.grant(subject_role, transaction, object_role, env_role)
        except Exception:
            continue  # duplicate rule tuple; draw again
        added += 1
    if added < config.permissions:
        raise WorkloadError(
            f"could only place {added}/{config.permissions} unique permissions; "
            "increase the role/transaction space"
        )
    return policy


def _random_dag(hierarchy, names: Sequence[str], edges: int, rng: random.Random) -> None:
    """Draw up to ``edges`` random child→parent edges (later → earlier)."""
    if len(names) < 2:
        return
    placed = 0
    attempts = 0
    while placed < edges and attempts < edges * 10:
        attempts += 1
        child_index = rng.randrange(1, len(names))
        parent_index = rng.randrange(0, child_index)
        try:
            hierarchy.add_specialization(names[child_index], names[parent_index])
        except Exception:
            continue
        placed += 1


def _zipf_choice(rng: random.Random, items: Sequence[str]) -> str:
    weights = [1.0 / (rank + 1) for rank in range(len(items))]
    return rng.choices(items, weights=weights, k=1)[0]


@dataclass(frozen=True)
class GeneratedRequest:
    """One synthetic request plus the environment it arrives in."""

    request: AccessRequest
    active_environment_roles: frozenset


def generate_requests(
    policy: GrbacPolicy,
    count: int,
    seed: int = 0,
    max_active_env_roles: int = 2,
) -> List[GeneratedRequest]:
    """Draw ``count`` seeded requests against ``policy``.

    Subjects and objects are Zipf-weighted; each request gets a random
    (possibly empty) set of directly active named environment roles.
    """
    if count < 0:
        raise WorkloadError("count must be >= 0")
    rng = random.Random(seed)
    subjects = [s.name for s in policy.subjects()]
    objects = [o.name for o in policy.objects()]
    transactions = [t.name for t in policy.transactions()]
    env_roles = [
        r.name
        for r in policy.environment_roles.roles()
        if r.name != "any-environment"
    ]
    if not subjects or not objects or not transactions:
        raise WorkloadError("policy needs subjects, objects, and transactions")
    requests: List[GeneratedRequest] = []
    for _ in range(count):
        active_count = rng.randint(0, min(max_active_env_roles, len(env_roles)))
        active = frozenset(rng.sample(env_roles, active_count)) if env_roles else frozenset()
        requests.append(
            GeneratedRequest(
                request=AccessRequest(
                    transaction=_zipf_choice(rng, transactions),
                    obj=_zipf_choice(rng, objects),
                    subject=_zipf_choice(rng, subjects),
                ),
                active_environment_roles=active,
            )
        )
    return requests


def replay_requests(
    engine: MediationEngine,
    generated: Sequence[GeneratedRequest],
    batch: bool = True,
) -> List[Decision]:
    """Mediate a generated request stream and return the decisions.

    The canonical way benchmarks and the CLI drive an engine over a
    synthetic workload.  With ``batch=True`` (default) the stream goes
    through :meth:`MediationEngine.decide_batch`, which amortizes
    snapshot lookup and role expansion across the stream; with
    ``batch=False`` each request is mediated individually — the
    ablation the E-series benchmarks time.
    """
    if batch:
        return engine.decide_batch(
            [item.request for item in generated],
            environment_roles=[
                item.active_environment_roles for item in generated
            ],
        )
    return [
        engine.decide(
            item.request, environment_roles=item.active_environment_roles
        )
        for item in generated
    ]
