"""The paper's worked scenarios as reusable fixtures.

Each ``build_*`` function assembles a fully wired setup for one paper
artifact (DESIGN.md's experiment index references these):

* :func:`build_figure2_policy` — F2, the household role hierarchy;
* :func:`build_s51_scenario` — §5.1, "children may use entertainment
  devices on weekdays during free time";
* :func:`build_s52_scenario` — §5.2, Smart Floor partial
  authentication with the 90% policy threshold;
* :func:`build_repairman_scenario` — §3, the time-boxed, inside-the-
  home-only repairman;
* :func:`build_negative_rights_scenario` — §3, adults allowed on all
  appliances, children denied dangerous ones.

Scenario objects expose an *oracle* where the paper states the
expected outcome, so tests and benchmarks can score correctness
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, time
from typing import Callable, Dict, List, Optional

from repro.auth.service import AuthenticationService
from repro.core.policy import GrbacPolicy
from repro.env.conditions import during
from repro.env.temporal import one_off, time_window, weekdays
from repro.home.devices import (
    Dishwasher,
    GameConsole,
    Oven,
    Refrigerator,
    Stereo,
    Television,
    Vcr,
)
from repro.home.registry import SecureHome
from repro.home.residents import Resident, standard_household
from repro.policy.templates import (
    install_figure2_household,
    install_figure2_roles,
    section51_rule,
)
from repro.sensors.smart_floor import SmartFloor

#: §5.1's environment role: weekdays during after-dinner free time.
WEEKDAY_FREE_TIME = "weekday-free-time"

#: §3's one-off repairman window environment role.
REPAIR_WINDOW = "repair-visit-window"


@dataclass
class HomeScenario:
    """A wired SecureHome plus scenario-specific helpers."""

    name: str
    home: SecureHome
    #: Scenario-specific named extras (devices, apps, services).
    extras: Dict[str, object] = field(default_factory=dict)
    #: Ground-truth oracle, when the paper prescribes outcomes.
    oracle: Optional[Callable[..., bool]] = None


def _register_household(home: SecureHome) -> List[Resident]:
    residents = standard_household()
    for resident in residents:
        home.register_resident(resident)
    return residents


def build_figure2_policy() -> GrbacPolicy:
    """F2: the Figure 2 hierarchy and user assignments, standalone."""
    policy = GrbacPolicy("figure2")
    install_figure2_household(policy)
    return policy


def build_s51_scenario(
    start: datetime = datetime(2000, 1, 17, 18, 0)
) -> HomeScenario:
    """§5.1 end to end: roles, devices, the environment roles, one rule.

    The oracle implements the paper's English directly: a *child* may
    use an *entertainment device* iff the moment is a weekday between
    19:00 and 22:00; parents are not granted by this rule (the §5.1
    policy text only authorizes children — parents would get their own
    rules in a real household).
    """
    home = SecureHome(start=start)
    policy = home.policy
    install_figure2_roles(policy)
    _register_household(home)

    livingroom_tv = Television("tv", "livingroom")
    vcr = Vcr("vcr", "livingroom")
    stereo = Stereo("stereo", "livingroom")
    console = GameConsole("console", "kids-bedroom")
    fridge = Refrigerator("fridge", "kitchen")
    for device in (livingroom_tv, vcr, stereo, console, fridge):
        home.register_device(device)
    # §5.1's object role: "all televisions, stereos and home video
    # games" — realized by making the automatic *entertainment*
    # category role a specialization of it, so any newly purchased
    # entertainment device "would immediately be controlled by this
    # pre-defined access policy".
    policy.add_object_role("entertainment-devices")
    policy.object_roles.add_specialization("entertainment", "entertainment-devices")

    # "Weekdays are defined by the system as the time from 12:01 a.m.
    # on Monday to 11:59 p.m. on Friday"; free time is 19:00-22:00.
    home.runtime.define_time_role(
        policy,
        WEEKDAY_FREE_TIME,
        weekdays() & time_window("19:00", "22:00"),
        "weekdays during after-dinner free time (§5.1)",
    )
    section51_rule(policy)
    livingroom_tv.perform("power_off")

    def oracle(subject_role: str, moment: datetime) -> bool:
        is_weekday = moment.weekday() < 5
        free = time(19, 0) <= moment.time() < time(22, 0)
        return subject_role == "child" and is_weekday and free

    return HomeScenario(
        name="s51-entertainment",
        home=home,
        extras={
            "tv": livingroom_tv,
            "vcr": vcr,
            "stereo": stereo,
            "console": console,
            "fridge": fridge,
        },
        oracle=oracle,
    )


def build_s52_scenario(
    confidence_threshold: float = 0.90,
    identity_sigma: float = 4.0,
    floor_reliability: float = 0.98,
) -> HomeScenario:
    """§5.2: the Smart Floor identifies Alice weakly but her role
    strongly; the 90% threshold gates grants.

    With the default parameters the fixture reproduces the paper's
    numbers in shape: Alice's identity posterior lands near 0.75
    (Bobby's weight is 6 lb away) while the *child* weight class is
    unambiguous, so the role confidence saturates at the floor's
    reliability, 0.98.
    """
    scenario = build_s51_scenario(start=datetime(2000, 1, 17, 19, 30))
    home = scenario.home
    home.engine.confidence_threshold = confidence_threshold

    floor = SmartFloor(
        measurement_sigma=0.0,  # the paper's numbers are about priors,
        identity_sigma=identity_sigma,  # not per-step measurement noise
        reliability=floor_reliability,
    )
    for resident in home.residents():
        floor.enroll(resident.name, resident.weight_lb)
    floor.define_weight_class("child", 40.0, 120.0)
    floor.define_weight_class("parent", 120.0, 260.0)

    service = AuthenticationService(home.policy, identity_threshold=0.5)
    service.register(floor)
    home.auth = service

    scenario.name = "s52-partial-auth"
    scenario.extras["floor"] = floor
    scenario.extras["auth"] = service
    scenario.extras["threshold"] = confidence_threshold
    return scenario


def build_repairman_scenario() -> HomeScenario:
    """§3: "a repairman has access to the refrigerator only while he is
    inside the home on January 17, 2000, between 8:00 a.m. and 1:00 p.m."

    (The §5.1 cast places him at the dishwasher; we authorize both the
    fridge access the §3 sentence names and the dishwasher repair.)
    """
    home = SecureHome(start=datetime(2000, 1, 17, 7, 0))
    policy = home.policy
    install_figure2_roles(policy)
    _register_household(home)
    repairman = Resident(
        "repair-tech", age=35, weight_lb=170.0, roles=("service-agent",)
    )
    home.register_resident(repairman)

    fridge = Refrigerator("fridge", "kitchen")
    dishwasher = Dishwasher("dishwasher", "kitchen")
    dishwasher.state["fault"] = "pump failure"
    for device in (fridge, dishwasher):
        home.register_device(device)

    window = one_off(datetime(2000, 1, 17, 8, 0), datetime(2000, 1, 17, 13, 0))
    inside = home.runtime.location.in_zone_condition("repair-tech", "home")
    home.runtime.define_role(
        policy,
        REPAIR_WINDOW,
        during(window) & inside,
        "repair visit: Jan 17 2000 08:00-13:00, while inside the home",
    )
    for transaction in ("open", "read_inventory"):
        policy.grant(
            "service-agent", transaction, "kitchen", REPAIR_WINDOW,
            name=f"repair-fridge-{transaction}",
        )
    for transaction in ("diagnose", "repair", "power_on", "run_cycle"):
        policy.grant(
            "service-agent", transaction, "kitchen", REPAIR_WINDOW,
            name=f"repair-dishwasher-{transaction}",
        )

    def oracle(moment: datetime, inside_home: bool) -> bool:
        in_window = (
            moment.date() == datetime(2000, 1, 17).date()
            and time(8, 0) <= moment.time() < time(13, 0)
        )
        return in_window and inside_home

    return HomeScenario(
        name="s3-repairman",
        home=home,
        extras={"fridge": fridge, "dishwasher": dishwasher},
        oracle=oracle,
    )


def build_medical_records_scenario() -> HomeScenario:
    """§4.1.2 "Role Precedence": Bobby is both *family-member* (may
    read the family medical records) and *child* (may not).

    "If Bobby tries to read the family's medical records, the system
    must decide how to resolve the inconsistency."  The scenario wires
    the conflicting pair; tests/benches sweep the precedence
    strategies the paper enumerates — always-deny, always-allow, a
    predefined rule (priority), and role specificity.
    """
    from repro.home.devices import DocumentStore

    home = SecureHome(start=datetime(2000, 1, 17, 19, 0))
    policy = home.policy
    install_figure2_roles(policy)
    _register_household(home)

    records = DocumentStore("medical-records", "study")
    records.perform(
        "write_document", document="family-history", content="confidential"
    )
    home.register_device(records)
    policy.add_object_role("medical-records")
    policy.assign_object(records.qualified_name, "medical-records")

    # The paper's inconsistent pair, verbatim.
    policy.grant(
        "family-member", "read_document", "medical-records",
        name="family-may-read",
    )
    policy.deny(
        "child", "read_document", "medical-records",
        name="children-may-not",
    )

    def oracle(strategy_value: str) -> bool:
        """Expected outcome for Bobby under each strategy.

        Deny-overrides / priority-tie / most-specific all resolve to
        deny (the child rule is one hierarchy step *closer* to Bobby's
        direct role than the family-member rule); allow-overrides
        grants.
        """
        return strategy_value == "allow-overrides"

    return HomeScenario(
        name="s412-role-precedence",
        home=home,
        extras={"records": records},
        oracle=oracle,
    )


def build_negative_rights_scenario() -> HomeScenario:
    """§3: "adult residents may be granted access to all appliances in
    the home, while children are denied access to potentially dangerous
    appliances."  Deny-overrides resolves the collision for children on
    dangerous devices."""
    home = SecureHome(start=datetime(2000, 1, 17, 19, 30))
    policy = home.policy
    install_figure2_roles(policy)
    _register_household(home)

    tv = Television("tv", "livingroom")
    oven = Oven("oven", "kitchen")
    fridge = Refrigerator("fridge", "kitchen")
    home.register_device(tv)
    home.register_device(fridge)
    home.register_device(oven)
    policy.add_object_role("dangerous-appliances", "devices that can hurt a child")
    policy.assign_object(oven.qualified_name, "dangerous-appliances")

    # Adults: every appliance.  Family members: power things on.
    policy.grant("family-member", "power_on", name="nr-family-power")
    policy.grant("parent", "set_temperature", name="nr-adult-temp")
    # Children: denied on the dangerous class, regardless of the grant
    # they inherit from family-member.
    policy.deny("child", "power_on", "dangerous-appliances", name="nr-child-danger")

    def oracle(subject_role: str, device_dangerous: bool) -> bool:
        if subject_role == "child" and device_dangerous:
            return False
        return subject_role in ("child", "parent")

    return HomeScenario(
        name="s3-negative-rights",
        home=home,
        extras={"tv": tv, "oven": oven, "fridge": fridge},
        oracle=oracle,
    )
