"""Adversarial workload — the electronic intruder (§1).

"Unlike a physical burglar, an electronic intruder can attack the home
at any time, from any location."  This module probes a configured
:class:`~repro.home.registry.SecureHome` the way such an intruder
would, and scores the policy by what leaks:

* **stranger probes** — a subject with no roles tries every
  (transaction, device) pair;
* **claim spoofing** — an unidentified requester asserts role claims
  ("I am a parent, trust me 99%") at swept confidence levels;
* **replay probes** — requests issued outside the environment windows
  that authorize them (the repairman coming back at midnight);
* **privilege probing** — every *legitimate* subject tries every
  operation, mapping exactly what each role reaches (the attack
  surface an account compromise would expose).

The result object reports every grant the adversary obtained; for a
fail-closed policy, stranger and replay probes should obtain **zero**
grants, and claim spoofing should succeed exactly when the policy
says sensed evidence of that strength *should* suffice — the §5.2
design point, not a bug, but one worth seeing enumerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mediation import AccessRequest
from repro.exceptions import GrbacError
from repro.home.registry import SecureHome


@dataclass(frozen=True)
class AdversarialGrant:
    """One access the adversary obtained."""

    probe: str
    subject: Optional[str]
    transaction: str
    obj: str
    detail: str = ""

    def describe(self) -> str:
        who = self.subject or "<unidentified>"
        suffix = f" [{self.detail}]" if self.detail else ""
        return f"{self.probe}: {who} -> {self.transaction} {self.obj}{suffix}"


@dataclass
class AttackReport:
    """Everything the adversary managed, per probe family."""

    grants: List[AdversarialGrant] = field(default_factory=list)
    attempts: Dict[str, int] = field(default_factory=dict)

    def grants_for(self, probe: str) -> List[AdversarialGrant]:
        return [grant for grant in self.grants if grant.probe == probe]

    def grant_count(self, probe: Optional[str] = None) -> int:
        if probe is None:
            return len(self.grants)
        return len(self.grants_for(probe))

    def summary(self) -> str:
        lines = []
        for probe, attempts in sorted(self.attempts.items()):
            got = self.grant_count(probe)
            lines.append(f"{probe}: {got}/{attempts} attempts granted")
        return "\n".join(lines)


class AdversarySimulator:
    """Runs intruder probe families against a secure home.

    :param home: the fully configured home under attack.
    :param stranger: subject name used for the intruder; registered
        with no roles if absent.
    """

    def __init__(self, home: SecureHome, stranger: str = "intruder") -> None:
        self._home = home
        self._stranger = stranger
        if stranger not in {s.name for s in home.policy.subjects()}:
            home.policy.add_subject(stranger, kind="adversary")

    # ------------------------------------------------------------------
    # Probe families
    # ------------------------------------------------------------------
    def _surface(self) -> List[Tuple[str, str]]:
        """Every (operation, device) pair the home exposes."""
        pairs = []
        for device in self._home.devices():
            for operation in device.operations():
                pairs.append((operation, device.qualified_name))
        return pairs

    def stranger_probe(self, report: AttackReport) -> None:
        """A role-less subject tries the whole surface."""
        probe = "stranger"
        for operation, device in self._surface():
            report.attempts[probe] = report.attempts.get(probe, 0) + 1
            decision = self._home.engine.decide(
                AccessRequest(
                    transaction=operation, obj=device, subject=self._stranger
                )
            )
            if decision.granted:
                report.grants.append(
                    AdversarialGrant(probe, self._stranger, operation, device)
                )

    def claim_spoof_probe(
        self,
        report: AttackReport,
        confidences: Sequence[float] = (0.5, 0.9, 0.99),
    ) -> None:
        """An unidentified requester asserts every subject role.

        A grant here means the policy accepts *sensed role evidence of
        that strength* for the operation — which is the intended §5.2
        behaviour for low-risk actions, and a finding for high-risk
        ones.  The report's detail field carries role and confidence
        so policy owners can review each.
        """
        probe = "claim-spoof"
        roles = [r.name for r in self._home.policy.subject_roles.roles()]
        for confidence in confidences:
            for role in roles:
                for operation, device in self._surface():
                    report.attempts[probe] = report.attempts.get(probe, 0) + 1
                    decision = self._home.engine.decide(
                        AccessRequest(
                            transaction=operation,
                            obj=device,
                            role_claims={role: confidence},
                        )
                    )
                    if decision.granted:
                        report.grants.append(
                            AdversarialGrant(
                                probe,
                                None,
                                operation,
                                device,
                                detail=f"claimed {role}@{confidence:.2f}",
                            )
                        )

    def replay_probe(
        self,
        report: AttackReport,
        subject: str,
        pairs: Sequence[Tuple[str, str]],
    ) -> None:
        """Replay a legitimate subject's accesses *right now*.

        Call this after moving the clock outside the window that made
        the accesses legitimate; every grant is a replay hole.
        """
        probe = "replay"
        for operation, device in pairs:
            report.attempts[probe] = report.attempts.get(probe, 0) + 1
            decision = self._home.engine.decide(
                AccessRequest(transaction=operation, obj=device, subject=subject)
            )
            if decision.granted:
                report.grants.append(
                    AdversarialGrant(probe, subject, operation, device)
                )

    def privilege_map(self) -> Dict[str, List[str]]:
        """What each legitimate subject can reach right now.

        The compromise blast radius: ``{subject: ["op device", ...]}``.
        """
        surface = self._surface()
        result: Dict[str, List[str]] = {}
        for subject in self._home.policy.subjects():
            if subject.name == self._stranger:
                continue
            reachable = []
            for operation, device in surface:
                try:
                    decision = self._home.engine.decide(
                        AccessRequest(
                            transaction=operation, obj=device, subject=subject.name
                        )
                    )
                except GrbacError:  # pragma: no cover - defensive
                    continue
                if decision.granted:
                    reachable.append(f"{operation} {device}")
            result[subject.name] = reachable
        return result

    # ------------------------------------------------------------------
    # The full battery
    # ------------------------------------------------------------------
    def run(
        self, spoof_confidences: Sequence[float] = (0.5, 0.9, 0.99)
    ) -> AttackReport:
        """Stranger + claim-spoof probes (replay needs a scenario)."""
        report = AttackReport()
        self.stranger_probe(report)
        self.claim_spoof_probe(report, spoof_confidences)
        return report
