"""Environment runtime — one object wiring the whole substrate.

Building a working environment takes five coordinated pieces (clock,
event bus, state store, role activator, provider registry).
:class:`EnvironmentRuntime` assembles them with sane defaults and adds
the convenience the examples and apps live on: *defining* an
environment role — registering it in the policy **and** binding its
condition in the activator — in one call.
"""

from __future__ import annotations

from datetime import datetime
from typing import Optional

from repro.core.policy import GrbacPolicy
from repro.core.roles import Role
from repro.env.activation import EnvironmentRoleActivator
from repro.env.clock import Clock, SimulatedClock
from repro.env.conditions import Condition, during
from repro.env.events import EventBus
from repro.env.location import LocationService, ZoneResolver, exact_zone_resolver
from repro.env.providers import ProviderRegistry
from repro.env.state import EnvironmentState
from repro.env.temporal import TimeExpression
from repro.obs.metrics import MetricsRegistry
from repro.obs.observers import ObserverHub


class EnvironmentRuntime:
    """The assembled environment substrate.

    Typical construction::

        runtime = EnvironmentRuntime(start=datetime(2000, 1, 17, 8, 0))
        runtime.define_time_role(policy, "weekdays", weekdays())
        engine = MediationEngine(policy, runtime.activator)
    """

    def __init__(
        self,
        start: Optional[datetime] = None,
        clock: Optional[Clock] = None,
        zone_resolver: ZoneResolver = exact_zone_resolver,
        strict_events: bool = False,
        observers: Optional[ObserverHub] = None,
    ) -> None:
        if clock is not None and start is not None:
            raise ValueError("pass either start or clock, not both")
        #: The trusted time source (simulated unless a clock was given).
        self.clock: Clock = clock or SimulatedClock(
            start or datetime(2000, 1, 17, 8, 0)
        )
        #: The trusted event system (§4.2.2).
        self.bus = EventBus(clock=self.clock, strict=strict_events)
        #: Collected environment variables.
        self.state = EnvironmentState(bus=self.bus)
        #: Environment-role condition bindings + activation.
        self.activator = EnvironmentRoleActivator(
            self.state, self.clock, bus=self.bus
        )
        #: Subject location tracking.
        self.location = LocationService(self.state, resolver=zone_resolver)
        #: Data providers refreshed on clock advances.
        self.providers = ProviderRegistry(self.state, self.clock)
        #: Hub that role definitions / activation sweeps publish to.
        self.observers = observers
        # Last observed snapshot revision (monotonicity guard).
        self._last_revision = 0

    # ------------------------------------------------------------------
    # Role definition conveniences
    # ------------------------------------------------------------------
    def define_role(
        self,
        policy: GrbacPolicy,
        name: str,
        condition: Condition,
        description: str = "",
    ) -> Role:
        """Register ``name`` as an environment role and bind it.

        Registers the role in ``policy`` (idempotently — an existing
        role of the same name is reused, whatever its description) and
        binds the condition in the activator, so the role immediately
        starts activating/deactivating with the environment.
        """
        if name in policy.environment_roles:
            role = policy.environment_roles.role(name)
        else:
            role = policy.add_environment_role(name, description)
        self.activator.bind(name, condition)
        hub = self.observers
        if hub:
            hub.emit("env.define_role", role=name, description=description)
        return role

    def define_time_role(
        self,
        policy: GrbacPolicy,
        name: str,
        expression: TimeExpression,
        description: str = "",
    ) -> Role:
        """Shorthand for a purely temporal environment role (§5.1)."""
        return self.define_role(
            policy, name, during(expression), description or expression.describe()
        )

    def define_location_role(
        self,
        policy: GrbacPolicy,
        name: str,
        subject: str,
        zone: str,
        description: str = "",
    ) -> Role:
        """An environment role active while ``subject`` is in ``zone``."""
        condition = self.location.in_zone_condition(subject, zone)
        return self.define_role(
            policy, name, condition, description or f"{subject} in {zone}"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def active_roles(self) -> set:
        """Names of currently active environment roles."""
        return self.activator.active_environment_roles()

    @property
    def revision(self) -> int:
        """Monotonic environment-snapshot revision.

        Moves whenever anything that can change a decision's
        environment does: an environment role activates or deactivates
        (the activator's revision) or any state variable is written
        (the state revision — which also covers requester-relative
        sources such as
        :class:`~repro.env.location.RequesterLocationEnvironment`,
        whose injected roles derive from location state).  The PDP
        decision cache keys on this, so equal revisions guarantee
        equal environment answers.

        Why a *sum* of two counters cannot alias two distinct
        snapshots to one value: both components are monotonically
        non-decreasing and only ever step — neither is ever reset or
        decremented — so the sum strictly increases whenever either
        component moves.  Two equal readings therefore imply *neither*
        component moved in between, i.e. the same state and the same
        activation set.  (A sum of counters that could each move both
        ways would alias — e.g. +1/-1 — which is why this invariant is
        asserted here and pinned in ``tests/env/test_revision.py``.)
        """
        value = self.activator.revision + self.state.revision
        # Guard the monotonic-sum argument above: a revision that ever
        # stepped backwards would let the PDP cache serve a snapshot
        # from a different environment under a reused key.
        assert value >= self._last_revision, (
            "environment revision regressed: "
            f"{value} < {self._last_revision}"
        )
        self._last_revision = value
        return value

    def now(self) -> datetime:
        """Current simulated time."""
        return self.clock.now_datetime()

    def bind_metrics(self, metrics: "MetricsRegistry") -> None:
        """Expose the substrate's state as live gauges.

        Registers ``env.revision`` (the snapshot revision decision
        caches key on — a stuck value under changing conditions is the
        classic stale-cache symptom) and ``env.active_roles`` (the
        current environment-role census) so a metrics scrape of any
        registry this runtime is bound to shows the environment the
        PDP is deciding under.
        """
        metrics.gauge("env.revision", lambda: float(self.revision))
        metrics.gauge(
            "env.active_roles", lambda: float(len(self.active_roles()))
        )
        metrics.gauge(
            "env.events", lambda: float(self.bus.published_count)
        )
        metrics.gauge(
            "env.boundaries_crossed",
            lambda: float(self.activator.boundaries_crossed),
        )
