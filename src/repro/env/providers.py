"""Provider framework — feeding collected data into environment state.

Providers model the paper's requirement that "the system must be able
to securely and accurately collect enough system data... to determine
whether a given environment role is active" (§4.2.2).  A provider owns
some slice of the state namespace and refreshes it on demand (or on a
clock observer).

Concrete providers elsewhere: the location service
(:mod:`repro.env.location`), the load provider
(:mod:`repro.env.load`), and the sensor framework
(:mod:`repro.sensors`).  Here live the generic pieces: the registry
and two simple reusable providers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.env.clock import Clock
from repro.env.state import EnvironmentState
from repro.exceptions import EnvironmentError_


class StateProvider:
    """Interface: something that refreshes environment variables."""

    #: Short name for diagnostics.
    name: str = "provider"

    def refresh(self, state: EnvironmentState, clock: Clock) -> None:
        """Update the provider's variables in ``state``."""
        raise NotImplementedError  # pragma: no cover - interface


class CallbackProvider(StateProvider):
    """Adapts a plain function into a provider.

    The callback receives the clock and returns a mapping of variable
    names to values, all of which are written into the state.
    """

    def __init__(
        self, name: str, callback: Callable[[Clock], Dict[str, Any]]
    ) -> None:
        self.name = name
        self._callback = callback

    def refresh(self, state: EnvironmentState, clock: Clock) -> None:
        for variable, value in self._callback(clock).items():
            state.set(variable, value)


class ClockProvider(StateProvider):
    """Mirrors calendar facts into state (``time.hour``, ``time.weekday``).

    Most temporal conditions evaluate straight off the clock, but
    mirroring calendar components lets generic ``state_*`` conditions
    and audit snapshots see time like any other variable.
    """

    name = "clock"

    def refresh(self, state: EnvironmentState, clock: Clock) -> None:
        moment = clock.now_datetime()
        state.set("time.hour", moment.hour)
        state.set("time.minute", moment.minute)
        state.set("time.weekday", moment.weekday())
        state.set("time.month", moment.month)
        state.set("time.day", moment.day)


class ProviderRegistry:
    """Holds providers and refreshes them together.

    When constructed with ``auto_refresh=True`` and a simulated clock,
    the registry refreshes all providers after every clock advance, so
    provider-backed environment roles stay current during simulation.
    """

    def __init__(
        self,
        state: EnvironmentState,
        clock: Clock,
        auto_refresh: bool = True,
    ) -> None:
        self._state = state
        self._clock = clock
        self._providers: List[StateProvider] = []
        if auto_refresh and hasattr(clock, "on_advance"):
            clock.on_advance(self.refresh_all)

    def register(self, provider: StateProvider) -> StateProvider:
        """Add a provider and refresh it immediately."""
        if not isinstance(provider, StateProvider):
            raise EnvironmentError_(
                f"expected a StateProvider, got {type(provider).__name__}"
            )
        self._providers.append(provider)
        provider.refresh(self._state, self._clock)
        return provider

    def refresh_all(self) -> None:
        """Refresh every registered provider, in registration order."""
        for provider in self._providers:
            provider.refresh(self._state, self._clock)

    def providers(self) -> List[StateProvider]:
        """Registered providers, in order."""
        return list(self._providers)
