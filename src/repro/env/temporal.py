"""Periodic time expressions — the temporal algebra behind time roles.

The paper positions GRBAC environment roles as a usable superset of
Bertino-style periodic authorizations (§6): "environment roles can be
used to simplify temporal access rules by assigning
human-understandable names to various periods of time, e.g. 'Monday',
'Weekends', or even 'Weekday mornings in July'".

This module provides the algebra those names compile to.  A
:class:`TimeExpression` answers one question — does a given moment
fall inside the period? — and expressions compose with ``&`` / ``|`` /
``~`` so "weekday mornings in July" is literally::

    weekdays() & time_window("06:00", "12:00") & months(7)

All expressions are immutable; ``describe()`` renders a human-readable
form used by policy reports.

The paper's own examples are all constructible:

* *weekdays* — "12:01 a.m. on Monday to 11:59 p.m. on Friday" (§5.1);
* *free time* — "7:00 p.m. to 10:00 p.m." (§5.1);
* the repairman window — January 17, 2000, 8:00 a.m.–1:00 p.m. (§3);
* "the first Monday of each month" (§4.2.2) — :func:`nth_weekday`.
"""

from __future__ import annotations

import calendar
import re
from dataclasses import dataclass
from datetime import date, datetime, time, timedelta
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.exceptions import TemporalExpressionError


def _next_midnight(moment: datetime) -> datetime:
    """The first midnight strictly after ``moment``."""
    return datetime.combine(moment.date() + timedelta(days=1), time.min)


def _start_of_day(day: date) -> datetime:
    return datetime.combine(day, time.min)

_DAY_NAMES = [
    "monday",
    "tuesday",
    "wednesday",
    "thursday",
    "friday",
    "saturday",
    "sunday",
]
_MONTH_NAMES = [
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
]
_TIME_RE = re.compile(r"^(\d{1,2}):(\d{2})(?::(\d{2}))?$")


def parse_time_of_day(text: str) -> time:
    """Parse ``"HH:MM"`` or ``"HH:MM:SS"`` into a :class:`~datetime.time`.

    :raises TemporalExpressionError: on malformed input.
    """
    match = _TIME_RE.match(text.strip())
    if not match:
        raise TemporalExpressionError(f"invalid time of day {text!r}")
    hour, minute = int(match.group(1)), int(match.group(2))
    second = int(match.group(3) or 0)
    if hour > 23 or minute > 59 or second > 59:
        raise TemporalExpressionError(f"time of day out of range: {text!r}")
    return time(hour, minute, second)


class TimeExpression:
    """Base class: a (possibly periodic) set of moments in time."""

    def contains(self, moment: datetime) -> bool:
        """True iff ``moment`` falls inside this expression."""
        raise NotImplementedError  # pragma: no cover - interface

    def describe(self) -> str:
        """Human-readable rendering."""
        raise NotImplementedError  # pragma: no cover - interface

    def next_boundary(self, moment: datetime) -> Optional[datetime]:
        """The earliest instant strictly after ``moment`` at which
        :meth:`contains` *may* change value, or ``None`` when the
        expression is constant from ``moment`` on.

        This is the contract the activation timer wheel schedules
        against: boundaries may be conservative (an instant where the
        value happens not to change is fine — it only costs one cheap
        re-evaluation) but must never be *later* than a true flip.
        The base implementation returns the next midnight, which is
        sound for any expression with day granularity; subclasses with
        sub-day structure override it.
        """
        return _next_midnight(moment)

    # --- algebra -------------------------------------------------------
    def __and__(self, other: "TimeExpression") -> "TimeExpression":
        return Intersection((self, other))

    def __or__(self, other: "TimeExpression") -> "TimeExpression":
        return Union((self, other))

    def __invert__(self) -> "TimeExpression":
        return Complement(self)

    def __contains__(self, moment: datetime) -> bool:
        return self.contains(moment)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}: {self.describe()}>"


@dataclass(frozen=True)
class Always(TimeExpression):
    """Every moment."""

    def contains(self, moment: datetime) -> bool:
        return True

    def describe(self) -> str:
        return "always"

    def next_boundary(self, moment: datetime) -> Optional[datetime]:
        return None


@dataclass(frozen=True)
class Never(TimeExpression):
    """No moment."""

    def contains(self, moment: datetime) -> bool:
        return False

    def describe(self) -> str:
        return "never"

    def next_boundary(self, moment: datetime) -> Optional[datetime]:
        return None


@dataclass(frozen=True)
class TimeOfDayWindow(TimeExpression):
    """A daily window ``[start, end)``; wraps midnight when start >= end.

    ``time_window("19:00", "22:00")`` is the paper's *free time*;
    ``time_window("22:00", "06:00")`` covers night hours across the
    date boundary.
    """

    start: time
    end: time

    def __post_init__(self) -> None:
        if self.start == self.end:
            raise TemporalExpressionError(
                "degenerate time window (start == end); use always()/never()"
            )

    def contains(self, moment: datetime) -> bool:
        moment_time = moment.time()
        if self.start < self.end:
            return self.start <= moment_time < self.end
        return moment_time >= self.start or moment_time < self.end

    def describe(self) -> str:
        return f"{self.start.strftime('%H:%M')}-{self.end.strftime('%H:%M')}"

    def next_boundary(self, moment: datetime) -> Optional[datetime]:
        # The value flips exactly at the start and end instants; the
        # next one is within the coming day on either side of midnight.
        candidates = [
            datetime.combine(day, edge)
            for day in (moment.date(), moment.date() + timedelta(days=1))
            for edge in (self.start, self.end)
        ]
        return min(c for c in candidates if c > moment)


@dataclass(frozen=True)
class WeekdaySet(TimeExpression):
    """Moments whose day-of-week is in the set (0=Monday .. 6=Sunday)."""

    days: FrozenSet[int]

    def __post_init__(self) -> None:
        if not self.days:
            raise TemporalExpressionError("weekday set must be non-empty")
        if not all(0 <= d <= 6 for d in self.days):
            raise TemporalExpressionError("weekday values must be 0..6")

    def contains(self, moment: datetime) -> bool:
        return moment.weekday() in self.days

    def describe(self) -> str:
        return ",".join(_DAY_NAMES[d] for d in sorted(self.days))


@dataclass(frozen=True)
class MonthSet(TimeExpression):
    """Moments whose month is in the set (1=January .. 12=December)."""

    months: FrozenSet[int]

    def __post_init__(self) -> None:
        if not self.months:
            raise TemporalExpressionError("month set must be non-empty")
        if not all(1 <= m <= 12 for m in self.months):
            raise TemporalExpressionError("month values must be 1..12")

    def contains(self, moment: datetime) -> bool:
        return moment.month in self.months

    def describe(self) -> str:
        return ",".join(_MONTH_NAMES[m - 1] for m in sorted(self.months))

    def next_boundary(self, moment: datetime) -> Optional[datetime]:
        # Month membership only changes at the turn of a month.
        if moment.month == 12:
            return datetime(moment.year + 1, 1, 1)
        return datetime(moment.year, moment.month + 1, 1)


@dataclass(frozen=True)
class NthWeekdayOfMonth(TimeExpression):
    """The n-th given weekday of each month (§4.2.2's "first Monday").

    ``n`` counts from 1; negative ``n`` counts from the end of the
    month (``-1`` = last).
    """

    n: int
    weekday: int

    def __post_init__(self) -> None:
        if self.n == 0 or abs(self.n) > 5:
            raise TemporalExpressionError("n must be in 1..5 or -5..-1")
        if not 0 <= self.weekday <= 6:
            raise TemporalExpressionError("weekday must be 0..6")

    def contains(self, moment: datetime) -> bool:
        if moment.weekday() != self.weekday:
            return False
        if self.n > 0:
            # Occurrence index of this weekday within the month.
            occurrence = (moment.day - 1) // 7 + 1
            return occurrence == self.n
        days_in_month = calendar.monthrange(moment.year, moment.month)[1]
        occurrence_from_end = (days_in_month - moment.day) // 7 + 1
        return occurrence_from_end == -self.n

    def describe(self) -> str:
        ordinal = (
            f"{self.n}th" if self.n > 0 else f"{-self.n}th-from-last"
        )
        if self.n == 1:
            ordinal = "first"
        elif self.n == -1:
            ordinal = "last"
        return f"{ordinal} {_DAY_NAMES[self.weekday]} of the month"


@dataclass(frozen=True)
class DateRange(TimeExpression):
    """All moments on days between ``start`` and ``end`` inclusive."""

    start: date
    end: date

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise TemporalExpressionError("date range end before start")

    def contains(self, moment: datetime) -> bool:
        return self.start <= moment.date() <= self.end

    def describe(self) -> str:
        if self.start == self.end:
            return self.start.isoformat()
        return f"{self.start.isoformat()}..{self.end.isoformat()}"

    def next_boundary(self, moment: datetime) -> Optional[datetime]:
        start_at = _start_of_day(self.start)
        end_at = _start_of_day(self.end + timedelta(days=1))
        if moment < start_at:
            return start_at
        if moment < end_at:
            return end_at
        return None


@dataclass(frozen=True)
class DateTimeRange(TimeExpression):
    """Moments in ``[start, end)`` — a one-off window like the §3
    repairman's "January 17, 2000, between 8:00 a.m. and 1:00 p.m."."""

    start: datetime
    end: datetime

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise TemporalExpressionError("datetime range end not after start")

    def contains(self, moment: datetime) -> bool:
        return self.start <= moment < self.end

    def describe(self) -> str:
        return f"{self.start.isoformat()}..{self.end.isoformat()}"

    def next_boundary(self, moment: datetime) -> Optional[datetime]:
        if moment < self.start:
            return self.start
        if moment < self.end:
            return self.end
        return None


@dataclass(frozen=True)
class Union(TimeExpression):
    """Moments in any member expression."""

    members: Tuple[TimeExpression, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise TemporalExpressionError("union needs at least one member")

    def contains(self, moment: datetime) -> bool:
        return any(member.contains(moment) for member in self.members)

    def describe(self) -> str:
        return "(" + " or ".join(m.describe() for m in self.members) + ")"

    def next_boundary(self, moment: datetime) -> Optional[datetime]:
        return _earliest_member_boundary(self.members, moment)


@dataclass(frozen=True)
class Intersection(TimeExpression):
    """Moments in every member expression."""

    members: Tuple[TimeExpression, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise TemporalExpressionError("intersection needs at least one member")

    def contains(self, moment: datetime) -> bool:
        return all(member.contains(moment) for member in self.members)

    def describe(self) -> str:
        return "(" + " and ".join(m.describe() for m in self.members) + ")"

    def next_boundary(self, moment: datetime) -> Optional[datetime]:
        return _earliest_member_boundary(self.members, moment)


@dataclass(frozen=True)
class Complement(TimeExpression):
    """Moments *not* in the inner expression."""

    inner: TimeExpression

    def contains(self, moment: datetime) -> bool:
        return not self.inner.contains(moment)

    def describe(self) -> str:
        return f"not {self.inner.describe()}"

    def next_boundary(self, moment: datetime) -> Optional[datetime]:
        # A complement flips exactly when the inner expression flips.
        return self.inner.next_boundary(moment)


def _earliest_member_boundary(
    members: Tuple[TimeExpression, ...], moment: datetime
) -> Optional[datetime]:
    """Min over member boundaries — a composite can only change value
    when some member does, so the earliest member boundary is a sound
    (if occasionally early) composite boundary."""
    boundaries = [
        boundary
        for boundary in (member.next_boundary(moment) for member in members)
        if boundary is not None
    ]
    return min(boundaries) if boundaries else None


# ----------------------------------------------------------------------
# Named constructors — the human-readable vocabulary (§6)
# ----------------------------------------------------------------------
def always() -> TimeExpression:
    """Every moment."""
    return Always()


def never() -> TimeExpression:
    """No moment."""
    return Never()


def time_window(start: str, end: str) -> TimeExpression:
    """Daily window, e.g. ``time_window("19:00", "22:00")``."""
    return TimeOfDayWindow(parse_time_of_day(start), parse_time_of_day(end))


def days(*names: str) -> TimeExpression:
    """Days of the week by name: ``days("monday", "wednesday")``."""
    indices = set()
    for name in names:
        lowered = name.strip().lower()
        if lowered not in _DAY_NAMES:
            raise TemporalExpressionError(f"unknown day name {name!r}")
        indices.add(_DAY_NAMES.index(lowered))
    return WeekdaySet(frozenset(indices))


def weekdays() -> TimeExpression:
    """Monday through Friday (§5.1's *weekdays* role)."""
    return WeekdaySet(frozenset(range(5)))


def weekends() -> TimeExpression:
    """Saturday and Sunday."""
    return WeekdaySet(frozenset({5, 6}))


def months(*values: "int | str") -> TimeExpression:
    """Months by number or name: ``months(7)`` or ``months("july")``."""
    indices = set()
    for value in values:
        if isinstance(value, int):
            indices.add(value)
            continue
        lowered = value.strip().lower()
        if lowered not in _MONTH_NAMES:
            raise TemporalExpressionError(f"unknown month name {value!r}")
        indices.add(_MONTH_NAMES.index(lowered) + 1)
    return MonthSet(frozenset(indices))


def nth_weekday(n: int, day_name: str) -> TimeExpression:
    """E.g. ``nth_weekday(1, "monday")`` — the first Monday (§4.2.2)."""
    lowered = day_name.strip().lower()
    if lowered not in _DAY_NAMES:
        raise TemporalExpressionError(f"unknown day name {day_name!r}")
    return NthWeekdayOfMonth(n, _DAY_NAMES.index(lowered))


def date_range(start: date, end: date) -> TimeExpression:
    """All of the days from ``start`` to ``end`` inclusive."""
    return DateRange(start, end)


def one_off(start: datetime, end: datetime) -> TimeExpression:
    """A single absolute window (the §3 repairman visit)."""
    return DateTimeRange(start, end)


def union(expressions: Iterable[TimeExpression]) -> TimeExpression:
    """Union of several expressions."""
    return Union(tuple(expressions))


def intersection(expressions: Iterable[TimeExpression]) -> TimeExpression:
    """Intersection of several expressions."""
    return Intersection(tuple(expressions))
