"""Environment-role activation — binding roles to system state.

"Some basic environment interface must exist, so that policy writers
can associate their environment role definitions with actual system
states" (§4.2.2).  :class:`EnvironmentRoleActivator` is that
interface: it maps environment-role names to
:class:`~repro.env.conditions.Condition` objects and computes, at any
moment, which roles are active.

It implements the :class:`~repro.core.mediation.EnvironmentSource`
protocol, so a mediation engine wired to an activator automatically
sees time/location/load-based roles flip as the simulated clock
advances and sensors write state.

Activation is *event-driven and incremental*: at bind time each
condition is analyzed (:func:`repro.env.engine.analyze_condition`)
for the state variables and time expressions it depends on.  A state
write re-evaluates only the roles indexed under that variable; a
clock advance re-evaluates only the roles whose next temporal
boundary (scheduled on a :class:`repro.env.engine.TimerWheel`) was
crossed.  Transitions bump :attr:`revision` and publish
``role.activated`` / ``role.deactivated`` **eagerly, at the change**
— not when the next query happens to observe it — which is what lets
the PDP invalidate cached decisions and push revocations with zero
requests in flight.

With a non-notifying wall clock (``SystemClock``), queries advance
the timer wheel first, so boundary flips are still caught on
observation — and because the memo is keyed on the wheel's crossing
count rather than ``clock.now()``, queries *between* boundaries are
pure cache hits instead of full re-evaluations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.mediation import EnvironmentSource
from repro.env.clock import Clock
from repro.env.conditions import Condition
from repro.env.engine import (
    ConditionDependencies,
    TimerWheel,
    analyze_condition,
    next_boundary_ts,
)
from repro.env.events import EventBus
from repro.env.state import EnvironmentState
from repro.exceptions import EnvironmentError_


class EnvironmentRoleActivator(EnvironmentSource):
    """Evaluates environment-role conditions against live state.

    :param state: the environment state store conditions read.
    :param clock: the trusted time source.
    :param bus: optional event bus for activation-transition events;
        when provided, the activator also subscribes to ``env.changed``
        so state writes trigger targeted re-evaluation immediately.
    :param auto_refresh_on_clock: when the clock supports advance
        notifications (:class:`~repro.env.clock.SimulatedClock`),
        register for them so time-based roles transition eagerly.
    """

    def __init__(
        self,
        state: EnvironmentState,
        clock: Clock,
        bus: Optional[EventBus] = None,
        auto_refresh_on_clock: bool = True,
    ) -> None:
        self._state = state
        self._clock = clock
        self._bus = bus
        self._bindings: Dict[str, Condition] = {}
        self._deps: Dict[str, ConditionDependencies] = {}
        #: variable name -> roles whose conditions read it.
        self._var_index: Dict[str, Set[str]] = {}
        #: roles whose conditions the analyzer cannot see through;
        #: conservatively re-evaluated on every state/clock change.
        self._opaque: Set[str] = set()
        self._wheel = TimerWheel()
        #: The authoritative currently-active set, maintained
        #: incrementally by every targeted re-evaluation.
        self._active: Set[str] = set()
        #: Monotonic activation revision: bumped *at* every transition
        #: (eagerly — event handlers and boundary crossings move it
        #: before any query could observe a stale set).  Downstream
        #: caches — the PDP decision cache — key on it.
        self._revision = 0
        #: Bumped on every bind/unbind/rebind; part of what downstream
        #: memo keys must include (``len(bindings)`` misses a
        #: same-length unbind+bind swap).
        self._bindings_revision = 0
        # Pull-path memo: the state revision the non-opaque active set
        # was last reconciled against.  Crossings and bindings need no
        # marker — both are folded in eagerly where they happen.
        self._seen_state_revision = state.revision
        # Opaque roles re-evaluate whenever time or state moved; their
        # own key preserves the historical "once per instant" caching.
        self._opaque_key: Optional[tuple] = None
        #: Query-memo counters (observability + regression tests).
        self.memo_hits = 0
        self.memo_misses = 0
        #: Total individual condition evaluations performed.
        self.evaluations = 0

        if bus is not None:
            bus.subscribe("env.changed", self._on_env_changed)
        if auto_refresh_on_clock and hasattr(clock, "on_advance"):
            clock.on_advance(self._on_clock_advance)

    # ------------------------------------------------------------------
    # Binding management
    # ------------------------------------------------------------------
    def bind(self, role_name: str, condition: Condition) -> None:
        """Associate ``role_name`` with ``condition``.

        Rebinding an existing role replaces its condition (policy
        updates).  The new condition is evaluated immediately: any
        resulting transition is published and bumps the revision right
        here, not on the next query.
        """
        if not role_name:
            raise EnvironmentError_("environment role name must be non-empty")
        if role_name in self._bindings:
            self._forget(role_name)
        self._bindings[role_name] = condition
        deps = analyze_condition(condition)
        self._deps[role_name] = deps
        for variable in deps.variables:
            self._var_index.setdefault(variable, set()).add(role_name)
        if deps.opaque:
            self._opaque.add(role_name)
        now_ts = self._clock.now()
        now_dt = self._clock.now_datetime()
        for expression in deps.expressions:
            boundary = next_boundary_ts(expression, now_dt)
            if boundary is not None and boundary > now_ts:
                self._wheel.schedule(boundary, role_name, expression)
        self._bindings_revision += 1
        self._reevaluate({role_name} | self._opaque)
        self._opaque_key = self._opaque_token() if self._opaque else None

    def unbind(self, role_name: str) -> None:
        """Remove a binding; the role becomes permanently inactive.

        A deactivation transition (revision bump + event) is published
        immediately when the role was active.

        :raises EnvironmentError_: when the role was never bound.
        """
        if role_name not in self._bindings:
            raise EnvironmentError_(f"environment role {role_name!r} is not bound")
        self._forget(role_name)
        del self._bindings[role_name]
        self._bindings_revision += 1
        if role_name in self._active:
            self._active.discard(role_name)
            self._revision += 1
            if self._bus is not None:
                self._bus.publish("role.deactivated", role=role_name)

    def bound_roles(self) -> List[str]:
        """Names of all bound environment roles."""
        return list(self._bindings)

    def condition_of(self, role_name: str) -> Condition:
        """The condition bound to ``role_name``.

        :raises EnvironmentError_: when unbound.
        """
        try:
            return self._bindings[role_name]
        except KeyError:
            raise EnvironmentError_(
                f"environment role {role_name!r} is not bound"
            ) from None

    def dependencies_of(self, role_name: str) -> ConditionDependencies:
        """The analyzed dependencies of ``role_name``'s condition."""
        try:
            return self._deps[role_name]
        except KeyError:
            raise EnvironmentError_(
                f"environment role {role_name!r} is not bound"
            ) from None

    def _forget(self, role_name: str) -> None:
        """Drop ``role_name``'s dependency records (unbind/rebind).

        Active-set membership is deliberately kept: the caller either
        removes it (unbind) or re-evaluates it (rebind), and the diff
        against the kept membership is what detects the transition.
        """
        deps = self._deps.pop(role_name, None)
        if deps is None:
            return
        for variable in deps.variables:
            index = self._var_index.get(variable)
            if index is not None:
                index.discard(role_name)
                if not index:
                    del self._var_index[variable]
        self._opaque.discard(role_name)
        if deps.expressions:
            self._wheel.drop_role(role_name)

    # ------------------------------------------------------------------
    # Activation queries
    # ------------------------------------------------------------------
    def active_environment_roles(self) -> Set[str]:
        """Names of roles whose condition currently holds.

        This is the :class:`EnvironmentSource` hook the mediation
        engine calls on every decision.  The timer wheel is advanced
        first (a non-notifying wall clock still flips time roles on
        observation); after that the answer is memoized against the
        wheel's crossing count and the state revision, so queries
        between boundaries cost a set copy — not a re-evaluation —
        even when ``clock.now()`` differs on every call.
        """
        affected = self._observe_time()
        if affected:
            self._reevaluate(affected)
        if self._seen_state_revision == self._state.revision:
            self.memo_hits += 1
        else:
            self.memo_misses += 1
            self._reevaluate(set(self._bindings) - self._opaque)
            self._seen_state_revision = self._state.revision
        if self._opaque:
            opaque_key = self._opaque_token()
            if opaque_key != self._opaque_key:
                self._opaque_key = opaque_key
                self._reevaluate(self._opaque)
        return set(self._active)

    @property
    def revision(self) -> int:
        """Monotonic counter observing activation changes.

        Event-driven transitions bump the counter at the change
        itself; reading the property still folds in anything only a
        query can see (wall-clock boundary crossings, state written
        without a bus), so two reads that return the same value are
        guaranteed to bracket an identical active-role set.
        """
        self.active_environment_roles()
        return self._revision

    @property
    def bindings_revision(self) -> int:
        """Bumped on every bind/unbind — including same-length swaps."""
        return self._bindings_revision

    @property
    def boundaries_crossed(self) -> int:
        """Temporal boundaries crossed so far (the wheel's counter)."""
        return self._wheel.crossings

    def next_boundary(self) -> Optional[float]:
        """Timestamp of the next scheduled temporal boundary, or None.

        This is what a push driver (``repro serve --continuous``) arms
        its timer against, so wall-clock flips are delivered without
        polling.
        """
        return self._wheel.next_deadline()

    def is_active(self, role_name: str) -> bool:
        """True iff ``role_name`` is bound and currently active."""
        return role_name in self.active_environment_roles()

    # ------------------------------------------------------------------
    # Incremental update machinery
    # ------------------------------------------------------------------
    def _observe_time(self) -> Set[str]:
        """Advance the wheel to ``clock.now()``; return roles to re-check.

        Every crossed boundary reschedules that expression's *next*
        boundary, so the wheel never runs dry while a temporal binding
        exists.
        """
        crossed = self._wheel.advance(self._clock.now())
        if not crossed:
            return set()
        affected: Set[str] = set()
        now_ts = self._clock.now()
        now_dt = self._clock.now_datetime()
        for role_name, expression in crossed:
            deps = self._deps.get(role_name)
            if deps is None or expression not in deps.expressions:
                continue  # stale entry from an unbound/rebound role
            affected.add(role_name)
            boundary = next_boundary_ts(expression, now_dt)
            if boundary is not None and boundary > now_ts:
                self._wheel.schedule(boundary, role_name, expression)
        return affected

    def _on_clock_advance(self) -> None:
        """Clock-advance notification: fold in crossed boundaries now."""
        affected = self._observe_time() | self._opaque
        if affected:
            self._reevaluate(affected)
        if self._opaque:
            self._opaque_key = self._opaque_token()

    def _on_env_changed(self, event) -> None:
        """``env.changed`` handler: re-evaluate only dependent roles."""
        variable = event.get("name")
        if variable is None:
            affected = set(self._bindings)
        else:
            affected = set(self._var_index.get(variable, ())) | self._opaque
        if affected:
            self._reevaluate(affected)
        self._seen_state_revision = self._state.revision
        if self._opaque:
            self._opaque_key = self._opaque_token()

    def _reevaluate(self, role_names: Set[str]) -> Dict[str, bool]:
        """Evaluate the given roles; apply, publish, and count flips."""
        changed: Dict[str, Tuple[bool, object]] = {}
        for role_name in role_names:
            condition = self._bindings.get(role_name)
            if condition is None:
                continue
            self.evaluations += 1
            active = bool(condition.evaluate(self._state, self._clock))
            if active != (role_name in self._active):
                changed[role_name] = active
                if active:
                    self._active.add(role_name)
                else:
                    self._active.discard(role_name)
        if changed:
            self._revision += 1
            if self._bus is not None:
                for role_name in sorted(changed):
                    self._bus.publish(
                        "role.activated"
                        if changed[role_name]
                        else "role.deactivated",
                        role=role_name,
                    )
        return changed  # type: ignore[return-value]

    def _opaque_token(self) -> tuple:
        return (
            self._clock.now(),
            self._state.revision,
            self._bindings_revision,
        )

    # ------------------------------------------------------------------
    # Transition tracking
    # ------------------------------------------------------------------
    def refresh(self) -> Dict[str, bool]:
        """Force a full re-evaluation of every binding.

        Returns a mapping of role name → new activation value for every
        role that flipped, publishing each transition on the bus.  With
        the incremental handlers wired this is a no-op consistency
        sweep (transitions were already applied at their cause); it
        remains the authoritative recompute the equivalence property
        tests compare the incremental path against.
        """
        self._observe_time()
        changed = self._reevaluate(set(self._bindings))
        self._seen_state_revision = self._state.revision
        self._opaque_key = self._opaque_token() if self._opaque else None
        return changed  # type: ignore[return-value]
