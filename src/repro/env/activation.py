"""Environment-role activation — binding roles to system state.

"Some basic environment interface must exist, so that policy writers
can associate their environment role definitions with actual system
states" (§4.2.2).  :class:`EnvironmentRoleActivator` is that
interface: it maps environment-role names to
:class:`~repro.env.conditions.Condition` objects and computes, at any
moment, which roles are active.

It implements the :class:`~repro.core.mediation.EnvironmentSource`
protocol, so a mediation engine wired to an activator automatically
sees time/location/load-based roles flip as the simulated clock
advances and sensors write state.

Activation transitions are published on the trusted event bus
(``role.activated`` / ``role.deactivated``) whenever :meth:`refresh`
runs — the activator subscribes itself to clock advances and
``env.changed`` events so transitions are observed promptly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.mediation import EnvironmentSource
from repro.env.clock import Clock
from repro.env.conditions import Condition
from repro.env.events import EventBus
from repro.env.state import EnvironmentState
from repro.exceptions import EnvironmentError_


class EnvironmentRoleActivator(EnvironmentSource):
    """Evaluates environment-role conditions against live state.

    :param state: the environment state store conditions read.
    :param clock: the trusted time source.
    :param bus: optional event bus for activation-transition events;
        when provided, the activator also subscribes to ``env.changed``
        so state writes trigger a refresh.
    :param auto_refresh_on_clock: when the clock is a
        :class:`~repro.env.clock.SimulatedClock`, register for advance
        notifications so time-based roles transition eagerly.
    """

    def __init__(
        self,
        state: EnvironmentState,
        clock: Clock,
        bus: Optional[EventBus] = None,
        auto_refresh_on_clock: bool = True,
    ) -> None:
        self._state = state
        self._clock = clock
        self._bus = bus
        self._bindings: Dict[str, Condition] = {}
        self._last_active: Set[str] = set()
        # Evaluation cache: valid while neither time nor state changed.
        self._cache_key: Optional[tuple] = None
        self._cache_value: Set[str] = set()
        #: Monotonic activation revision: bumped whenever the set of
        #: active environment roles (or the bindings that produce it)
        #: changes.  Downstream caches — the PDP decision cache — key
        #: on it, so it must move *before* a stale answer could be
        #: observed; read it through :attr:`revision`, which
        #: re-evaluates first.
        self._revision = 0

        if bus is not None:
            bus.subscribe("env.changed", lambda event: self.refresh())
        if auto_refresh_on_clock and hasattr(clock, "on_advance"):
            clock.on_advance(self.refresh)

    # ------------------------------------------------------------------
    # Binding management
    # ------------------------------------------------------------------
    def bind(self, role_name: str, condition: Condition) -> None:
        """Associate ``role_name`` with ``condition``.

        Rebinding an existing role replaces its condition (policy
        updates); the next refresh publishes any resulting transition.
        """
        if not role_name:
            raise EnvironmentError_("environment role name must be non-empty")
        self._bindings[role_name] = condition
        self._invalidate()

    def unbind(self, role_name: str) -> None:
        """Remove a binding; the role becomes permanently inactive.

        :raises EnvironmentError_: when the role was never bound.
        """
        if role_name not in self._bindings:
            raise EnvironmentError_(f"environment role {role_name!r} is not bound")
        del self._bindings[role_name]
        self._invalidate()

    def bound_roles(self) -> List[str]:
        """Names of all bound environment roles."""
        return list(self._bindings)

    def condition_of(self, role_name: str) -> Condition:
        """The condition bound to ``role_name``.

        :raises EnvironmentError_: when unbound.
        """
        try:
            return self._bindings[role_name]
        except KeyError:
            raise EnvironmentError_(
                f"environment role {role_name!r} is not bound"
            ) from None

    # ------------------------------------------------------------------
    # Activation queries
    # ------------------------------------------------------------------
    def active_environment_roles(self) -> Set[str]:
        """Names of roles whose condition currently holds.

        This is the :class:`EnvironmentSource` hook the mediation
        engine calls on every decision; results are cached against
        ``(clock.now(), state.revision)`` so bursts of decisions at
        one simulated instant evaluate conditions once.
        """
        key = (self._clock.now(), self._state.revision, len(self._bindings))
        if key == self._cache_key:
            return set(self._cache_value)
        active = {
            role_name
            for role_name, condition in self._bindings.items()
            if condition.evaluate(self._state, self._clock)
        }
        if active != self._cache_value:
            self._revision += 1
        self._cache_key = key
        self._cache_value = active
        return set(active)

    @property
    def revision(self) -> int:
        """Monotonic counter observing activation changes.

        Re-evaluates the bindings first, so any pending transition
        (clock advanced, state written, role rebound) is folded in
        before the counter is read — two reads that return the same
        value are guaranteed to bracket an identical active-role set.
        """
        self.active_environment_roles()
        return self._revision

    def is_active(self, role_name: str) -> bool:
        """True iff ``role_name`` is bound and currently active."""
        return role_name in self.active_environment_roles()

    # ------------------------------------------------------------------
    # Transition tracking
    # ------------------------------------------------------------------
    def refresh(self) -> Dict[str, bool]:
        """Re-evaluate all bindings and publish transitions.

        Returns a mapping of role name → new activation value for every
        role that *changed* since the previous refresh.  When a bus is
        attached, each change is published as ``role.activated`` or
        ``role.deactivated`` with the role name in the payload.
        """
        current = self.active_environment_roles()
        changed: Dict[str, bool] = {}
        for role_name in current - self._last_active:
            changed[role_name] = True
            if self._bus is not None:
                self._bus.publish("role.activated", role=role_name)
        for role_name in self._last_active - current:
            changed[role_name] = False
            if self._bus is not None:
                self._bus.publish("role.deactivated", role=role_name)
        self._last_active = current
        return changed

    def _invalidate(self) -> None:
        self._cache_key = None
