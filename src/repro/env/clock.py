"""Clocks — the time source for environment roles.

Time-based environment roles ("weekdays", "free time", "the first
Monday of each month") need an authoritative time source.  The paper
notes the system "must be able to securely and accurately collect...
an accurate estimate of the current time"; in this reproduction the
trusted source is a :class:`Clock`.

:class:`SimulatedClock` is the workhorse: deterministic, manually
advanced, and observable — a week of simulated household activity runs
in milliseconds while exercising exactly the code paths a wall clock
would.  :class:`SystemClock` adapts real time for live deployments.
"""

from __future__ import annotations

import time as _time
from datetime import datetime, timedelta
from typing import Callable, List

from repro.exceptions import EnvironmentError_

#: The simulation epoch used to convert datetimes to float seconds.
EPOCH = datetime(1970, 1, 1)


def to_timestamp(moment: datetime) -> float:
    """Seconds since the simulation epoch for a naive datetime."""
    return (moment - EPOCH).total_seconds()


def from_timestamp(timestamp: float) -> datetime:
    """Inverse of :func:`to_timestamp`."""
    return EPOCH + timedelta(seconds=timestamp)


class Clock:
    """Interface: a monotonic source of the current (simulated) time."""

    def now(self) -> float:
        """Current time as seconds since the epoch."""
        raise NotImplementedError  # pragma: no cover - interface

    def now_datetime(self) -> datetime:
        """Current time as a naive datetime."""
        return from_timestamp(self.now())


class SystemClock(Clock):
    """Wall-clock time (UTC), for live deployments."""

    def now(self) -> float:
        return _time.time()

    def now_datetime(self) -> datetime:
        return datetime.utcnow()


class SimulatedClock(Clock):
    """A deterministic, manually advanced clock.

    Observers registered with :meth:`on_advance` are notified after
    every advancement — the environment-role activator uses this to
    re-evaluate time-based roles, emitting activation/deactivation
    events exactly when simulated time crosses a boundary.
    """

    def __init__(self, start: datetime = datetime(2000, 1, 17, 8, 0)) -> None:
        """
        :param start: initial simulated time.  The default is the
            morning of the paper's repairman example (§3): January 17,
            2000, 8:00 a.m.
        """
        self._now = to_timestamp(start)
        self._observers: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def now(self) -> float:
        return self._now

    # ------------------------------------------------------------------
    # Advancing
    # ------------------------------------------------------------------
    def advance(self, seconds: float = 0.0, **units: float) -> datetime:
        """Move time forward and notify observers.

        Accepts raw seconds and/or any :class:`~datetime.timedelta`
        keyword units: ``clock.advance(minutes=30)``,
        ``clock.advance(days=1, hours=2)``.

        :raises EnvironmentError_: on an attempt to move backwards —
            a trusted time source never regresses.
        """
        delta = seconds + timedelta(**units).total_seconds() if units else seconds
        if delta < 0:
            raise EnvironmentError_("clock cannot move backwards")
        self._now += delta
        self._notify()
        return self.now_datetime()

    def advance_to(self, moment: datetime) -> datetime:
        """Jump forward to an absolute time.

        :raises EnvironmentError_: if ``moment`` is in the past.
        """
        target = to_timestamp(moment)
        if target < self._now:
            raise EnvironmentError_(
                f"cannot advance clock backwards to {moment.isoformat()}"
            )
        self._now = target
        self._notify()
        return self.now_datetime()

    def iterate(
        self, until: datetime, step: timedelta
    ) -> "SimulatedClockIterator":
        """Iterate the clock from now to ``until`` in fixed steps.

        Yields the current datetime at each step *after* advancing, so
        observers fire per step.  Usage::

            for moment in clock.iterate(until=end, step=timedelta(minutes=15)):
                ...
        """
        return SimulatedClockIterator(self, until, step)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def on_advance(self, observer: Callable[[], None]) -> None:
        """Register a zero-argument callback fired after every advance."""
        self._observers.append(observer)

    def _notify(self) -> None:
        for observer in list(self._observers):
            observer()


class SimulatedClockIterator:
    """Iterator support for :meth:`SimulatedClock.iterate`."""

    def __init__(
        self, clock: SimulatedClock, until: datetime, step: timedelta
    ) -> None:
        if step.total_seconds() <= 0:
            raise EnvironmentError_("iteration step must be positive")
        self._clock = clock
        self._until = to_timestamp(until)
        self._step = step.total_seconds()

    def __iter__(self) -> "SimulatedClockIterator":
        return self

    def __next__(self) -> datetime:
        if self._clock.now() + self._step > self._until:
            raise StopIteration
        return self._clock.advance(self._step)
