"""Conditions — predicates that decide environment-role activation.

An environment role is active exactly when its binding condition holds
(§4.2.2).  A :class:`Condition` evaluates over the current
:class:`~repro.env.state.EnvironmentState` and
:class:`~repro.env.clock.Clock`, and conditions compose with
``&`` / ``|`` / ``~`` like the temporal algebra they embed.

The built-in vocabulary covers the paper's examples:

* :func:`during` — time-based roles (*weekdays*, *free-time*);
* :func:`state_equals` / :func:`state_test` — arbitrary collected
  state ("the scope of GRBAC environment roles is limited only by the
  level of support that the system provides for accurately reporting
  environmental information");
* :func:`state_below` / :func:`state_above` — numeric thresholds
  (GACL-style system load, temperature);
* :func:`subject_located` — location roles ("children may only use
  the videophone while they are in the kitchen").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Tuple

from repro.env.clock import Clock
from repro.env.state import EnvironmentState
from repro.env.temporal import TimeExpression


class Condition:
    """Base class: a boolean predicate over (state, clock)."""

    def evaluate(self, state: EnvironmentState, clock: Clock) -> bool:
        """True iff the condition currently holds."""
        raise NotImplementedError  # pragma: no cover - interface

    def describe(self) -> str:
        """Human-readable rendering for reports."""
        raise NotImplementedError  # pragma: no cover - interface

    def __and__(self, other: "Condition") -> "Condition":
        return AllOf((self, other))

    def __or__(self, other: "Condition") -> "Condition":
        return AnyOf((self, other))

    def __invert__(self) -> "Condition":
        return Not(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}: {self.describe()}>"


@dataclass(frozen=True)
class TrueCondition(Condition):
    """Always holds (an unconditionally active environment role)."""

    def evaluate(self, state: EnvironmentState, clock: Clock) -> bool:
        return True

    def describe(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseCondition(Condition):
    """Never holds (an administratively disabled role)."""

    def evaluate(self, state: EnvironmentState, clock: Clock) -> bool:
        return False

    def describe(self) -> str:
        return "false"


@dataclass(frozen=True)
class TemporalCondition(Condition):
    """Holds when the clock's current moment is inside a time expression."""

    expression: TimeExpression

    def evaluate(self, state: EnvironmentState, clock: Clock) -> bool:
        return self.expression.contains(clock.now_datetime())

    def describe(self) -> str:
        return f"time in {self.expression.describe()}"


@dataclass(frozen=True)
class StateCondition(Condition):
    """Holds when a predicate over one state variable is true.

    Missing variables evaluate to ``False`` (fail closed), never to an
    error: an environment role backed by a sensor that has not reported
    yet is simply inactive.
    """

    variable: str
    predicate: Callable[[Any], bool]
    label: str = ""

    def evaluate(self, state: EnvironmentState, clock: Clock) -> bool:
        if self.variable not in state:
            return False
        try:
            return bool(self.predicate(state.get(self.variable)))
        except (TypeError, ValueError):
            # A sensor reporting a malformed value must not crash
            # mediation; the role is simply inactive.
            return False

    def describe(self) -> str:
        return self.label or f"predicate on {self.variable}"


@dataclass(frozen=True)
class AllOf(Condition):
    """Conjunction."""

    members: Tuple[Condition, ...]

    def evaluate(self, state: EnvironmentState, clock: Clock) -> bool:
        return all(member.evaluate(state, clock) for member in self.members)

    def describe(self) -> str:
        return "(" + " and ".join(m.describe() for m in self.members) + ")"


@dataclass(frozen=True)
class AnyOf(Condition):
    """Disjunction."""

    members: Tuple[Condition, ...]

    def evaluate(self, state: EnvironmentState, clock: Clock) -> bool:
        return any(member.evaluate(state, clock) for member in self.members)

    def describe(self) -> str:
        return "(" + " or ".join(m.describe() for m in self.members) + ")"


@dataclass(frozen=True)
class Not(Condition):
    """Negation."""

    inner: Condition

    def evaluate(self, state: EnvironmentState, clock: Clock) -> bool:
        return not self.inner.evaluate(state, clock)

    def describe(self) -> str:
        return f"not {self.inner.describe()}"


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------
def during(expression: TimeExpression) -> Condition:
    """Condition form of a time expression."""
    return TemporalCondition(expression)


def state_equals(variable: str, value: Any) -> Condition:
    """``state[variable] == value``."""
    return StateCondition(variable, lambda v: v == value, f"{variable} == {value!r}")


def state_test(
    variable: str, predicate: Callable[[Any], bool], label: str = ""
) -> Condition:
    """Arbitrary predicate over one state variable."""
    return StateCondition(variable, predicate, label or f"test({variable})")


def state_below(variable: str, threshold: float) -> Condition:
    """``state[variable] < threshold`` (numeric)."""
    return StateCondition(
        variable, lambda v: v < threshold, f"{variable} < {threshold}"
    )


def state_above(variable: str, threshold: float) -> Condition:
    """``state[variable] > threshold`` (numeric)."""
    return StateCondition(
        variable, lambda v: v > threshold, f"{variable} > {threshold}"
    )


def subject_located(subject: str, location: str) -> Condition:
    """The subject's tracked location equals ``location`` exactly.

    For containment semantics ("inside the home", "upstairs") use
    :meth:`repro.env.location.LocationService.in_zone_condition`,
    which understands the home topology.
    """
    return state_equals(f"location.{subject}", location)


def always_true() -> Condition:
    """An unconditionally active role's condition."""
    return TrueCondition()


def always_false() -> Condition:
    """A disabled role's condition."""
    return FalseCondition()
