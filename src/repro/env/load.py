"""System-load provider — the GACL comparison substrate (§6).

Woo & Lam's Generalized Access Control Language uses system load as an
authorization factor "so that certain programs only can be executed
when there is enough system capacity available".  The paper argues
GRBAC subsumes this through environment roles; experiment E7 needs a
load signal to demonstrate it.

:class:`SimulatedLoadProvider` produces a deterministic, seeded load
trace in ``[0, 1]`` — either a bounded random walk or an explicit
schedule — and writes it into the environment state under
``system.load`` where a ``state_below("system.load", x)`` condition
can gate an environment role such as *low-load*.
"""

from __future__ import annotations

import random
from typing import Iterable, List

from repro.env.state import EnvironmentState
from repro.exceptions import EnvironmentError_

#: The state variable this provider maintains.
LOAD_VARIABLE = "system.load"


class SimulatedLoadProvider:
    """A seeded random-walk (or scripted) system-load signal.

    :param state: environment state store to write into.
    :param initial: starting load in [0, 1].
    :param volatility: maximum per-step change for the random walk.
    :param seed: RNG seed — traces are reproducible by construction.
    """

    def __init__(
        self,
        state: EnvironmentState,
        initial: float = 0.3,
        volatility: float = 0.1,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= initial <= 1.0:
            raise EnvironmentError_("initial load must be in [0, 1]")
        if volatility <= 0:
            raise EnvironmentError_("volatility must be positive")
        self._state = state
        self._load = initial
        self._volatility = volatility
        self._rng = random.Random(seed)
        self._state.set(LOAD_VARIABLE, initial)

    @property
    def load(self) -> float:
        """The current load value."""
        return self._load

    def set_load(self, value: float) -> None:
        """Force the load to an explicit value (scripted scenarios)."""
        if not 0.0 <= value <= 1.0:
            raise EnvironmentError_("load must be in [0, 1]")
        self._load = value
        self._state.set(LOAD_VARIABLE, value)

    def step(self, steps: int = 1) -> float:
        """Advance the random walk ``steps`` times; returns new load.

        Each step perturbs the load by a uniform value in
        ``[-volatility, +volatility]``, clamped to [0, 1].
        """
        if steps < 1:
            raise EnvironmentError_("steps must be >= 1")
        for _ in range(steps):
            delta = self._rng.uniform(-self._volatility, self._volatility)
            self._load = min(1.0, max(0.0, self._load + delta))
        self._state.set(LOAD_VARIABLE, self._load)
        return self._load

    def play_trace(self, values: Iterable[float]) -> List[float]:
        """Replay an explicit load trace; returns the applied values."""
        applied: List[float] = []
        for value in values:
            self.set_load(value)
            applied.append(value)
        return applied
