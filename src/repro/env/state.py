"""Environment state — the named variables conditions evaluate over.

"An environment role can be based on any system state that the system
can accurately collect" (§4.2.2).  :class:`EnvironmentState` is that
collection point: a revisioned key-value store of state variables
(``"location.alice" = "kitchen"``, ``"system.load" = 0.42``,
``"occupancy.home" = 3``) written by providers/sensors and read by
conditions.

Every change is published on the trusted event bus as ``env.changed``
so downstream consumers (the role activator, audit tooling) observe
state transitions as events, matching the paper's architecture.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from repro.env.events import EventBus
from repro.exceptions import EnvironmentError_

#: Sentinel distinguishing "no default supplied" from ``default=None``.
_MISSING = object()


class EnvironmentState:
    """A revisioned store of named environment variables.

    :param bus: optional event bus; when attached, every mutation
        publishes ``env.changed`` with ``name``, ``old`` and ``new``.
    """

    def __init__(self, bus: Optional[EventBus] = None) -> None:
        self._bus = bus
        self._values: Dict[str, Any] = {}
        #: Monotonic counter bumped on every effective mutation; used
        #: by caches (e.g. the role activator) as a staleness check.
        self.revision = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def set(self, name: str, value: Any) -> None:
        """Set variable ``name`` to ``value``.

        Setting a variable to its current value is a no-op (no
        revision bump, no event) so noisy providers do not flood the
        bus with non-changes.
        """
        if not name:
            raise EnvironmentError_("state variable name must be non-empty")
        old = self._values.get(name, _MISSING)
        if old is not _MISSING and old == value:
            return
        self._values[name] = value
        self.revision += 1
        if self._bus is not None:
            self._bus.publish(
                "env.changed",
                name=name,
                old=None if old is _MISSING else old,
                new=value,
            )

    def delete(self, name: str) -> None:
        """Remove a variable; safe when absent."""
        if name in self._values:
            old = self._values.pop(name)
            self.revision += 1
            if self._bus is not None:
                self._bus.publish("env.changed", name=name, old=old, new=None)

    def update(self, **values: Any) -> None:
        """Set several variables at once."""
        for name, value in values.items():
            self.set(name, value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def get(self, name: str, default: Any = None) -> Any:
        """Read a variable, with a default when absent."""
        return self._values.get(name, default)

    def require(self, name: str) -> Any:
        """Read a variable that must exist.

        :raises EnvironmentError_: when absent.
        """
        if name not in self._values:
            raise EnvironmentError_(f"environment variable {name!r} is not set")
        return self._values[name]

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def snapshot(self) -> Dict[str, Any]:
        """A shallow copy of all variables (for audit/debug output)."""
        return dict(self._values)
