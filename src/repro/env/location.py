"""Location tracking — "where is the subject?" as environment state.

Location is one of the paper's "two most basic types of environmental
information" (§4.2.2).  The examples all reduce to two queries:

* exact room — "children may only use the videophone while they are
  in the kitchen";
* zone containment — "a repairman has access to the refrigerator only
  while he is *inside the home*", or location roles like "upstairs".

:class:`LocationService` tracks each subject's current location,
writes it into the environment state (``location.<subject>``) so
conditions and audit tooling see it, and answers containment queries
through a pluggable :class:`ZoneResolver` — the home topology module
provides the real resolver, keeping this package free of a dependency
on :mod:`repro.home`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.core.mediation import AccessRequest, EnvironmentSource
from repro.env.conditions import Condition, StateCondition
from repro.env.state import EnvironmentState
from repro.exceptions import EnvironmentError_

#: ``resolver(location, zone) -> bool`` — does ``location`` lie inside
#: ``zone``?  A location is always inside itself.
ZoneResolver = Callable[[str, str], bool]

#: The distinguished location of subjects who are not on the premises.
OUTSIDE = "outside"


def exact_zone_resolver(location: str, zone: str) -> bool:
    """Fallback resolver: containment is equality only."""
    return location == zone


class LocationService:
    """Tracks subject locations and answers zone queries.

    :param state: environment state store to mirror locations into.
    :param resolver: zone-containment oracle; defaults to exact match.
        :meth:`repro.home.topology.Home.zone_resolver` supplies a
        topology-aware one.
    :param valid_locations: optional whitelist; moves to unknown
        locations are rejected when provided.
    """

    def __init__(
        self,
        state: EnvironmentState,
        resolver: ZoneResolver = exact_zone_resolver,
        valid_locations: Optional[Iterable[str]] = None,
    ) -> None:
        self._state = state
        self._resolver = resolver
        self._valid: Optional[Set[str]] = (
            set(valid_locations) | {OUTSIDE} if valid_locations is not None else None
        )
        self._locations: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Movement
    # ------------------------------------------------------------------
    def move(self, subject: str, location: str) -> None:
        """Record that ``subject`` is now at ``location``.

        :raises EnvironmentError_: when a whitelist is configured and
            the location is unknown.
        """
        if self._valid is not None and location not in self._valid:
            raise EnvironmentError_(f"unknown location {location!r}")
        self._locations[subject] = location
        self._state.set(f"location.{subject}", location)

    def leave(self, subject: str) -> None:
        """Record that ``subject`` left the premises."""
        self.move(subject, OUTSIDE)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def location_of(self, subject: str) -> str:
        """The subject's current location (``OUTSIDE`` when untracked)."""
        return self._locations.get(subject, OUTSIDE)

    def is_in_zone(self, subject: str, zone: str) -> bool:
        """True iff the subject's location lies inside ``zone``."""
        location = self.location_of(subject)
        if location == OUTSIDE:
            return zone == OUTSIDE
        return self._resolver(location, zone)

    def subjects_in_zone(self, zone: str) -> List[str]:
        """All tracked subjects currently inside ``zone``."""
        return [s for s in self._locations if self.is_in_zone(s, zone)]

    def occupancy(self, zone: str) -> int:
        """Number of tracked subjects inside ``zone``."""
        return len(self.subjects_in_zone(zone))

    @property
    def revision(self) -> int:
        """Revision of the underlying state store.

        Every :meth:`move`/:meth:`leave` mirrors into state, so this
        moves whenever any tracked location does — what the PDP's
        revision-keyed cache needs from a location source.
        """
        return self._state.revision

    # ------------------------------------------------------------------
    # Condition factory
    # ------------------------------------------------------------------
    def in_zone_condition(self, subject: str, zone: str) -> Condition:
        """A condition: ``subject`` is inside ``zone``.

        Evaluates through the resolver, so "inside the home" and
        "upstairs" work when a topology-aware resolver is wired in.
        The condition reads the mirrored ``location.<subject>`` state
        variable, keeping evaluation consistent with whatever the
        trusted event system last reported.
        """
        resolver = self._resolver

        def predicate(location) -> bool:
            if location is None or location == OUTSIDE:
                return zone == OUTSIDE
            return resolver(str(location), zone)

        return StateCondition(
            f"location.{subject}", predicate, f"{subject} in {zone}"
        )

    def zone_occupied_condition(self, zone: str, minimum: int = 1) -> Condition:
        """A condition: at least ``minimum`` subjects are in ``zone``.

        Unlike :meth:`in_zone_condition`, this reads the service's own
        tracking table (occupancy is not a single state variable), so
        the condition closes over ``self``.
        """
        service = self

        class _Occupied(Condition):
            def evaluate(self, state, clock) -> bool:
                return service.occupancy(zone) >= minimum

            def describe(self) -> str:
                return f"occupancy({zone}) >= {minimum}"

        return _Occupied()


#: Prefix for requester-relative location roles.
REQUESTER_PREFIX = "requester-in-"


class RequesterLocationEnvironment(EnvironmentSource):
    """Environment source adding requester-relative location roles.

    §4.2.2's videophone example — "children may only use the videophone
    while they are in the kitchen" — conditions access on the
    *requester's* location, which no global environment role can
    express (two children in different rooms need different answers at
    the same instant).  This source wraps a base environment (usually
    the role activator) and, per request, adds one role
    ``requester-in-<zone>`` for every tracked zone containing the
    requesting subject.

    The roles are only *injected*; they take effect solely where the
    policy has registered them (unknown active role names are ignored
    by mediation), so the wrapper is safe to install unconditionally.
    """

    def __init__(
        self,
        base: EnvironmentSource,
        location: LocationService,
        zones: Iterable[str],
    ) -> None:
        self._base = base
        self._location = location
        self._zones = list(zones)

    @staticmethod
    def role_for(zone: str) -> str:
        """The injected role name for ``zone``."""
        return f"{REQUESTER_PREFIX}{zone}"

    def active_environment_roles(self) -> Set[str]:
        """Without a requester there is nothing relative to add."""
        return self._base.active_environment_roles()

    def active_environment_roles_for(self, request: AccessRequest) -> Set[str]:
        active = set(self._base.active_environment_roles())
        if request.subject is not None:
            for zone in self._zones:
                if self._location.is_in_zone(request.subject, zone):
                    active.add(self.role_for(zone))
        return active

    @property
    def revision(self) -> int:
        """Combined snapshot revision: base activations + locations.

        Monotonic (a sum of monotonic counters), and moves before any
        changed role set — global or requester-relative — can be
        observed, so the PDP decision cache can key on it.
        """
        base_revision = getattr(self._base, "revision", 0)
        return base_revision + self._location.revision
