"""The trusted event system (§4.2.2).

The paper: "One effective approach... would be to use a trusted event
system that is capable of generating events based on various system
state changes."  This module provides that substrate: a synchronous,
in-order publish/subscribe bus over typed events.

Event types are dotted strings (``"env.changed"``,
``"role.activated"``, ``"sensor.reading"``); subscriptions match an
exact type or a ``prefix.*`` pattern.  Delivery is synchronous and in
publication order, which keeps the simulation deterministic.  Handler
exceptions are captured (not propagated) by default so one broken
consumer cannot wedge the bus; ``strict=True`` flips that for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.exceptions import EnvironmentError_

Handler = Callable[["Event"], None]


@dataclass(frozen=True)
class Event:
    """One occurrence on the bus."""

    #: Dotted event type, e.g. ``"env.changed"``.
    type: str
    #: Structured payload.
    payload: Mapping[str, Any] = field(default_factory=dict)
    #: Seconds since epoch at publication (stamped by the bus when a
    #: clock is attached; ``None`` otherwise).
    timestamp: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.type or " " in self.type:
            raise EnvironmentError_(f"invalid event type {self.type!r}")
        object.__setattr__(self, "payload", dict(self.payload))

    def get(self, key: str, default: Any = None) -> Any:
        """Payload accessor."""
        return self.payload.get(key, default)


@dataclass
class DeliveryError:
    """A handler exception captured during non-strict delivery."""

    event: Event
    handler: Handler
    error: Exception


class EventBus:
    """Synchronous publish/subscribe over :class:`Event`.

    :param clock: optional time source used to stamp events.
    :param strict: when ``True`` handler exceptions propagate to the
        publisher; when ``False`` (default) they are recorded in
        :attr:`errors`.
    """

    def __init__(self, clock=None, strict: bool = False) -> None:
        self._clock = clock
        self._strict = strict
        #: exact type -> handlers
        self._exact: Dict[str, List[Handler]] = {}
        #: prefix (without ``.*``) -> handlers
        self._prefix: Dict[str, List[Handler]] = {}
        #: handlers receiving every event
        self._wildcard: List[Handler] = []
        #: captured handler failures (non-strict mode)
        self.errors: List[DeliveryError] = []
        #: count of events published, for diagnostics
        self.published_count = 0
        #: bounded history of recent events, newest last
        self._history: List[Event] = []
        self._history_capacity = 1024

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def subscribe(self, pattern: str, handler: Handler) -> Callable[[], None]:
        """Subscribe ``handler`` to events matching ``pattern``.

        ``pattern`` is an exact type, a ``prefix.*`` glob, or ``"*"``
        for everything.  Returns an unsubscribe callable.
        """
        if pattern == "*":
            self._wildcard.append(handler)
            return lambda: self._discard(self._wildcard, handler)
        if pattern.endswith(".*"):
            prefix = pattern[:-2]
            handlers = self._prefix.setdefault(prefix, [])
            handlers.append(handler)
            return lambda: self._discard(handlers, handler)
        handlers = self._exact.setdefault(pattern, [])
        handlers.append(handler)
        return lambda: self._discard(handlers, handler)

    @staticmethod
    def _discard(handlers: List[Handler], handler: Handler) -> None:
        if handler in handlers:
            handlers.remove(handler)

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def publish(self, event_type: str, **payload: Any) -> Event:
        """Build, stamp, and deliver an event; returns it."""
        timestamp = self._clock.now() if self._clock is not None else None
        event = Event(event_type, payload, timestamp)
        self.publish_event(event)
        return event

    def publish_event(self, event: Event) -> None:
        """Deliver a pre-built event to all matching subscribers."""
        self.published_count += 1
        self._history.append(event)
        if len(self._history) > self._history_capacity:
            del self._history[: -self._history_capacity]
        for handler in self._handlers_for(event.type):
            try:
                handler(event)
            except Exception as error:
                if self._strict:
                    raise
                self.errors.append(DeliveryError(event, handler, error))

    def _handlers_for(self, event_type: str) -> List[Handler]:
        handlers = list(self._exact.get(event_type, ()))
        for prefix, prefix_handlers in self._prefix.items():
            if event_type == prefix or event_type.startswith(prefix + "."):
                handlers.extend(prefix_handlers)
        handlers.extend(self._wildcard)
        return handlers

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def history(self, event_type: Optional[str] = None) -> List[Event]:
        """Recent events (bounded), optionally filtered by exact type."""
        if event_type is None:
            return list(self._history)
        return [e for e in self._history if e.type == event_type]

    def clear_history(self) -> None:
        """Drop retained history and captured errors."""
        self._history.clear()
        self.errors.clear()
