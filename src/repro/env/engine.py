"""Incremental activation machinery — dependency analysis + timer wheel.

The §4.2.2 videophone scenario needs environment-role transitions to
be *pushed* at the moment the environment changes, not discovered when
the next request happens to re-evaluate every condition.  Two pieces
make that incremental:

* :func:`analyze_condition` walks a condition tree once, at bind time,
  and reports what the condition can possibly depend on — the state
  variables it reads and the :class:`~repro.env.temporal.TimeExpression`
  objects it tests.  A state write then re-evaluates only the roles
  indexed under that variable; everything else is untouched.
* :class:`TimerWheel` holds the *next* activation boundary of every
  temporal dependency (via ``TimeExpression.next_boundary``), so
  wall-clock flips are scheduled events rather than something a
  request has to observe.  Its ``crossings`` counter is the temporal
  half of the activator's memo key: between boundaries the clock can
  tick freely without invalidating anything.

Conditions the walker cannot see through (custom :class:`Condition`
subclasses) are *opaque*: they are conservatively re-evaluated on
every state or clock change, which is exactly the pre-incremental
behaviour — unknown code loses the optimization, never correctness.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from datetime import datetime
from typing import FrozenSet, List, Optional, Tuple

from repro.env.conditions import (
    AllOf,
    AnyOf,
    Condition,
    FalseCondition,
    Not,
    StateCondition,
    TemporalCondition,
    TrueCondition,
)
from repro.env.temporal import TimeExpression


@dataclass(frozen=True)
class ConditionDependencies:
    """What a condition tree can possibly depend on.

    ``opaque`` marks a tree containing at least one condition class
    the walker does not know; such a tree may read anything, so its
    role must be re-evaluated on every environment change.
    """

    variables: FrozenSet[str] = frozenset()
    expressions: Tuple[TimeExpression, ...] = ()
    opaque: bool = False

    def merge(self, other: "ConditionDependencies") -> "ConditionDependencies":
        return ConditionDependencies(
            variables=self.variables | other.variables,
            expressions=self.expressions + other.expressions,
            opaque=self.opaque or other.opaque,
        )


_NO_DEPS = ConditionDependencies()
_OPAQUE = ConditionDependencies(opaque=True)


def analyze_condition(condition: Condition) -> ConditionDependencies:
    """Dependency analysis over the built-in condition vocabulary.

    Constants depend on nothing; a :class:`StateCondition` depends on
    its variable (whatever its predicate closure does with the value);
    a :class:`TemporalCondition` depends on its time expression; the
    combinators union their children.  Anything else is opaque.
    """
    if isinstance(condition, (TrueCondition, FalseCondition)):
        return _NO_DEPS
    if isinstance(condition, StateCondition):
        return ConditionDependencies(variables=frozenset({condition.variable}))
    if isinstance(condition, TemporalCondition):
        return ConditionDependencies(expressions=(condition.expression,))
    if isinstance(condition, (AllOf, AnyOf)):
        deps = _NO_DEPS
        for member in condition.members:
            deps = deps.merge(analyze_condition(member))
        return deps
    if isinstance(condition, Not):
        return analyze_condition(condition.inner)
    return _OPAQUE


@dataclass(order=True)
class _Boundary:
    """One scheduled activation boundary (heap entry)."""

    when_ts: float
    seq: int
    role: str = field(compare=False)
    expression: TimeExpression = field(compare=False)


class TimerWheel:
    """A heap of upcoming temporal activation boundaries.

    ``advance(now)`` pops every boundary at or before ``now`` and
    returns them; each pop bumps :attr:`crossings`, the monotonic
    counter that stands in for wall-clock time in the activator's
    memo key — two reads inside the same boundary window see the same
    crossings value no matter how much real time passed between them.
    """

    def __init__(self) -> None:
        self._heap: List[_Boundary] = []
        self._seq = itertools.count()
        #: Monotonic count of boundaries crossed (popped) so far.
        self.crossings = 0
        #: Total boundaries ever scheduled (introspection / tests).
        self.scheduled = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(
        self, when_ts: float, role: str, expression: TimeExpression
    ) -> None:
        heapq.heappush(
            self._heap,
            _Boundary(when_ts, next(self._seq), role, expression),
        )
        self.scheduled += 1

    def next_deadline(self) -> Optional[float]:
        """Timestamp of the earliest pending boundary, or None."""
        return self._heap[0].when_ts if self._heap else None

    def advance(self, now_ts: float) -> List[Tuple[str, TimeExpression]]:
        """Pop (role, expression) for every boundary due at ``now_ts``."""
        crossed: List[Tuple[str, TimeExpression]] = []
        while self._heap and self._heap[0].when_ts <= now_ts:
            entry = heapq.heappop(self._heap)
            self.crossings += 1
            crossed.append((entry.role, entry.expression))
        return crossed

    def drop_role(self, role: str) -> None:
        """Discard pending boundaries for ``role`` (unbind/rebind).

        Rebuilds the heap without the role's entries; bind/unbind are
        rare control-plane operations, so O(n) is fine here.
        """
        kept = [entry for entry in self._heap if entry.role != role]
        if len(kept) != len(self._heap):
            self._heap = kept
            heapq.heapify(self._heap)


def next_boundary_ts(
    expression: TimeExpression, now: datetime
) -> Optional[float]:
    """``expression.next_boundary`` as an epoch timestamp, or None."""
    from repro.env.clock import to_timestamp

    boundary = expression.next_boundary(now)
    if boundary is None:
        return None
    return to_timestamp(boundary)
