"""Confidence fusion — combining evidence from multiple sensors.

The home has many identification technologies of different reliability
("face recognition is 90% accurate, while voice recognition is only
70%", §3).  When several independently support the same claim, the
system should be *more* confident than any single sensor; when they
disagree, it must combine them defensibly.

Strategies (the E4 ablation compares them):

* ``MAX`` — trust the best single sensor; conservative, never exceeds
  the strongest evidence.
* ``INDEPENDENT`` — treat each sensor's error as independent:
  ``1 - prod(1 - c_i)``.  Two 0.7 sensors agreeing yield 0.91.
* ``MIN`` — paranoid lower bound; useful as a worst-case reference.
* ``MEAN`` — arithmetic mean; included as the naive baseline.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Iterable, List, Sequence

from repro.auth.claims import validate_confidence
from repro.exceptions import AuthenticationError


class FusionStrategy(enum.Enum):
    """How to combine several confidence values for one claim."""

    MAX = "max"
    INDEPENDENT = "independent"
    MIN = "min"
    MEAN = "mean"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def fuse(
    confidences: Sequence[float],
    strategy: FusionStrategy = FusionStrategy.INDEPENDENT,
) -> float:
    """Combine confidence values for one claim into one value.

    :raises AuthenticationError: on an empty sequence or out-of-range
        values.
    """
    if not confidences:
        raise AuthenticationError("cannot fuse an empty confidence list")
    values = [validate_confidence(c) for c in confidences]
    if strategy is FusionStrategy.MAX:
        return max(values)
    if strategy is FusionStrategy.MIN:
        return min(values)
    if strategy is FusionStrategy.MEAN:
        return sum(values) / len(values)
    if strategy is FusionStrategy.INDEPENDENT:
        # 1 - prod(1 - c): the probability at least one sensor is
        # right, under independence.  Computed in log space to stay
        # stable for long evidence lists.
        if any(c == 1.0 for c in values):
            return 1.0
        log_error = sum(math.log1p(-c) for c in values)
        return -math.expm1(log_error)
    raise AuthenticationError(f"unknown fusion strategy {strategy!r}")


def fuse_claim_map(
    claim_lists: Iterable[Dict[str, float]],
    strategy: FusionStrategy = FusionStrategy.INDEPENDENT,
) -> Dict[str, float]:
    """Fuse several per-claim confidence maps key-wise.

    Input: one ``{claim_key: confidence}`` map per sensor.  Output: one
    map with each key's confidences fused.  Keys missing from a sensor
    simply contribute no evidence (they are *not* treated as zero).
    """
    gathered: Dict[str, List[float]] = {}
    for claim_map in claim_lists:
        for key, confidence in claim_map.items():
            gathered.setdefault(key, []).append(confidence)
    return {key: fuse(values, strategy) for key, values in gathered.items()}
