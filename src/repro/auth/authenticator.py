"""Authenticators — producers of identity/role evidence.

An :class:`Authenticator` observes a *presence* (someone physically at
a device, or a remote login attempt) and returns
:class:`~repro.auth.evidence.Evidence`.  Implicit authenticators wrap
sensors (:mod:`repro.sensors`); :class:`PasswordAuthenticator` and
:class:`TokenAuthenticator` model the explicit mechanisms the paper
wants to avoid burdening residents with — but which remote access
(from outside the home) still needs.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.auth.claims import IdentityClaim, RoleClaim
from repro.exceptions import AuthenticationError


@dataclass(frozen=True)
class Evidence:
    """What one authenticator asserted about one presence."""

    #: The authenticator that produced this evidence.
    source: str
    identity_claims: Tuple[IdentityClaim, ...] = ()
    role_claims: Tuple[RoleClaim, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "identity_claims", tuple(self.identity_claims))
        object.__setattr__(self, "role_claims", tuple(self.role_claims))

    @property
    def empty(self) -> bool:
        """True when the authenticator asserted nothing."""
        return not self.identity_claims and not self.role_claims

    def identity_map(self) -> Dict[str, float]:
        """``{subject: best confidence}`` over the identity claims."""
        result: Dict[str, float] = {}
        for claim in self.identity_claims:
            result[claim.subject] = max(result.get(claim.subject, 0.0), claim.confidence)
        return result

    def role_map(self) -> Dict[str, float]:
        """``{role: best confidence}`` over the role claims."""
        result: Dict[str, float] = {}
        for claim in self.role_claims:
            result[claim.role] = max(result.get(claim.role, 0.0), claim.confidence)
        return result

    def describe(self) -> str:
        parts = [c.describe() for c in self.identity_claims]
        parts += [c.describe() for c in self.role_claims]
        return f"{self.source}: " + (", ".join(parts) if parts else "<nothing>")


@dataclass(frozen=True)
class Presence:
    """A ground-truth observation context handed to authenticators.

    ``subject`` is the *actual* person present (known to the
    simulation, never to the policy), and ``features`` carries the
    physically observable signals — weight on the floor, face/voice
    signature quality, a presented token, a typed password.
    """

    subject: str
    features: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "features", dict(self.features))

    def feature(self, key: str, default: Any = None) -> Any:
        return self.features.get(key, default)


class Authenticator:
    """Interface: turn a presence into evidence."""

    #: Short name used as the evidence source label.
    name: str = "authenticator"

    def observe(self, presence: Presence) -> Evidence:
        """Produce evidence about ``presence``.

        Must never raise for an unrecognizable presence — return empty
        evidence instead; recognition failure is normal operation.
        """
        raise NotImplementedError  # pragma: no cover - interface


def _hash_secret(secret: str, salt: str) -> str:
    return hashlib.sha256((salt + ":" + secret).encode("utf-8")).hexdigest()


class PasswordAuthenticator(Authenticator):
    """Explicit password login — full-confidence identity on success.

    Secrets are stored salted-and-hashed; comparison is constant-time.
    This is the "log in" mechanism the paper deems unacceptable for
    everyday in-home use (§5.2) but which remote access still needs.
    """

    name = "password"

    def __init__(self, salt: str = "grbac") -> None:
        self._salt = salt
        self._secrets: Dict[str, str] = {}

    def enroll(self, subject: str, password: str) -> None:
        """Register (or replace) a subject's password."""
        if not password:
            raise AuthenticationError("password must be non-empty")
        self._secrets[subject] = _hash_secret(password, self._salt)

    def observe(self, presence: Presence) -> Evidence:
        """Check a ``password`` feature against the enrolled secret."""
        supplied = presence.feature("password")
        if supplied is None:
            return Evidence(self.name)
        expected = self._secrets.get(presence.subject)
        if expected is None:
            return Evidence(self.name)
        if hmac.compare_digest(expected, _hash_secret(str(supplied), self._salt)):
            return Evidence(
                self.name,
                identity_claims=(IdentityClaim(presence.subject, 1.0, self.name),),
            )
        return Evidence(self.name)

    def login(self, subject: str, password: str) -> Evidence:
        """Convenience for explicit logins without a sensed presence."""
        return self.observe(Presence(subject, {"password": password}))


class TokenAuthenticator(Authenticator):
    """A physical token (RFID badge, key fob) — high-confidence identity.

    Tokens can be lost or lent, so confidence is configurable and
    defaults below 1.0: possession of a badge is strong but not
    conclusive evidence of identity.
    """

    name = "token"

    def __init__(self, confidence: float = 0.95) -> None:
        self._confidence = confidence
        self._tokens: Dict[str, str] = {}

    def issue(self, subject: str, token_id: str) -> None:
        """Bind ``token_id`` to ``subject``."""
        if token_id in self._tokens:
            raise AuthenticationError(f"token {token_id!r} already issued")
        self._tokens[token_id] = subject

    def revoke(self, token_id: str) -> None:
        """Invalidate a token; safe when unknown."""
        self._tokens.pop(token_id, None)

    def observe(self, presence: Presence) -> Evidence:
        """Check a ``token`` feature against issued tokens."""
        token_id = presence.feature("token")
        if token_id is None:
            return Evidence(self.name)
        owner = self._tokens.get(str(token_id))
        if owner is None:
            return Evidence(self.name)
        return Evidence(
            self.name,
            identity_claims=(IdentityClaim(owner, self._confidence, self.name),),
        )
