"""Authentication claims — identity and role evidence with confidence.

The paper (§3): implicit identification technologies "may provide only
'partial authentication' of users based on limited sensory
information... A security model for the home should incorporate these
confidence levels for both authentication and access control."

Two claim types capture what a sensor can assert:

* :class:`IdentityClaim` — "this is Alice, with confidence 0.75";
* :class:`RoleClaim` — "this is *a child*, with confidence 0.98"
  (§5.2: a sensor may be far more confident about a subject's *role*
  than about their identity, because role classes are well separated
  even when individuals within a class are not).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import AuthenticationError


def validate_confidence(value: float, what: str = "confidence") -> float:
    """Ensure a confidence value lies in [0, 1] and return it."""
    if not isinstance(value, (int, float)) or not 0.0 <= float(value) <= 1.0:
        raise AuthenticationError(f"{what} must be a number in [0, 1], got {value!r}")
    return float(value)


@dataclass(frozen=True)
class IdentityClaim:
    """Evidence that a particular subject is present."""

    #: The claimed subject name.
    subject: str
    #: Confidence in [0, 1].
    confidence: float
    #: Which authenticator produced the claim (for audit).
    source: str = ""

    def __post_init__(self) -> None:
        if not self.subject:
            raise AuthenticationError("identity claim needs a subject")
        object.__setattr__(
            self, "confidence", validate_confidence(self.confidence)
        )

    def describe(self) -> str:
        source = f" [{self.source}]" if self.source else ""
        return f"identity={self.subject}@{self.confidence:.2f}{source}"


@dataclass(frozen=True)
class RoleClaim:
    """Evidence that the present subject possesses a subject role."""

    #: The claimed subject-role name.
    role: str
    #: Confidence in [0, 1].
    confidence: float
    #: Which authenticator produced the claim (for audit).
    source: str = ""

    def __post_init__(self) -> None:
        if not self.role:
            raise AuthenticationError("role claim needs a role")
        object.__setattr__(
            self, "confidence", validate_confidence(self.confidence)
        )

    def describe(self) -> str:
        source = f" [{self.source}]" if self.source else ""
        return f"role={self.role}@{self.confidence:.2f}{source}"
