"""The authentication service — §5.2's decision support, end to end.

:class:`AuthenticationService` gathers evidence from every registered
authenticator for a presence, fuses it, and produces an
:class:`AuthenticationResult` that converts directly into an
:class:`~repro.core.mediation.AccessRequest`:

* if the fused *identity* confidence clears ``identity_threshold``,
  the request names the subject (classic authenticated access);
* regardless, all fused *role* evidence rides along as role claims —
  including roles *derived* from identity evidence ("it's Alice at
  0.75, Alice is a child, so this is a child at ≥0.75").

That derivation plus direct role claims is exactly the paper's Smart
Floor argument: identity evidence for Alice may sit below the policy
threshold while role evidence for *child* clears it, and the TV turns
on anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.auth.authenticator import Authenticator, Evidence, Presence
from repro.auth.fusion import FusionStrategy, fuse_claim_map
from repro.core.mediation import AccessRequest
from repro.core.policy import GrbacPolicy
from repro.exceptions import AuthenticationError


@dataclass(frozen=True)
class AuthenticationResult:
    """Fused authentication outcome for one presence."""

    #: Best-supported subject, or ``None`` when no identity evidence.
    subject: Optional[str]
    #: Fused confidence for that subject (0.0 when ``subject`` is None).
    identity_confidence: float
    #: Fused per-subject identity confidences (all candidates).
    identity_confidences: Dict[str, float]
    #: Fused per-role confidences (direct claims + identity-derived).
    role_confidences: Dict[str, float]
    #: The raw evidence, for audit.
    evidence: Tuple[Evidence, ...]

    def describe(self) -> str:
        identity = (
            f"{self.subject}@{self.identity_confidence:.2f}"
            if self.subject
            else "<no identity>"
        )
        roles = ", ".join(
            f"{role}@{conf:.2f}"
            for role, conf in sorted(self.role_confidences.items())
        )
        return f"identity: {identity}; roles: {roles or '<none>'}"


class AuthenticationService:
    """Collects, fuses, and converts authentication evidence.

    :param policy: used to derive role evidence from identity evidence
        (an identity claim for Alice implies claims for Alice's
        *directly assigned* roles at the same confidence).
    :param strategy: fusion strategy for multi-sensor evidence.
    :param identity_threshold: minimum fused identity confidence for a
        request to carry the subject's name.  Below it the requester
        stays unidentified and only role claims flow (fail toward
        anonymity, not toward misidentification).
    """

    def __init__(
        self,
        policy: GrbacPolicy,
        strategy: FusionStrategy = FusionStrategy.INDEPENDENT,
        identity_threshold: float = 0.5,
    ) -> None:
        if not 0.0 <= identity_threshold <= 1.0:
            raise AuthenticationError("identity_threshold must be in [0, 1]")
        self._policy = policy
        self._strategy = strategy
        self._identity_threshold = identity_threshold
        self._authenticators: List[Authenticator] = []

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def register(self, authenticator: Authenticator) -> Authenticator:
        """Add an authenticator to the evidence pipeline."""
        self._authenticators.append(authenticator)
        return authenticator

    def authenticators(self) -> List[Authenticator]:
        """Registered authenticators, in order."""
        return list(self._authenticators)

    # ------------------------------------------------------------------
    # Authentication
    # ------------------------------------------------------------------
    def authenticate(self, presence: Presence) -> AuthenticationResult:
        """Run every authenticator over ``presence`` and fuse.

        :raises AuthenticationError: when no authenticators are
            registered — silently authenticating nobody would mask a
            misconfigured deployment.
        """
        if not self._authenticators:
            raise AuthenticationError("no authenticators registered")
        evidence = tuple(
            auth.observe(presence) for auth in self._authenticators
        )
        return self.fuse_evidence(evidence)

    def fuse_evidence(
        self, evidence: Tuple[Evidence, ...]
    ) -> AuthenticationResult:
        """Fuse pre-collected evidence (used directly by tests/benches)."""
        identity = fuse_claim_map(
            (e.identity_map() for e in evidence), self._strategy
        )
        direct_roles = fuse_claim_map(
            (e.role_map() for e in evidence), self._strategy
        )

        subject: Optional[str] = None
        identity_confidence = 0.0
        if identity:
            subject, identity_confidence = max(
                identity.items(), key=lambda item: (item[1], item[0])
            )

        # Derive role evidence from identity evidence: every candidate
        # subject contributes its directly assigned roles at the
        # candidate's confidence.  Where direct role claims also exist,
        # keep the stronger.
        role_confidences = dict(direct_roles)
        for candidate, confidence in identity.items():
            for role_name in self._policy.authorized_subject_role_names(candidate):
                if confidence > role_confidences.get(role_name, 0.0):
                    role_confidences[role_name] = confidence

        return AuthenticationResult(
            subject=subject,
            identity_confidence=identity_confidence if subject else 0.0,
            identity_confidences=identity,
            role_confidences=role_confidences,
            evidence=evidence,
        )

    # ------------------------------------------------------------------
    # Request construction
    # ------------------------------------------------------------------
    def build_request(
        self,
        result: AuthenticationResult,
        transaction: str,
        obj: str,
    ) -> AccessRequest:
        """Turn an authentication result into an access request.

        The subject name is attached only when the fused identity
        confidence clears the service's ``identity_threshold``; role
        claims always ride along (restricted to roles the policy
        knows, since claims must name real roles).
        """
        known_roles = {
            role: confidence
            for role, confidence in result.role_confidences.items()
            if role in self._policy.subject_roles
        }
        attach_identity = (
            result.subject is not None
            and result.identity_confidence >= self._identity_threshold
        )
        if not attach_identity and not known_roles:
            raise AuthenticationError(
                "authentication produced neither a usable identity nor "
                "any recognizable role evidence"
            )
        return AccessRequest(
            transaction=transaction,
            obj=obj,
            subject=result.subject if attach_identity else None,
            identity_confidence=(
                result.identity_confidence if attach_identity else 1.0
            ),
            role_claims=known_roles,
        )
