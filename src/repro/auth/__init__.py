"""Authentication with confidence levels (§3, §5.2).

Claims, evidence fusion, explicit and implicit authenticators, and the
service that turns sensed presences into GRBAC access requests.
"""

from repro.auth.authenticator import (
    Authenticator,
    Evidence,
    PasswordAuthenticator,
    Presence,
    TokenAuthenticator,
)
from repro.auth.claims import IdentityClaim, RoleClaim, validate_confidence
from repro.auth.fusion import FusionStrategy, fuse, fuse_claim_map
from repro.auth.service import AuthenticationResult, AuthenticationService

__all__ = [
    "AuthenticationResult",
    "AuthenticationService",
    "Authenticator",
    "Evidence",
    "FusionStrategy",
    "IdentityClaim",
    "PasswordAuthenticator",
    "Presence",
    "RoleClaim",
    "TokenAuthenticator",
    "fuse",
    "fuse_claim_map",
    "validate_confidence",
]
