"""RBAC sessions — role activation for the baseline (§4.1.2).

"When role activation is used, a subject must declare which roles he
intends to use at all times... Only roles in the active role set can
be used to execute transactions."

:class:`RbacSessionModel` extends the flat model with sessions and an
optional set of dynamic separation-of-duty pairs (the paper's
teller / account-holder example), enforced at activation time.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Set

from repro.exceptions import ActivationError, ConstraintViolationError
from repro.rbac.model import RbacModel


class RbacSession:
    """One subject's session with its active role set."""

    def __init__(self, session_id: str, subject: str, model: "RbacSessionModel") -> None:
        self.session_id = session_id
        self.subject = subject
        self._model = model
        self.active: Set[str] = set()

    def activate(self, role: str) -> None:
        """Activate a possessed role, subject to DSD.

        :raises ActivationError: if the subject lacks the role.
        :raises ConstraintViolationError: on a DSD conflict.
        """
        if role in self.active:
            return
        if role not in self._model.authorized_roles(self.subject):
            raise ActivationError(
                f"{self.subject!r} does not possess role {role!r}"
            )
        for conflicting in self._model.dsd_conflicts(role):
            if conflicting in self.active:
                raise ConstraintViolationError(
                    f"dynamic separation of duty: {role!r} conflicts with "
                    f"active role {conflicting!r}"
                )
        self.active.add(role)

    def deactivate(self, role: str) -> None:
        """Deactivate an active role.

        :raises ActivationError: if the role is not active.
        """
        if role not in self.active:
            raise ActivationError(f"role {role!r} is not active")
        self.active.discard(role)

    def exec_(self, transaction: str) -> bool:
        """Mediation restricted to *active* roles."""
        for role in self.active:
            if transaction in self._model.authorized_transactions(role):
                return True
        return False


class RbacSessionModel(RbacModel):
    """Figure 1 RBAC + sessions + dynamic separation of duty."""

    def __init__(self, name: str = "rbac-sessions") -> None:
        super().__init__(name)
        self._dsd_pairs: Set[FrozenSet[str]] = set()
        self._counter = itertools.count(1)
        self._sessions: Dict[str, RbacSession] = {}

    # ------------------------------------------------------------------
    # DSD
    # ------------------------------------------------------------------
    def add_dsd_pair(self, role_a: str, role_b: str) -> None:
        """Declare two roles dynamically mutually exclusive."""
        self._require_role(role_a)
        self._require_role(role_b)
        if role_a == role_b:
            raise ConstraintViolationError("a role cannot DSD-conflict with itself")
        self._dsd_pairs.add(frozenset((role_a, role_b)))

    def dsd_conflicts(self, role: str) -> Set[str]:
        """Roles that may not be active together with ``role``."""
        conflicts: Set[str] = set()
        for pair in self._dsd_pairs:
            if role in pair:
                conflicts.update(pair - {role})
        return conflicts

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def open_session(self, subject: str) -> RbacSession:
        """Open a session for ``subject`` with an empty active set."""
        self._require_subject(subject)
        session = RbacSession(f"rbac-session-{next(self._counter)}", subject, self)
        self._sessions[session.session_id] = session
        return session

    def close_session(self, session: RbacSession) -> None:
        """Close a session; idempotent."""
        self._sessions.pop(session.session_id, None)
        session.active.clear()

    def sessions_of(self, subject: str) -> List[RbacSession]:
        """Live sessions of ``subject``."""
        return [s for s in self._sessions.values() if s.subject == subject]
