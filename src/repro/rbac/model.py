"""Traditional RBAC — a literal implementation of Figure 1.

The paper's Figure 1 defines:

* Subject *s* — a user of the system
* Role *r* — a categorization primitive for subjects
* Object *o* — a system resource
* Transaction *t* — a series of one or more accesses to objects
* ``AR(s)`` — the authorized role set for subject *s*
* ``AT(r)`` — the authorized transaction set for role *r*
* ``exec(s, t)`` — true iff subject *s* is authorized to execute
  transaction *t*

**Access mediation rule**: ``exec(s, t)`` iff ∃ role *r* such that
``r ∈ AR(s)`` and ``t ∈ AT(r)``.

This baseline exists for experiment E1 (an executable Figure 1), for
the §6 equivalence check ("traditional RBAC is essentially GRBAC with
subject roles only" — verified property-based against
:func:`repro.rbac.bridge.grbac_from_rbac`), and as the comparator in
the expressiveness benchmarks (E10).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.exceptions import UnknownEntityError


class RbacModel:
    """Flat traditional RBAC, exactly Figure 1's constructs."""

    def __init__(self, name: str = "rbac") -> None:
        self.name = name
        self._subjects: Set[str] = set()
        self._roles: Set[str] = set()
        self._transactions: Set[str] = set()
        #: AR: subject -> authorized role set
        self._authorized_roles: Dict[str, Set[str]] = {}
        #: AT: role -> authorized transaction set
        self._authorized_transactions: Dict[str, Set[str]] = {}
        #: reverse index: transaction -> roles authorizing it
        self._roles_by_transaction: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_subject(self, subject: str) -> str:
        """Register a subject; idempotent."""
        if not subject:
            raise UnknownEntityError("subject name must be non-empty")
        self._subjects.add(subject)
        self._authorized_roles.setdefault(subject, set())
        return subject

    def add_role(self, role: str) -> str:
        """Register a role; idempotent."""
        if not role:
            raise UnknownEntityError("role name must be non-empty")
        self._roles.add(role)
        self._authorized_transactions.setdefault(role, set())
        return role

    def add_transaction(self, transaction: str) -> str:
        """Register a transaction; idempotent."""
        if not transaction:
            raise UnknownEntityError("transaction name must be non-empty")
        self._transactions.add(transaction)
        return transaction

    # ------------------------------------------------------------------
    # AR and AT
    # ------------------------------------------------------------------
    def authorize_role(self, subject: str, role: str) -> None:
        """Add ``role`` to AR(subject) — role possession."""
        self._require_subject(subject)
        self._require_role(role)
        self._authorized_roles[subject].add(role)

    def authorize_transaction(self, role: str, transaction: str) -> None:
        """Add ``transaction`` to AT(role)."""
        self._require_role(role)
        self._require_transaction(transaction)
        self._authorized_transactions[role].add(transaction)
        self._roles_by_transaction.setdefault(transaction, set()).add(role)

    def authorized_roles(self, subject: str) -> Set[str]:
        """AR(s): the authorized role set of ``subject``."""
        self._require_subject(subject)
        return set(self._authorized_roles[subject])

    def authorized_transactions(self, role: str) -> Set[str]:
        """AT(r): the authorized transaction set of ``role``."""
        self._require_role(role)
        return set(self._authorized_transactions[role])

    # ------------------------------------------------------------------
    # The Figure 1 mediation rule
    # ------------------------------------------------------------------
    def exec_(self, subject: str, transaction: str) -> bool:
        """``exec(s, t)``: ∃ r with r ∈ AR(s) and t ∈ AT(r)."""
        self._require_subject(subject)
        self._require_transaction(transaction)
        authorizing = self._roles_by_transaction.get(transaction, set())
        return not authorizing.isdisjoint(self._authorized_roles[subject])

    def exec_naive(self, subject: str, transaction: str) -> bool:
        """The same rule as a literal double loop (for equivalence
        tests of the reverse index)."""
        self._require_subject(subject)
        self._require_transaction(transaction)
        for role in self._authorized_roles[subject]:
            if transaction in self._authorized_transactions[role]:
                return True
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def subjects(self) -> List[str]:
        return sorted(self._subjects)

    def roles(self) -> List[str]:
        return sorted(self._roles)

    def transactions(self) -> List[str]:
        return sorted(self._transactions)

    def stats(self) -> Dict[str, int]:
        """Size counters for benchmark reporting."""
        return {
            "subjects": len(self._subjects),
            "roles": len(self._roles),
            "transactions": len(self._transactions),
            "role_authorizations": sum(
                len(roles) for roles in self._authorized_roles.values()
            ),
            "transaction_authorizations": sum(
                len(txns) for txns in self._authorized_transactions.values()
            ),
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_subject(self, subject: str) -> None:
        if subject not in self._subjects:
            raise UnknownEntityError(f"unknown subject {subject!r}")

    def _require_role(self, role: str) -> None:
        if role not in self._roles:
            raise UnknownEntityError(f"unknown role {role!r}")

    def _require_transaction(self, transaction: str) -> None:
        if transaction not in self._transactions:
            raise UnknownEntityError(f"unknown transaction {transaction!r}")
