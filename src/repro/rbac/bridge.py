"""Bridges between GRBAC and the traditional RBAC baseline (§6).

Two claims from the related-work section become executable here:

1. **"Traditional RBAC is essentially GRBAC with subject roles only."**
   :func:`grbac_from_rbac` embeds any Figure 1 model into GRBAC using
   the distinguished ``any-object`` / ``any-environment`` roles, and
   :func:`rbac_from_grbac` projects a subject-roles-only GRBAC policy
   back.  Property-based tests check the round trip decides
   identically.

2. **Expressiveness** (benchmark E10): plain RBAC *can* emulate
   environment- and object-sensitivity, but only by multiplying roles
   and transactions out over contexts.  :class:`FlattenedGrbac`
   performs that emulation mechanically — each (subject role ×
   environment role) pair becomes one flat role, each (transaction ×
   object) pair one flat transaction — so the size blowup GRBAC avoids
   can be *measured* rather than asserted.

The flattening supports grant-only policies over flat (non-
hierarchical) role structures with one named environment role active
at a time; that restricted shape is exactly what the expressiveness
benchmark sweeps, and keeping the emulation simple keeps it auditable.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.mediation import AccessRequest, MediationEngine
from repro.core.permissions import Sign
from repro.core.policy import GrbacPolicy
from repro.core.roles import ANY_ENVIRONMENT, ANY_OBJECT
from repro.exceptions import PolicyError
from repro.rbac.model import RbacModel

#: The placeholder object used when embedding object-less RBAC.
SYSTEM_OBJECT = "rbac-system"


def grbac_from_rbac(rbac: RbacModel) -> Tuple[GrbacPolicy, str]:
    """Embed a Figure 1 RBAC model into GRBAC.

    Every AT entry becomes a GRANT against ``any-object`` and
    ``any-environment``; requests target the placeholder object.
    Returns ``(policy, placeholder_object_name)``.
    """
    policy = GrbacPolicy(f"grbac({rbac.name})")
    policy.add_object(SYSTEM_OBJECT)
    for subject in rbac.subjects():
        policy.add_subject(subject)
    for role in rbac.roles():
        policy.add_subject_role(role)
    for transaction in rbac.transactions():
        policy.add_transaction(transaction)
    for subject in rbac.subjects():
        for role in rbac.authorized_roles(subject):
            policy.assign_subject(subject, role)
    for role in rbac.roles():
        for transaction in rbac.authorized_transactions(role):
            policy.grant(role, transaction)
    return policy, SYSTEM_OBJECT


def rbac_from_grbac(policy: GrbacPolicy) -> RbacModel:
    """Project a subject-roles-only GRBAC policy onto Figure 1 RBAC.

    :raises PolicyError: if the policy uses negative rights, object
        roles other than ``any-object``, environment roles other than
        ``any-environment``, or a subject-role hierarchy — those have
        no counterpart in the flat baseline.
    """
    if policy.subject_roles.edges():
        raise PolicyError("cannot project a hierarchical policy onto flat RBAC")
    rbac = RbacModel(f"rbac({policy.name})")
    for subject in policy.subjects():
        rbac.add_subject(subject.name)
    for role in policy.subject_roles.roles():
        rbac.add_role(role.name)
    for transaction in policy.transactions():
        rbac.add_transaction(transaction.name)
    for subject in policy.subjects():
        for role in policy.authorized_subject_roles(subject.name):
            rbac.authorize_role(subject.name, role.name)
    for permission in policy.permissions():
        if permission.sign is not Sign.GRANT:
            raise PolicyError("flat RBAC has no negative rights")
        if permission.object_role != ANY_OBJECT:
            raise PolicyError("flat RBAC cannot express object roles")
        if permission.environment_role != ANY_ENVIRONMENT:
            raise PolicyError("flat RBAC cannot express environment roles")
        rbac.authorize_transaction(
            permission.subject_role.name, permission.transaction.name
        )
    return rbac


class FlattenedGrbac:
    """RBAC emulation of a (restricted) GRBAC policy, with size metrics.

    Construction enumerates the cross products described in the module
    docstring.  :meth:`exec_in_env` then mediates a request the way a
    flat-RBAC deployment would: activate the subject's flattened roles
    for the current environment context and check the flattened
    transaction.
    """

    def __init__(self, policy: GrbacPolicy) -> None:
        self._validate(policy)
        self._policy = policy
        self.rbac = RbacModel(f"flattened({policy.name})")

        subject_roles = [r.name for r in policy.subject_roles.roles()]
        env_roles = [r.name for r in policy.environment_roles.roles()]
        objects = [o.name for o in policy.objects()]

        # Roles: every (subject role x environment role) pair.
        for subject_role in subject_roles:
            for env_role in env_roles:
                self.rbac.add_role(self._flat_role(subject_role, env_role))
        # Transactions: every (transaction x object) pair.
        for transaction in policy.transactions():
            for obj in objects:
                self.rbac.add_transaction(
                    self._flat_transaction(transaction.name, obj)
                )
        # AR: subjects hold every env variant of their direct roles
        # (session activation picks the current one).
        for subject in policy.subjects():
            self.rbac.add_subject(subject.name)
            for role in policy.authorized_subject_roles(subject.name):
                for env_role in env_roles:
                    self.rbac.authorize_role(
                        subject.name, self._flat_role(role.name, env_role)
                    )
        # AT: each GRBAC permission expands over the objects in its
        # object role.
        for permission in policy.permissions():
            member_objects = policy.objects_in_role(permission.object_role.name)
            for obj in member_objects:
                self.rbac.authorize_transaction(
                    self._flat_role(
                        permission.subject_role.name,
                        permission.environment_role.name,
                    ),
                    self._flat_transaction(permission.transaction.name, obj),
                )

    @staticmethod
    def _validate(policy: GrbacPolicy) -> None:
        for hierarchy in (
            policy.subject_roles,
            policy.object_roles,
            policy.environment_roles,
        ):
            if hierarchy.edges():
                raise PolicyError(
                    "flattening supports flat (non-hierarchical) policies only"
                )
        for permission in policy.permissions():
            if permission.sign is not Sign.GRANT:
                raise PolicyError("flattening supports grant-only policies")

    @staticmethod
    def _flat_role(subject_role: str, env_role: str) -> str:
        return f"{subject_role}@{env_role}"

    @staticmethod
    def _flat_transaction(transaction: str, obj: str) -> str:
        return f"{transaction}#{obj}"

    # ------------------------------------------------------------------
    # Emulated mediation
    # ------------------------------------------------------------------
    def exec_in_env(
        self,
        subject: str,
        transaction: str,
        obj: str,
        active_env_role: Optional[str] = None,
    ) -> bool:
        """Mediate as flat RBAC would, in one environment context.

        The subject's activated roles are the flattened variants of
        their direct roles for ``active_env_role`` and for
        ``any-environment`` (which is always active).
        """
        contexts = {ANY_ENVIRONMENT.name}
        if active_env_role is not None:
            contexts.add(active_env_role)
        flat_transaction = self._flat_transaction(transaction, obj)
        direct = self._policy.authorized_subject_role_names(subject)
        for role in direct:
            for env_role in contexts:
                flat_role = self._flat_role(role, env_role)
                if flat_transaction in self.rbac.authorized_transactions(flat_role):
                    return True
        return False

    # ------------------------------------------------------------------
    # The measurement (E10)
    # ------------------------------------------------------------------
    def size_metrics(self) -> Dict[str, int]:
        """Flattened-model sizes, to compare against the GRBAC policy."""
        stats = self.rbac.stats()
        return {
            "flat_roles": stats["roles"],
            "flat_transactions": stats["transactions"],
            "flat_authorizations": stats["transaction_authorizations"],
            "flat_role_authorizations": stats["role_authorizations"],
        }


def agreement_check(
    policy: GrbacPolicy,
    flattened: FlattenedGrbac,
    env_role: Optional[str] = None,
) -> bool:
    """Verify the flattening decides identically to GRBAC.

    Exhaustively compares all (subject, transaction, object) triples
    under one active environment role.  Used by tests and by E10 as a
    self-check before reporting sizes.
    """
    engine = MediationEngine(policy)
    active = {env_role} if env_role else set()
    for subject in policy.subjects():
        if not policy.authorized_subject_role_names(subject.name):
            continue
        for transaction in policy.transactions():
            for obj in policy.objects():
                request = AccessRequest(
                    transaction=transaction.name, obj=obj.name, subject=subject.name
                )
                grbac_says = engine.decide(
                    request, environment_roles=active
                ).granted
                rbac_says = flattened.exec_in_env(
                    subject.name, transaction.name, obj.name, env_role
                )
                if grbac_says != rbac_says:
                    return False
    return True
