"""Traditional RBAC baseline (Figure 1) and GRBAC bridges (§6)."""

from repro.rbac.bridge import (
    SYSTEM_OBJECT,
    FlattenedGrbac,
    agreement_check,
    grbac_from_rbac,
    rbac_from_grbac,
)
from repro.rbac.hierarchy import HierarchicalRbacModel
from repro.rbac.model import RbacModel
from repro.rbac.sessions import RbacSession, RbacSessionModel

__all__ = [
    "SYSTEM_OBJECT",
    "FlattenedGrbac",
    "HierarchicalRbacModel",
    "RbacModel",
    "RbacSession",
    "RbacSessionModel",
    "agreement_check",
    "grbac_from_rbac",
    "rbac_from_grbac",
]
