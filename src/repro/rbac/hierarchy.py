"""Hierarchical RBAC (RBAC1-style) over the flat Figure 1 model.

§4.1.2 "Role Hierarchies" motivates inheritance: generic rules written
once against a broad role apply to all its specializations.
:class:`HierarchicalRbacModel` layers a specialization DAG (reusing
the core :class:`~repro.core.hierarchy.RoleHierarchy` machinery, with
subject-kind roles) over :class:`~repro.rbac.model.RbacModel`:
possession of a role implies possession of its generalizations, so
``exec(s, t)`` holds when *any* effective role authorizes *t*.
"""

from __future__ import annotations

from typing import Set

from repro.core.hierarchy import RoleHierarchy
from repro.core.roles import RoleKind, subject_role
from repro.rbac.model import RbacModel


class HierarchicalRbacModel(RbacModel):
    """Figure 1 RBAC plus a role-specialization hierarchy."""

    def __init__(self, name: str = "hierarchical-rbac") -> None:
        super().__init__(name)
        self.hierarchy = RoleHierarchy(RoleKind.SUBJECT)

    def add_role(self, role: str) -> str:
        """Register a role in both the flat model and the hierarchy."""
        super().add_role(role)
        if role not in self.hierarchy:
            self.hierarchy.add_role(subject_role(role))
        return role

    def add_specialization(self, child: str, parent: str) -> None:
        """Declare ``child`` a specialization of ``parent``."""
        self.add_role(child)
        self.add_role(parent)
        self.hierarchy.add_specialization(child, parent)

    def effective_roles(self, subject: str) -> Set[str]:
        """AR(s) closed under generalization."""
        direct = self.authorized_roles(subject)
        return {role.name for role in self.hierarchy.expand(direct)}

    def exec_(self, subject: str, transaction: str) -> bool:
        """Mediation with hierarchy expansion."""
        self._require_subject(subject)
        self._require_transaction(transaction)
        authorizing = self._roles_by_transaction.get(transaction, set())
        return not authorizing.isdisjoint(self.effective_roles(subject))

    def exec_naive(self, subject: str, transaction: str) -> bool:
        """Literal double loop over effective roles."""
        self._require_subject(subject)
        self._require_transaction(transaction)
        for role in self.effective_roles(subject):
            if transaction in self._authorized_transactions.get(role, ()):
                return True
        return False
