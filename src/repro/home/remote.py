"""Remote access — the "always connected" home's front door (§1).

"In a connected community, resources in the home and information about
the residents will be remotely accessible to both residents and
guests, as well as to potentially malicious users."  The paper's
motivating threat is the *electronic intruder* who "can attack the
home at any time, from any location" — so a policy must be able to say
*this is fine remotely* (reading the Cyberfridge inventory) and *this
is not* (streaming the bedroom camera).

:class:`RemoteGateway` mediates channel-aware requests.  Whether the
requester is physically inside is per-request context, so the gateway
realizes it as two *request-contextual environment roles*:

* ``requester-inside`` — active for a request arriving from someone
  the location service places inside the home;
* ``requester-remote`` — active for a request arriving over the
  network.

These compose with every other environment role: "family members may
read the fridge inventory when requester-remote" is one ordinary GRBAC
rule.  Remote requests additionally require authentication (no
identity, no service) and are audited with their channel.

This is a documented extension of the paper's model: plain environment
roles describe *global* system state; requester-relative state needs
the per-request injection the gateway performs.
"""

from __future__ import annotations

from typing import Any, Optional, Set

from repro.auth.authenticator import Presence
from repro.core.mediation import AccessRequest
from repro.exceptions import AccessDeniedError, AuthenticationError
from repro.home.registry import OperationResult, SecureHome
from repro.home.topology import HOME_ZONE

#: Environment role active while the requester is physically inside.
INSIDE_ROLE = "requester-inside"

#: Environment role active for network-borne requests.
REMOTE_ROLE = "requester-remote"


class RemoteGateway:
    """Channel-aware mediation in front of a :class:`SecureHome`.

    :param home: the secure home to front.

    The two channel roles are registered on construction; rules may
    reference them immediately.
    """

    def __init__(self, home: SecureHome) -> None:
        self._home = home
        policy = home.policy
        for role, description in [
            (INSIDE_ROLE, "the requester is physically inside the home"),
            (REMOTE_ROLE, "the request arrived over the network"),
        ]:
            if role not in policy.environment_roles:
                policy.add_environment_role(role, description)

    # ------------------------------------------------------------------
    # Channel-aware operations
    # ------------------------------------------------------------------
    def operate_local(
        self, subject: str, device_name: str, operation: str, **kwargs: Any
    ) -> OperationResult:
        """A request from inside the home (channel = presence).

        The requester must actually *be* inside according to the
        location service; a "local" request from someone the house
        believes is outside is suspicious and is refused outright.
        """
        if not self._home.runtime.location.is_in_zone(subject, HOME_ZONE):
            raise AuthenticationError(
                f"{subject!r} is not inside the home; a local-channel "
                "request cannot originate from them"
            )
        return self._operate(subject, device_name, operation, INSIDE_ROLE, kwargs)

    def operate_remote(
        self,
        subject: str,
        device_name: str,
        operation: str,
        credentials: Optional[Presence] = None,
        **kwargs: Any,
    ) -> OperationResult:
        """A request over the network (channel = remote).

        When an authentication service is attached to the home, remote
        requests must present credentials that authenticate as
        ``subject`` — sensors cannot vouch for someone who is not
        physically present.
        """
        if self._home.auth is not None:
            if credentials is None:
                raise AuthenticationError(
                    "remote access requires credentials"
                )
            result = self._home.auth.authenticate(credentials)
            if result.subject != subject:
                raise AuthenticationError(
                    f"credentials authenticate {result.subject!r}, "
                    f"not {subject!r}"
                )
        return self._operate(subject, device_name, operation, REMOTE_ROLE, kwargs)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _operate(
        self,
        subject: str,
        device_name: str,
        operation: str,
        channel_role: str,
        kwargs,
    ) -> OperationResult:
        home = self._home
        device = home.device(device_name)
        request = AccessRequest(
            transaction=operation, obj=device_name, subject=subject
        )
        # Start from the home's request-aware environment (time/state
        # roles plus requester-location roles) and add the channel.
        active: Set[str] = set(
            home.engine.environment.active_environment_roles_for(request)
        )
        active.add(channel_role)
        decision = home.engine.decide(request, environment_roles=active)
        home.audit.record(decision)
        if not decision.granted:
            return OperationResult(granted=False, decision=decision)
        result = device.perform(operation, **kwargs)
        return OperationResult(granted=True, decision=decision, result=result)

    def require_remote(
        self,
        subject: str,
        device_name: str,
        operation: str,
        credentials: Optional[Presence] = None,
        **kwargs: Any,
    ) -> Any:
        """Like :meth:`operate_remote` but raises on denial."""
        outcome = self.operate_remote(
            subject, device_name, operation, credentials=credentials, **kwargs
        )
        if not outcome.granted:
            raise AccessDeniedError(
                f"remote {operation} on {device_name!r} denied for "
                f"{subject!r}: {outcome.decision.rationale}",
                decision=outcome.decision,
            )
        return outcome.result
