"""The Aware Home substrate (§2) — topology, devices, residents, and
the SecureHome integration that fronts every device operation with
GRBAC mediation."""

from repro.home.devices import (
    Camera,
    Device,
    DeviceCategory,
    Dishwasher,
    DocumentStore,
    DoorLock,
    GameConsole,
    MedicalMonitor,
    Oven,
    Refrigerator,
    Stereo,
    Television,
    Thermostat,
    Vcr,
    Videophone,
    WaterHeater,
)
from repro.home.registry import OperationResult, SecureHome
from repro.home.residents import (
    DailySchedule,
    Resident,
    ScheduleEntry,
    ScheduleError,
    standard_household,
)
from repro.home.topology import HOME_ZONE, Home, TopologyError, standard_home

__all__ = [
    "HOME_ZONE",
    "Camera",
    "DailySchedule",
    "Device",
    "DeviceCategory",
    "Dishwasher",
    "DocumentStore",
    "DoorLock",
    "GameConsole",
    "Home",
    "MedicalMonitor",
    "OperationResult",
    "Oven",
    "Refrigerator",
    "Resident",
    "ScheduleEntry",
    "ScheduleError",
    "SecureHome",
    "Stereo",
    "Television",
    "Thermostat",
    "TopologyError",
    "Vcr",
    "Videophone",
    "WaterHeater",
    "standard_home",
    "standard_household",
]
