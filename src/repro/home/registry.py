"""SecureHome — the trusted system that integrates GRBAC (§7).

"GRBAC is not a complete security solution in itself.  It is only an
access control model; to be useful in the real world, it must be
integrated carefully into a trusted computer system."

:class:`SecureHome` is that integration for the simulated Aware Home:
it binds together the policy, the environment runtime (clock, events,
state, role activation, location), the device inventory, an audit log,
and optionally an authentication service — and fronts **every** device
operation with the mediation engine.  Applications never touch a
:class:`~repro.home.devices.Device` directly; they call
:meth:`operate` and get either the device's result or
:class:`~repro.exceptions.AccessDeniedError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Any, Dict, Iterable, List, Optional

from repro.auth.authenticator import Presence
from repro.auth.service import AuthenticationService
from repro.core.audit import AuditLog
from repro.core.mediation import AccessRequest, Decision, MediationEngine
from repro.core.policy import GrbacPolicy
from repro.env.runtime import EnvironmentRuntime
from repro.exceptions import AccessDeniedError, UnknownEntityError
from repro.home.devices import Device
from repro.home.residents import Resident
from repro.home.topology import Home


@dataclass(frozen=True)
class OperationResult:
    """Outcome of an enforced device operation."""

    granted: bool
    decision: Decision
    #: The device's return value, present only when granted.
    result: Any = None


class SecureHome:
    """The assembled, enforced Aware Home.

    :param home: the spatial model (defaults to
        :func:`~repro.home.topology.standard_home`).
    :param policy: the GRBAC policy (a fresh one by default).
    :param start: simulation start time.
    :param confidence_threshold: the policy-wide authentication
        threshold enforced by mediation (§5.2's "90% accuracy").
    """

    def __init__(
        self,
        home: Optional[Home] = None,
        policy: Optional[GrbacPolicy] = None,
        start: Optional[datetime] = None,
        confidence_threshold: float = 0.0,
    ) -> None:
        from repro.home.topology import standard_home

        self.home = home or standard_home()
        self.policy = policy or GrbacPolicy("aware-home")
        self.runtime = EnvironmentRuntime(
            start=start, zone_resolver=self.home.zone_resolver()
        )
        # Wrap the activator so requester-relative location roles
        # (``requester-in-kitchen`` etc., §4.2.2's videophone example)
        # are injected per request; they only take effect for policies
        # that register them.
        from repro.env.location import RequesterLocationEnvironment
        from repro.home.topology import HOME_ZONE

        zones = (
            list(self.home.rooms())
            + list(self.home.zones())
            + list(self.home.floors())
            + [HOME_ZONE]
        )
        self.environment = RequesterLocationEnvironment(
            self.runtime.activator, self.runtime.location, zones
        )
        self.engine = MediationEngine(
            self.policy,
            environment=self.environment,
            confidence_threshold=confidence_threshold,
        )
        self.audit = AuditLog(clock=self.runtime.clock.now)
        #: Optional sensor-driven authentication pipeline.
        self.auth: Optional[AuthenticationService] = None
        self._devices: Dict[str, Device] = {}
        self._residents: Dict[str, Resident] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_resident(self, resident: Resident) -> Resident:
        """Add a person: subject registration + role assignments.

        Roles named in ``resident.roles`` must already exist in the
        policy (defining the household's role structure is a policy
        decision, not a side effect of adding people).
        """
        attributes = {"age": resident.age, "weight_lb": resident.weight_lb}
        attributes.update(resident.attributes)
        self.policy.add_subject(resident.name, **attributes)
        for role_name in resident.roles:
            self.policy.assign_subject(resident.name, role_name)
        self._residents[resident.name] = resident
        return resident

    def register_device(
        self,
        device: Device,
        roles: Iterable[str] = (),
        include_category_role: bool = True,
    ) -> Device:
        """Add a device: object registration + classification.

        The device becomes a GRBAC object named ``room/name``.  Its
        operations are registered as transactions.  It is classified
        into each role in ``roles`` and (by default) into an object
        role named after its category — created on first use — so
        "all televisions, stereos and home video games" (§5.1) fall
        under one *entertainment* role automatically.
        """
        if device.room not in self.home.rooms():
            raise UnknownEntityError(
                f"device room {device.room!r} is not in the home"
            )
        self.policy.add_object(
            device.qualified_name,
            room=device.room,
            category=device.category.value,
            kind=type(device).__name__.lower(),
        )
        for operation in device.operations():
            self.policy.add_transaction(operation)
        if include_category_role:
            category_role = device.category.value
            if category_role not in self.policy.object_roles:
                self.policy.add_object_role(
                    category_role, f"devices in category {category_role}"
                )
            self.policy.assign_object(device.qualified_name, category_role)
        for role_name in roles:
            self.policy.assign_object(device.qualified_name, role_name)
        self._devices[device.qualified_name] = device
        return device

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def device(self, qualified_name: str) -> Device:
        """Find a registered device by ``room/name``.

        :raises UnknownEntityError: when absent.
        """
        try:
            return self._devices[qualified_name]
        except KeyError:
            raise UnknownEntityError(
                f"no device {qualified_name!r} registered"
            ) from None

    def devices(self) -> List[Device]:
        """All registered devices."""
        return list(self._devices.values())

    def resident(self, name: str) -> Resident:
        """Find a registered resident.

        :raises UnknownEntityError: when absent.
        """
        try:
            return self._residents[name]
        except KeyError:
            raise UnknownEntityError(f"no resident {name!r} registered") from None

    def residents(self) -> List[Resident]:
        """All registered residents."""
        return list(self._residents.values())

    # ------------------------------------------------------------------
    # Movement
    # ------------------------------------------------------------------
    def move(self, subject: str, location: str) -> None:
        """Record a subject's movement (trusted location update)."""
        self.runtime.location.move(subject, location)
        self.runtime.providers.refresh_all()

    # ------------------------------------------------------------------
    # Enforced operation
    # ------------------------------------------------------------------
    def operate(
        self,
        subject: str,
        device_name: str,
        operation: str,
        session=None,
        **kwargs: Any,
    ) -> Any:
        """Perform ``operation`` as ``subject``; raise when denied.

        :raises AccessDeniedError: when mediation denies; the decision
            rides on the exception.
        :raises DeviceError: when granted but the device rejects the
            operation's arguments or state.
        """
        outcome = self.try_operate(
            subject, device_name, operation, session=session, **kwargs
        )
        if not outcome.granted:
            raise AccessDeniedError(
                f"{subject!r} may not {operation} {device_name!r}: "
                f"{outcome.decision.rationale}",
                decision=outcome.decision,
            )
        return outcome.result

    def try_operate(
        self,
        subject: str,
        device_name: str,
        operation: str,
        session=None,
        **kwargs: Any,
    ) -> OperationResult:
        """Like :meth:`operate` but returns an :class:`OperationResult`."""
        request = AccessRequest(
            transaction=operation, obj=device_name, subject=subject
        )
        return self._mediate_and_perform(request, session, kwargs)

    def operate_with_presence(
        self,
        presence: Presence,
        device_name: str,
        operation: str,
        **kwargs: Any,
    ) -> OperationResult:
        """Sensor-driven operation: authenticate the presence first.

        Requires an attached authentication service (:attr:`auth`).
        This is the §5.2 path — the person at the device is whoever
        the sensors say, with whatever confidence they can muster.
        """
        if self.auth is None:
            raise UnknownEntityError(
                "no authentication service attached to this home"
            )
        result = self.auth.authenticate(presence)
        request = self.auth.build_request(result, operation, device_name)
        return self._mediate_and_perform(request, None, kwargs)

    def _mediate_and_perform(
        self, request: AccessRequest, session, kwargs: Dict[str, Any]
    ) -> OperationResult:
        device = self.device(request.obj)
        decision = self.engine.decide(request, session=session)
        self.audit.record(decision)
        if not decision.granted:
            return OperationResult(granted=False, decision=decision)
        result = device.perform(request.transaction, **kwargs)
        return OperationResult(granted=True, decision=decision, result=result)
