"""Device models — the objects the Aware Home protects.

The paper's object examples: "appliances such as a dishwasher or
stereo, media objects such as movies, and sensitive digital
information such as medical records or income tax returns" (§4.1.1).

Each :class:`Device` lives in a room, belongs to a
:class:`DeviceCategory`, and exposes named *operations* — the
primitive accesses that map onto GRBAC transactions through the
:mod:`repro.home.registry`.  Devices hold real (simulated) state so
the example applications do something observable once access is
granted: a television actually changes channel, the refrigerator
actually tracks its contents.

Access control is **not** enforced here — devices are dumb hardware.
Enforcement happens in :class:`repro.home.registry.SecureHome`, which
fronts every operation with the mediation engine (the paper's "must be
integrated carefully into a trusted computer system", §7).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional

from repro.exceptions import DeviceError


class DeviceCategory(enum.Enum):
    """Coarse device taxonomy used for default object roles."""

    ENTERTAINMENT = "entertainment"
    KITCHEN = "kitchen"
    HVAC = "hvac"
    SECURITY = "security"
    COMMUNICATION = "communication"
    INFORMATION = "information"
    SAFETY_CRITICAL = "safety-critical"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Device:
    """Base device: named, located, with a table of operations.

    Subclasses register operations with :meth:`_operation`; calling
    :meth:`perform` executes one.  ``state`` is an open dictionary of
    the device's observable condition.
    """

    category: DeviceCategory = DeviceCategory.INFORMATION

    def __init__(self, name: str, room: str) -> None:
        if not name or not room:
            raise DeviceError("device needs a name and a room")
        self.name = name
        self.room = room
        self.state: Dict[str, Any] = {}
        self._operations: Dict[str, Callable[..., Any]] = {}
        self._register_operations()

    # ------------------------------------------------------------------
    # Operation plumbing
    # ------------------------------------------------------------------
    def _register_operations(self) -> None:
        """Subclass hook: call :meth:`_operation` for each operation."""

    def _operation(self, name: str, handler: Callable[..., Any]) -> None:
        self._operations[name] = handler

    def operations(self) -> List[str]:
        """Names of the operations this device supports."""
        return list(self._operations)

    def supports(self, operation: str) -> bool:
        """True iff the device implements ``operation``."""
        return operation in self._operations

    def perform(self, operation: str, **kwargs: Any) -> Any:
        """Execute an operation directly (no access control).

        :raises DeviceError: for unsupported operations.
        """
        handler = self._operations.get(operation)
        if handler is None:
            raise DeviceError(
                f"device {self.name!r} does not support {operation!r} "
                f"(supported: {sorted(self._operations)})"
            )
        return handler(**kwargs)

    @property
    def qualified_name(self) -> str:
        """``room/name`` — the GRBAC object identifier."""
        return f"{self.room}/{self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.qualified_name}>"


# ----------------------------------------------------------------------
# Entertainment
# ----------------------------------------------------------------------
class Television(Device):
    """A TV with power, channels, and content ratings (§3's G/PG rule).

    The currently tuned program carries a rating; the registry exposes
    the rating as an object attribute so a *rated-G-or-PG* object role
    can gate children's viewing.
    """

    category = DeviceCategory.ENTERTAINMENT

    #: Recognized program ratings, most to least restrictive audience.
    RATINGS = ("G", "PG", "PG-13", "R")

    def __init__(self, name: str, room: str) -> None:
        super().__init__(name, room)
        self.state.update(power=False, channel=1, program_rating="G")

    def _register_operations(self) -> None:
        self._operation("power_on", self._power_on)
        self._operation("power_off", self._power_off)
        self._operation("change_channel", self._change_channel)
        self._operation("watch", self._watch)

    def _power_on(self) -> bool:
        self.state["power"] = True
        return True

    def _power_off(self) -> bool:
        self.state["power"] = False
        return True

    def _change_channel(self, channel: int = 1, rating: str = "G") -> int:
        if rating not in self.RATINGS:
            raise DeviceError(f"unknown rating {rating!r}")
        if channel < 1:
            raise DeviceError("channel must be >= 1")
        self.state["channel"] = channel
        self.state["program_rating"] = rating
        return channel

    def _watch(self) -> Dict[str, Any]:
        if not self.state["power"]:
            raise DeviceError(f"{self.name!r} is powered off")
        return {
            "channel": self.state["channel"],
            "rating": self.state["program_rating"],
        }


class Stereo(Device):
    """A stereo system."""

    category = DeviceCategory.ENTERTAINMENT

    def __init__(self, name: str, room: str) -> None:
        super().__init__(name, room)
        self.state.update(power=False, volume=3)

    def _register_operations(self) -> None:
        self._operation("power_on", lambda: self.state.update(power=True) or True)
        self._operation("power_off", lambda: self.state.update(power=False) or True)
        self._operation("set_volume", self._set_volume)
        self._operation("play", self._play)

    def _set_volume(self, volume: int = 3) -> int:
        if not 0 <= volume <= 10:
            raise DeviceError("volume must be 0..10")
        self.state["volume"] = volume
        return volume

    def _play(self, track: str = "default") -> str:
        if not self.state["power"]:
            raise DeviceError(f"{self.name!r} is powered off")
        self.state["playing"] = track
        return track


class GameConsole(Device):
    """A home video-game console (§5.1's entertainment devices)."""

    category = DeviceCategory.ENTERTAINMENT

    def __init__(self, name: str, room: str) -> None:
        super().__init__(name, room)
        self.state.update(power=False, game=None)

    def _register_operations(self) -> None:
        self._operation("power_on", lambda: self.state.update(power=True) or True)
        self._operation("power_off", lambda: self.state.update(power=False) or True)
        self._operation("play", self._play)

    def _play(self, game: str = "puzzle") -> str:
        if not self.state["power"]:
            raise DeviceError(f"{self.name!r} is powered off")
        self.state["game"] = game
        return game


class Vcr(Device):
    """A VCR (it was 2000)."""

    category = DeviceCategory.ENTERTAINMENT

    def __init__(self, name: str, room: str) -> None:
        super().__init__(name, room)
        self.state.update(power=False, tape=None)

    def _register_operations(self) -> None:
        self._operation("power_on", lambda: self.state.update(power=True) or True)
        self._operation("power_off", lambda: self.state.update(power=False) or True)
        self._operation("play_tape", self._play_tape)
        self._operation("record", self._record)

    def _play_tape(self, tape: str = "home-video") -> str:
        if not self.state["power"]:
            raise DeviceError(f"{self.name!r} is powered off")
        self.state["tape"] = tape
        return tape

    def _record(self, channel: int = 1) -> int:
        if not self.state["power"]:
            raise DeviceError(f"{self.name!r} is powered off")
        self.state["recording_channel"] = channel
        return channel


# ----------------------------------------------------------------------
# Kitchen
# ----------------------------------------------------------------------
class Refrigerator(Device):
    """The Cyberfridge (§2, ref. [9]): a fridge with a queryable inventory."""

    category = DeviceCategory.KITCHEN

    def __init__(self, name: str, room: str) -> None:
        super().__init__(name, room)
        self.state["inventory"] = {}

    def _register_operations(self) -> None:
        self._operation("open", lambda: True)
        self._operation("read_inventory", self._read_inventory)
        self._operation("add_item", self._add_item)
        self._operation("remove_item", self._remove_item)
        self._operation("reorder", self._reorder)

    @property
    def inventory(self) -> Dict[str, int]:
        return dict(self.state["inventory"])

    def _read_inventory(self) -> Dict[str, int]:
        return self.inventory

    def _add_item(self, item: str = "", quantity: int = 1) -> int:
        if not item:
            raise DeviceError("item name required")
        if quantity < 1:
            raise DeviceError("quantity must be >= 1")
        inventory = self.state["inventory"]
        inventory[item] = inventory.get(item, 0) + quantity
        return inventory[item]

    def _remove_item(self, item: str = "", quantity: int = 1) -> int:
        inventory = self.state["inventory"]
        if item not in inventory:
            raise DeviceError(f"no {item!r} in the refrigerator")
        if quantity > inventory[item]:
            raise DeviceError(
                f"only {inventory[item]} {item!r} present, cannot remove {quantity}"
            )
        inventory[item] -= quantity
        if inventory[item] == 0:
            del inventory[item]
        return inventory.get(item, 0)

    def _reorder(self, item: str = "", quantity: int = 1) -> Dict[str, Any]:
        """Place a (simulated) grocery order with the delivery service."""
        if not item:
            raise DeviceError("item name required")
        orders = self.state.setdefault("orders", [])
        order = {"item": item, "quantity": quantity}
        orders.append(order)
        return order


class Oven(Device):
    """A potentially dangerous appliance (§3's negative-rights example)."""

    category = DeviceCategory.SAFETY_CRITICAL

    def __init__(self, name: str, room: str) -> None:
        super().__init__(name, room)
        self.state.update(power=False, temperature_f=0)

    def _register_operations(self) -> None:
        self._operation("power_on", lambda: self.state.update(power=True) or True)
        self._operation("power_off", self._power_off)
        self._operation("set_temperature", self._set_temperature)

    def _power_off(self) -> bool:
        self.state.update(power=False, temperature_f=0)
        return True

    def _set_temperature(self, temperature_f: int = 350) -> int:
        if not self.state["power"]:
            raise DeviceError(f"{self.name!r} is powered off")
        if not 100 <= temperature_f <= 550:
            raise DeviceError("oven temperature must be 100..550 F")
        self.state["temperature_f"] = temperature_f
        return temperature_f


class Dishwasher(Device):
    """The appliance the §5.1 repair technician comes to fix."""

    category = DeviceCategory.KITCHEN

    def __init__(self, name: str, room: str) -> None:
        super().__init__(name, room)
        self.state.update(power=False, cycle=None, fault=None)

    def _register_operations(self) -> None:
        self._operation("power_on", lambda: self.state.update(power=True) or True)
        self._operation("power_off", lambda: self.state.update(power=False) or True)
        self._operation("run_cycle", self._run_cycle)
        self._operation("diagnose", self._diagnose)
        self._operation("repair", self._repair)

    def _run_cycle(self, cycle: str = "normal") -> str:
        if not self.state["power"]:
            raise DeviceError(f"{self.name!r} is powered off")
        if self.state["fault"]:
            raise DeviceError(f"{self.name!r} has a fault: {self.state['fault']}")
        self.state["cycle"] = cycle
        return cycle

    def _diagnose(self) -> Optional[str]:
        return self.state["fault"]

    def _repair(self) -> bool:
        self.state["fault"] = None
        return True


# ----------------------------------------------------------------------
# HVAC / utilities
# ----------------------------------------------------------------------
class Thermostat(Device):
    """Heating control for the utility-management application (§2)."""

    category = DeviceCategory.HVAC

    def __init__(self, name: str, room: str) -> None:
        super().__init__(name, room)
        self.state.update(setpoint_f=62, heating=False)

    def _register_operations(self) -> None:
        self._operation("read_temperature", lambda: self.state["setpoint_f"])
        self._operation("set_temperature", self._set_temperature)
        self._operation("enable_heat", self._enable_heat)
        self._operation("disable_heat", self._disable_heat)

    def _set_temperature(self, setpoint_f: int = 68) -> int:
        if not 40 <= setpoint_f <= 90:
            raise DeviceError("setpoint must be 40..90 F")
        self.state["setpoint_f"] = setpoint_f
        return setpoint_f

    def _enable_heat(self) -> bool:
        self.state["heating"] = True
        return True

    def _disable_heat(self) -> bool:
        self.state["heating"] = False
        return True


class WaterHeater(Device):
    """Hot-water production, scheduled by the utility app (§2)."""

    category = DeviceCategory.HVAC

    def __init__(self, name: str, room: str) -> None:
        super().__init__(name, room)
        self.state.update(heating=False, temperature_f=70)

    def _register_operations(self) -> None:
        self._operation("enable", lambda: self.state.update(heating=True) or True)
        self._operation("disable", lambda: self.state.update(heating=False) or True)
        self._operation("read_temperature", lambda: self.state["temperature_f"])


# ----------------------------------------------------------------------
# Security / communication / information
# ----------------------------------------------------------------------
class Camera(Device):
    """A room camera with two quality tiers (§3's streaming-vs-still).

    ``view_stream`` returns live video — the high-sensitivity access a
    policy may reserve for strongly authenticated parents.
    ``view_snapshot`` returns "a recent still image of reduced quality
    and definition", the degraded access the paper suggests for weak
    authentication.
    """

    category = DeviceCategory.SECURITY

    def __init__(self, name: str, room: str) -> None:
        super().__init__(name, room)
        self.state.update(recording=True, frame=0)

    def _register_operations(self) -> None:
        self._operation("view_stream", self._view_stream)
        self._operation("view_snapshot", self._view_snapshot)
        self._operation("disable", lambda: self.state.update(recording=False) or True)
        self._operation("enable", lambda: self.state.update(recording=True) or True)

    def _view_stream(self) -> Dict[str, Any]:
        if not self.state["recording"]:
            raise DeviceError(f"{self.name!r} is disabled")
        self.state["frame"] += 1
        return {"kind": "stream", "room": self.room, "frame": self.state["frame"]}

    def _view_snapshot(self) -> Dict[str, Any]:
        if not self.state["recording"]:
            raise DeviceError(f"{self.name!r} is disabled")
        return {"kind": "snapshot", "room": self.room, "frame": self.state["frame"]}


class Videophone(Device):
    """The videophone of §4.2.2's kitchen-only rule for children."""

    category = DeviceCategory.COMMUNICATION

    def __init__(self, name: str, room: str) -> None:
        super().__init__(name, room)
        self.state.update(in_call=None)

    def _register_operations(self) -> None:
        self._operation("place_call", self._place_call)
        self._operation("hang_up", self._hang_up)

    def _place_call(self, callee: str = "grandma") -> str:
        if self.state["in_call"]:
            raise DeviceError("already in a call")
        self.state["in_call"] = callee
        return callee

    def _hang_up(self) -> bool:
        self.state["in_call"] = None
        return True


class DoorLock(Device):
    """A physical access point bridged into the digital policy."""

    category = DeviceCategory.SECURITY

    def __init__(self, name: str, room: str) -> None:
        super().__init__(name, room)
        self.state.update(locked=True)

    def _register_operations(self) -> None:
        self._operation("lock", lambda: self.state.update(locked=True) or True)
        self._operation("unlock", lambda: self.state.update(locked=False) or True)
        self._operation("read_status", lambda: self.state["locked"])


class DocumentStore(Device):
    """Sensitive documents: medical records, tax returns (§1, §4.1.2)."""

    category = DeviceCategory.INFORMATION

    def __init__(self, name: str, room: str) -> None:
        super().__init__(name, room)
        self.state["documents"] = {}

    def _register_operations(self) -> None:
        self._operation("read_document", self._read)
        self._operation("write_document", self._write)
        self._operation("list_documents", self._list)

    def _read(self, document: str = "") -> str:
        documents = self.state["documents"]
        if document not in documents:
            raise DeviceError(f"no document {document!r}")
        return documents[document]

    def _write(self, document: str = "", content: str = "") -> bool:
        if not document:
            raise DeviceError("document name required")
        self.state["documents"][document] = content
        return True

    def _list(self) -> List[str]:
        return sorted(self.state["documents"])


class MedicalMonitor(Device):
    """Elder-care vitals monitoring (§2's assisted-living application)."""

    category = DeviceCategory.INFORMATION

    def __init__(self, name: str, room: str) -> None:
        super().__init__(name, room)
        self.state.update(readings=[], alert=None)

    def _register_operations(self) -> None:
        self._operation("record_vitals", self._record)
        self._operation("read_vitals", self._read)
        self._operation("read_alert", lambda: self.state["alert"])
        self._operation("clear_alert", self._clear_alert)

    def _record(self, heart_rate: int = 70, systolic: int = 120) -> Dict[str, int]:
        if heart_rate <= 0 or systolic <= 0:
            raise DeviceError("vital readings must be positive")
        reading = {"heart_rate": heart_rate, "systolic": systolic}
        self.state["readings"].append(reading)
        if heart_rate > 120 or heart_rate < 40 or systolic > 180:
            self.state["alert"] = reading
        return reading

    def _read(self, last: int = 1) -> List[Dict[str, int]]:
        if last < 1:
            raise DeviceError("last must be >= 1")
        return list(self.state["readings"][-last:])

    def _clear_alert(self) -> bool:
        self.state["alert"] = None
        return True
