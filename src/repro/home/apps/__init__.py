"""Aware Home example applications (§2), all enforced through GRBAC."""

from repro.home.apps.cyberfridge import CyberfridgeApp
from repro.home.apps.eldercare import ALERT_VARIABLE, EMERGENCY_ROLE, ElderCareApp
from repro.home.apps.mediaguard import (
    KID_SAFE_RATINGS,
    KID_SAFE_ROLE,
    PROGRAM_ROLE,
    MediaGuardApp,
)
from repro.home.apps.utility import (
    AGENT_ROLE,
    AGENT_SUBJECT,
    HOT_WATER_ROLE,
    OCCUPIED_ROLE,
    UtilityApp,
)

__all__ = [
    "AGENT_ROLE",
    "AGENT_SUBJECT",
    "ALERT_VARIABLE",
    "EMERGENCY_ROLE",
    "HOT_WATER_ROLE",
    "KID_SAFE_RATINGS",
    "KID_SAFE_ROLE",
    "OCCUPIED_ROLE",
    "PROGRAM_ROLE",
    "CyberfridgeApp",
    "ElderCareApp",
    "MediaGuardApp",
    "UtilityApp",
]
