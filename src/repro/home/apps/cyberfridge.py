"""Cyberfridge — remote inventory management (§2, ref. [9]).

"The Cyberfridge application collects information about food items in
a refrigerator and makes the data accessible from anywhere.
Cyberfridge can interface with a local food delivery service to
automatically reorder food items such as milk or eggs when necessary."

The app wraps a :class:`~repro.home.devices.Refrigerator` behind the
secure home, adds par-level tracking, and defines the policy slice the
paper's examples imply:

* family members may read the inventory from anywhere;
* parents may modify it and place orders;
* the *delivery service agent* (an outside subject) may only read the
  inventory and confirm orders — and only that;
* the §3 repairman-style time-boxed guest access composes on top via
  ordinary environment roles, nothing app-specific needed.
"""

from __future__ import annotations

from typing import Dict, List

from repro.home.devices import Refrigerator
from repro.home.registry import SecureHome


class CyberfridgeApp:
    """Inventory management over an enforced refrigerator.

    :param home: the secure home hosting the fridge.
    :param fridge: the refrigerator device (must already be registered
        with the home).
    """

    def __init__(self, home: SecureHome, fridge: Refrigerator) -> None:
        self._home = home
        self._fridge = fridge
        self._fridge_name = fridge.qualified_name
        #: item -> desired minimum quantity
        self._par_levels: Dict[str, int] = {}
        home.device(self._fridge_name)  # must be registered

    # ------------------------------------------------------------------
    # Policy installation
    # ------------------------------------------------------------------
    @staticmethod
    def install_policy(
        home: SecureHome,
        family_role: str = "family-member",
        parent_role: str = "parent",
        delivery_role: str = "delivery-agent",
    ) -> None:
        """Create the app's permission slice in the home's policy.

        Assumes the kitchen object role (the fridge's category role) is
        ``"kitchen"`` — the default classification from
        :meth:`~repro.home.registry.SecureHome.register_device`.
        """
        policy = home.policy
        for role in (family_role, parent_role, delivery_role):
            if role not in policy.subject_roles:
                policy.add_subject_role(role)
        policy.grant(family_role, "read_inventory", "kitchen", name="cf-read")
        policy.grant(family_role, "open", "kitchen", name="cf-open")
        for transaction in ("add_item", "remove_item", "reorder"):
            policy.grant(parent_role, transaction, "kitchen", name=f"cf-{transaction}")
        policy.grant(delivery_role, "read_inventory", "kitchen", name="cf-delivery-read")

    # ------------------------------------------------------------------
    # Par levels
    # ------------------------------------------------------------------
    def set_par_level(self, item: str, minimum: int) -> None:
        """Keep at least ``minimum`` of ``item`` on hand."""
        if minimum < 1:
            raise ValueError("par level must be >= 1")
        self._par_levels[item] = minimum

    def par_levels(self) -> Dict[str, int]:
        """Configured par levels."""
        return dict(self._par_levels)

    # ------------------------------------------------------------------
    # Enforced operations
    # ------------------------------------------------------------------
    def read_inventory(self, subject: str) -> Dict[str, int]:
        """Read the fridge contents as ``subject`` (from anywhere)."""
        return self._home.operate(subject, self._fridge_name, "read_inventory")

    def stock(self, subject: str, item: str, quantity: int = 1) -> int:
        """Add items (requires modify rights)."""
        return self._home.operate(
            subject, self._fridge_name, "add_item", item=item, quantity=quantity
        )

    def consume(self, subject: str, item: str, quantity: int = 1) -> int:
        """Remove items (requires modify rights)."""
        return self._home.operate(
            subject, self._fridge_name, "remove_item", item=item, quantity=quantity
        )

    def check_and_reorder(self, subject: str) -> List[Dict[str, int]]:
        """Reorder every item below its par level, as ``subject``.

        Returns the orders placed.  Reading and ordering are both
        mediated, so a subject who may read but not order gets the
        denial on the first order attempt.
        """
        inventory = self.read_inventory(subject)
        orders = []
        for item, minimum in sorted(self._par_levels.items()):
            have = inventory.get(item, 0)
            if have < minimum:
                order = self._home.operate(
                    subject,
                    self._fridge_name,
                    "reorder",
                    item=item,
                    quantity=minimum - have,
                )
                orders.append(order)
        return orders

    def pending_orders(self) -> List[Dict[str, int]]:
        """Orders placed so far (read from device state, unenforced —
        this is the delivery company's view of its own order book)."""
        return list(self._fridge.state.get("orders", []))
