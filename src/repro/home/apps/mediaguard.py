"""MediaGuard — content-rating control via object roles (§3, §4.2.3).

"A child may be prohibited from viewing any television program or
movie that is not rated 'G' or 'PG'."  Object roles make this natural:
programs are objects, a classifier assigns each the object role of its
rating, and one rule per audience class covers every program forever —
including programs added after the rule was written (§5.1's "if the
household were to purchase a new toy... it would immediately be
controlled by this pre-defined access policy", applied to media).

This is also the §6 content-based access control comparison (Gopal &
Manber): classification by object *content attributes* feeding access
decisions.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exceptions import AccessDeniedError, UnknownEntityError
from repro.home.devices import Television
from repro.home.registry import SecureHome

#: Object role possessed by programs a child may watch.
KID_SAFE_ROLE = "kid-safe-program"

#: Object role for every program (the media catalogue).
PROGRAM_ROLE = "program"

#: Ratings considered safe for children.
KID_SAFE_RATINGS = ("G", "PG")


class MediaGuardApp:
    """A program guide with rating-classified object roles.

    :param home: the secure home.
    :param tv: the registered television to tune.
    """

    def __init__(self, home: SecureHome, tv: Television) -> None:
        self._home = home
        self._tv = tv
        home.device(tv.qualified_name)
        #: channel -> (program object name, rating)
        self._guide: Dict[int, Tuple[str, str]] = {}
        policy = home.policy
        if PROGRAM_ROLE not in policy.object_roles:
            policy.add_object_role(PROGRAM_ROLE, "all catalogued programs")
        if KID_SAFE_ROLE not in policy.object_roles:
            policy.add_object_role(KID_SAFE_ROLE, "programs rated G or PG")
            policy.object_roles.add_specialization(KID_SAFE_ROLE, PROGRAM_ROLE)

    # ------------------------------------------------------------------
    # Policy installation
    # ------------------------------------------------------------------
    @staticmethod
    def install_policy(
        home: SecureHome,
        child_role: str = "child",
        adult_role: str = "parent",
    ) -> None:
        """One rule per audience class (the point of object roles)."""
        policy = home.policy
        if PROGRAM_ROLE not in policy.object_roles:
            policy.add_object_role(PROGRAM_ROLE)
        if KID_SAFE_ROLE not in policy.object_roles:
            policy.add_object_role(KID_SAFE_ROLE)
            policy.object_roles.add_specialization(KID_SAFE_ROLE, PROGRAM_ROLE)
        policy.add_transaction("view_program")
        policy.grant(adult_role, "view_program", PROGRAM_ROLE, name="mg-adult")
        policy.grant(child_role, "view_program", KID_SAFE_ROLE, name="mg-child")

    # ------------------------------------------------------------------
    # Programming guide
    # ------------------------------------------------------------------
    def add_program(self, channel: int, name: str, rating: str) -> str:
        """Catalogue a program: object + rating classification.

        Returns the program's object identifier.  Classification into
        :data:`KID_SAFE_ROLE` happens here, by rating — the classifier
        the §6 content-based comparison talks about.
        """
        if rating not in Television.RATINGS:
            raise UnknownEntityError(f"unknown rating {rating!r}")
        object_name = f"program/{name}"
        policy = self._home.policy
        policy.add_object(object_name, rating=rating, channel=channel)
        policy.assign_object(object_name, PROGRAM_ROLE)
        if rating in KID_SAFE_RATINGS:
            policy.assign_object(object_name, KID_SAFE_ROLE)
        self._guide[channel] = (object_name, rating)
        return object_name

    def guide(self) -> Dict[int, Tuple[str, str]]:
        """The channel guide: channel -> (program object, rating)."""
        return dict(self._guide)

    # ------------------------------------------------------------------
    # Enforced viewing
    # ------------------------------------------------------------------
    def watch(self, subject: str, channel: int) -> Dict[str, object]:
        """Tune the TV to ``channel`` and watch, as ``subject``.

        Mediates ``view_program`` on the *program object* — the access
        decision is about the content, not the appliance — then drives
        the television.

        :raises AccessDeniedError: when the subject may not view the
            program on that channel.
        :raises UnknownEntityError: for unlisted channels.
        """
        if channel not in self._guide:
            raise UnknownEntityError(f"no program listed on channel {channel}")
        program, rating = self._guide[channel]
        engine = self._home.engine
        from repro.core.mediation import AccessRequest

        decision = engine.decide(
            AccessRequest(transaction="view_program", obj=program, subject=subject)
        )
        self._home.audit.record(decision)
        if not decision.granted:
            raise AccessDeniedError(
                f"{subject!r} may not view {program!r} (rated {rating}): "
                f"{decision.rationale}",
                decision=decision,
            )
        self._tv.perform("power_on")
        self._tv.perform("change_channel", channel=channel, rating=rating)
        return self._tv.perform("watch")

    def can_watch(self, subject: str, channel: int) -> bool:
        """Non-destructive permission probe for a channel."""
        if channel not in self._guide:
            return False
        program, _ = self._guide[channel]
        from repro.core.mediation import AccessRequest

        return self._home.engine.decide(
            AccessRequest(transaction="view_program", obj=program, subject=subject)
        ).granted

    def allowed_channels(self, subject: str) -> List[int]:
        """Channels ``subject`` may currently watch."""
        return sorted(
            channel for channel in self._guide if self.can_watch(subject, channel)
        )
