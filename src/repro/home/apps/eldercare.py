"""Elder care — remote monitoring with emergency escalation (§2).

"One research group is exploring how the Aware Home concept can help
elderly residents remain in their homes longer... effectively
providing the same level of care and supervision that today can be
found only in nursing homes and hospitals."

The app demonstrates the GRBAC feature mix the scenario needs:

* a *caregiver* subject role (an outside professional) may read the
  elder's vitals at any time;
* *relatives* may view only degraded camera snapshots in normal
  operation (§3's quality-tiered access);
* a ``medical-emergency`` **environment role**, driven by the vitals
  monitor's alert state through the trusted event system, widens
  access while active: relatives and caregivers may view the live
  stream and the caregiver may unlock the front door.

Everything is ordinary GRBAC machinery — the emergency escalation is
just an environment role bound to a state condition.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.env.conditions import state_equals
from repro.home.devices import Camera, DoorLock, MedicalMonitor
from repro.home.registry import SecureHome

#: Environment state variable mirroring the monitor's alert status.
ALERT_VARIABLE = "eldercare.alert"

#: The escalation environment role.
EMERGENCY_ROLE = "medical-emergency"


class ElderCareApp:
    """Vitals monitoring + emergency-escalated access.

    :param home: the secure home.
    :param monitor: the elder's medical monitor (registered).
    :param camera: the elder's room camera (registered).
    :param door: optional front-door lock for responder entry.
    """

    def __init__(
        self,
        home: SecureHome,
        monitor: MedicalMonitor,
        camera: Camera,
        door: Optional[DoorLock] = None,
    ) -> None:
        self._home = home
        self._monitor = monitor
        self._camera = camera
        self._door = door
        for device in (monitor, camera) + ((door,) if door else ()):
            home.device(device.qualified_name)
        # Mirror the monitor's alert state into the environment and
        # bind the emergency role to it.
        home.runtime.state.set(ALERT_VARIABLE, False)
        home.runtime.define_role(
            home.policy,
            EMERGENCY_ROLE,
            state_equals(ALERT_VARIABLE, True),
            "the vitals monitor has raised an alert",
        )

    # ------------------------------------------------------------------
    # Policy installation
    # ------------------------------------------------------------------
    @staticmethod
    def install_policy(
        home: SecureHome,
        caregiver_role: str = "caregiver",
        relative_role: str = "relative",
    ) -> None:
        """Create the app's permission slice.

        Must run after the app object exists (it defines the emergency
        environment role) or the role can be pre-registered manually.
        """
        policy = home.policy
        for role in (caregiver_role, relative_role):
            if role not in policy.subject_roles:
                policy.add_subject_role(role)
        if EMERGENCY_ROLE not in policy.environment_roles:
            policy.add_environment_role(EMERGENCY_ROLE)
        # Vitals: caregiver always; relatives only during an emergency.
        policy.grant(caregiver_role, "read_vitals", "information", name="ec-vitals")
        policy.grant(
            relative_role,
            "read_vitals",
            "information",
            EMERGENCY_ROLE,
            name="ec-vitals-emergency",
        )
        # Camera: snapshots for relatives anytime; live stream only
        # during an emergency (quality-tiered access, §3).
        policy.grant(relative_role, "view_snapshot", "security", name="ec-snapshot")
        policy.grant(
            relative_role,
            "view_stream",
            "security",
            EMERGENCY_ROLE,
            name="ec-stream-emergency",
        )
        policy.grant(
            caregiver_role,
            "view_stream",
            "security",
            EMERGENCY_ROLE,
            name="ec-caregiver-stream",
        )
        # Door: the caregiver may unlock it only during an emergency.
        policy.grant(
            caregiver_role,
            "unlock",
            "security",
            EMERGENCY_ROLE,
            name="ec-door",
        )

    # ------------------------------------------------------------------
    # Monitoring (the trusted sensor path — not subject-mediated)
    # ------------------------------------------------------------------
    def record_vitals(self, heart_rate: int, systolic: int) -> Dict[str, int]:
        """Ingest a vitals reading from the monitor hardware.

        This is the device's own sensor feed, not a subject access, so
        it bypasses mediation — but it *does* flow through the trusted
        event system: an abnormal reading flips the alert state
        variable, which activates the emergency environment role.
        """
        reading = self._monitor.perform(
            "record_vitals", heart_rate=heart_rate, systolic=systolic
        )
        alert = self._monitor.state["alert"] is not None
        self._home.runtime.state.set(ALERT_VARIABLE, alert)
        return reading

    def clear_alert(self, subject: str) -> bool:
        """Stand down the emergency (mediated: caregivers only by
        default policy — whoever holds ``clear_alert`` rights)."""
        result = self._home.operate(
            subject, self._monitor.qualified_name, "clear_alert"
        )
        self._home.runtime.state.set(ALERT_VARIABLE, False)
        return result

    @property
    def alert_active(self) -> bool:
        """Is the emergency environment role currently active?"""
        return EMERGENCY_ROLE in self._home.runtime.active_roles()

    # ------------------------------------------------------------------
    # Enforced accesses
    # ------------------------------------------------------------------
    def read_vitals(self, subject: str, last: int = 1) -> List[Dict[str, int]]:
        """Read recent vitals as ``subject``."""
        return self._home.operate(
            subject, self._monitor.qualified_name, "read_vitals", last=last
        )

    def view_camera(self, subject: str, stream: bool = False) -> Dict[str, object]:
        """View the elder's camera as ``subject``.

        ``stream=True`` requests live video (emergency-gated for
        relatives); ``False`` requests the degraded snapshot.
        """
        operation = "view_stream" if stream else "view_snapshot"
        return self._home.operate(subject, self._camera.qualified_name, operation)

    def unlock_door(self, subject: str) -> bool:
        """Unlock the front door as ``subject`` (emergency-gated)."""
        if self._door is None:
            raise ValueError("no door lock attached to this app")
        return self._home.operate(subject, self._door.qualified_name, "unlock")
