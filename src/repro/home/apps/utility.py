"""Utility management — automated heating and hot water (§2).

"A third example is an application that automatically manages home
resources such as hot water and heat... It can choose to heat the
house only when it knows there are residents inside, and it can choose
to produce hot water only at times when residents usually take
showers."

The interesting access-control point: the actor is a **software
agent**, not a person.  GRBAC handles it with an ordinary subject role
(*automation-agent*) — the agent's rights are as scoped and auditable
as any resident's, and can additionally be gated by environment roles
(here: *home-occupied* for heat, a schedule window for hot water).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.env.conditions import state_above
from repro.env.temporal import TimeExpression, time_window, union
from repro.home.devices import Thermostat, WaterHeater
from repro.home.registry import SecureHome

#: The environment role active while anyone is in the house.
OCCUPIED_ROLE = "home-occupied"

#: The environment role active during habitual hot-water hours.
HOT_WATER_ROLE = "hot-water-window"

#: The software agent's subject name and role.
AGENT_SUBJECT = "utility-agent"
AGENT_ROLE = "automation-agent"


class UtilityApp:
    """Occupancy- and schedule-driven HVAC control.

    :param home: the secure home (must track occupancy — register an
        :class:`~repro.sensors.OccupancyProvider` for zone ``home``).
    :param thermostat: the registered thermostat device.
    :param water_heater: the registered water-heater device.
    :param hot_water_windows: when residents habitually use hot water;
        default mirrors morning showers and evening dishes/laundry.
    """

    def __init__(
        self,
        home: SecureHome,
        thermostat: Thermostat,
        water_heater: WaterHeater,
        hot_water_windows: Optional[TimeExpression] = None,
    ) -> None:
        self._home = home
        self._thermostat = thermostat
        self._water_heater = water_heater
        home.device(thermostat.qualified_name)
        home.device(water_heater.qualified_name)

        windows = hot_water_windows or union(
            [time_window("06:00", "09:00"), time_window("18:00", "21:00")]
        )
        home.runtime.define_role(
            home.policy,
            OCCUPIED_ROLE,
            state_above("occupancy.home", 0),
            "at least one resident is inside the home",
        )
        home.runtime.define_time_role(
            home.policy, HOT_WATER_ROLE, windows, "habitual hot-water hours"
        )
        #: Actions taken on the last tick, for reporting.
        self.last_actions: List[str] = []

    # ------------------------------------------------------------------
    # Policy installation
    # ------------------------------------------------------------------
    @staticmethod
    def install_policy(home: SecureHome, comfort_f: int = 68) -> None:
        """Register the agent subject and its scoped rights.

        The agent may adjust heat only while the home is occupied, and
        may run the water heater only in the habitual windows; it may
        *disable* both unconditionally (turning things off is safe).
        Parents may override anything at any time.
        """
        policy = home.policy
        if AGENT_ROLE not in policy.subject_roles:
            policy.add_subject_role(AGENT_ROLE, "non-human automation agents")
        if AGENT_SUBJECT not in {s.name for s in policy.subjects()}:
            policy.add_subject(AGENT_SUBJECT, kind="software-agent")
        policy.assign_subject(AGENT_SUBJECT, AGENT_ROLE)
        for role in (OCCUPIED_ROLE, HOT_WATER_ROLE):
            if role not in policy.environment_roles:
                policy.add_environment_role(role)

        policy.grant(AGENT_ROLE, "enable_heat", "hvac", OCCUPIED_ROLE, name="ua-heat")
        policy.grant(
            AGENT_ROLE, "set_temperature", "hvac", OCCUPIED_ROLE, name="ua-setpoint"
        )
        policy.grant(AGENT_ROLE, "disable_heat", "hvac", name="ua-heat-off")
        policy.grant(AGENT_ROLE, "enable", "hvac", HOT_WATER_ROLE, name="ua-water")
        policy.grant(AGENT_ROLE, "disable", "hvac", name="ua-water-off")
        policy.grant(AGENT_ROLE, "read_temperature", "hvac", name="ua-read")

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def tick(self, comfort_f: int = 68, setback_f: int = 58) -> List[str]:
        """One control decision, driven by current environment state.

        The agent *attempts* the actuations appropriate to what it
        observes; mediation decides whether each is permitted right
        now.  Denials are normal (e.g. the occupied-role just lapsed)
        and are recorded rather than raised.
        """
        actions: List[str] = []
        occupied = OCCUPIED_ROLE in self._home.runtime.active_roles()
        hot_water_window = HOT_WATER_ROLE in self._home.runtime.active_roles()

        thermostat = self._thermostat.qualified_name
        heater = self._water_heater.qualified_name

        if occupied:
            actions.append(self._attempt(thermostat, "enable_heat"))
            actions.append(
                self._attempt(thermostat, "set_temperature", setpoint_f=comfort_f)
            )
        else:
            actions.append(self._attempt(thermostat, "disable_heat"))

        if hot_water_window and occupied:
            actions.append(self._attempt(heater, "enable"))
        else:
            actions.append(self._attempt(heater, "disable"))

        self.last_actions = [a for a in actions if a]
        return self.last_actions

    def _attempt(self, device: str, operation: str, **kwargs) -> str:
        outcome = self._home.try_operate(
            AGENT_SUBJECT, device, operation, **kwargs
        )
        status = "ok" if outcome.granted else "denied"
        return f"{operation}@{device}: {status}"

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """Current device states and active roles, for dashboards."""
        return {
            "heating": self._thermostat.state["heating"],
            "setpoint_f": self._thermostat.state["setpoint_f"],
            "hot_water": self._water_heater.state["heating"],
            "occupied": OCCUPIED_ROLE in self._home.runtime.active_roles(),
            "hot_water_window": HOT_WATER_ROLE in self._home.runtime.active_roles(),
        }
