"""Home topology — floors, rooms, zones, and containment.

Location-based environment roles need a spatial model: "we can define
location roles such as 'upstairs,' 'downstairs,' 'master bedroom,'
etc." (§4.2.2), and §3's repairman is authorized "only while he is
*inside the home*".

A :class:`Home` is a set of named rooms grouped into floors, plus
arbitrary named *zones* (room groups).  Containment works at four
levels: a room contains itself; a floor contains its rooms; a zone
contains its member rooms; and the distinguished zone ``"home"``
contains every room.  :meth:`Home.zone_resolver` adapts this to the
:class:`~repro.env.location.LocationService` resolver protocol.

Adjacency edges between rooms let trace generators move residents
realistically (no teleporting through walls).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set

from repro.env.location import OUTSIDE, ZoneResolver
from repro.exceptions import GrbacError

#: The distinguished zone containing every room.
HOME_ZONE = "home"


class TopologyError(GrbacError):
    """An invalid home-topology operation."""


class Home:
    """The spatial model of one household."""

    def __init__(self, name: str = "aware-home") -> None:
        self.name = name
        #: room -> floor
        self._room_floor: Dict[str, str] = {}
        #: floor -> rooms (insertion order)
        self._floor_rooms: Dict[str, List[str]] = {}
        #: zone -> member rooms
        self._zones: Dict[str, Set[str]] = {}
        #: undirected adjacency between rooms (and OUTSIDE)
        self._adjacent: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_room(self, room: str, floor: str = "ground") -> str:
        """Add a room on a floor; idempotent for the same floor.

        :raises TopologyError: when the room exists on another floor or
            collides with a floor/zone name.
        """
        if not room:
            raise TopologyError("room name must be non-empty")
        if room == OUTSIDE or room == HOME_ZONE:
            raise TopologyError(f"{room!r} is a reserved name")
        existing = self._room_floor.get(room)
        if existing is not None:
            if existing != floor:
                raise TopologyError(
                    f"room {room!r} already on floor {existing!r}"
                )
            return room
        if room in self._floor_rooms or room in self._zones:
            raise TopologyError(f"{room!r} already names a floor or zone")
        self._room_floor[room] = floor
        self._floor_rooms.setdefault(floor, []).append(room)
        self._adjacent.setdefault(room, set())
        return room

    def connect(self, room_a: str, room_b: str) -> None:
        """Declare two locations adjacent (rooms, or a room and OUTSIDE)."""
        for room in (room_a, room_b):
            if room != OUTSIDE and room not in self._room_floor:
                raise TopologyError(f"unknown room {room!r}")
        if room_a == room_b:
            raise TopologyError("a room cannot be adjacent to itself")
        self._adjacent.setdefault(room_a, set()).add(room_b)
        self._adjacent.setdefault(room_b, set()).add(room_a)

    def define_zone(self, zone: str, rooms: Iterable[str]) -> None:
        """Name a group of rooms (e.g. ``"private"`` = the bedrooms)."""
        members = set(rooms)
        unknown = members - set(self._room_floor)
        if unknown:
            raise TopologyError(f"unknown rooms in zone {zone!r}: {sorted(unknown)}")
        if zone in self._room_floor or zone == OUTSIDE:
            raise TopologyError(f"{zone!r} already names a room")
        if not members:
            raise TopologyError(f"zone {zone!r} must contain at least one room")
        self._zones[zone] = members

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rooms(self, floor: Optional[str] = None) -> List[str]:
        """All rooms, or the rooms of one floor."""
        if floor is None:
            return list(self._room_floor)
        return list(self._floor_rooms.get(floor, ()))

    def floors(self) -> List[str]:
        """All floor names, in insertion order."""
        return list(self._floor_rooms)

    def zones(self) -> List[str]:
        """All explicitly defined zone names."""
        return list(self._zones)

    def floor_of(self, room: str) -> str:
        """The floor a room is on.

        :raises TopologyError: for unknown rooms.
        """
        try:
            return self._room_floor[room]
        except KeyError:
            raise TopologyError(f"unknown room {room!r}") from None

    def contains(self, location: str, zone: str) -> bool:
        """Does ``location`` (a room) lie inside ``zone``?

        ``zone`` may be the location itself, its floor, an explicit
        zone containing it, or ``"home"``.  ``OUTSIDE`` is inside
        nothing but itself.
        """
        if location == zone:
            return True
        if location == OUTSIDE or location not in self._room_floor:
            return False
        if zone == HOME_ZONE:
            return True
        if zone in self._zones:
            return location in self._zones[zone]
        return self._room_floor[location] == zone

    def zone_resolver(self) -> ZoneResolver:
        """Adapter for :class:`~repro.env.location.LocationService`."""
        return self.contains

    def path(self, start: str, goal: str) -> Optional[List[str]]:
        """Shortest adjacency path between two locations, or ``None``.

        Used by trace generators to move residents room-by-room.
        """
        if start == goal:
            return [start]
        for room in (start, goal):
            if room != OUTSIDE and room not in self._room_floor:
                raise TopologyError(f"unknown room {room!r}")
        frontier = deque([start])
        came_from: Dict[str, str] = {start: start}
        while frontier:
            current = frontier.popleft()
            for neighbor in sorted(self._adjacent.get(current, ())):
                if neighbor in came_from:
                    continue
                came_from[neighbor] = current
                if neighbor == goal:
                    path = [goal]
                    while path[-1] != start:
                        path.append(came_from[path[-1]])
                    return list(reversed(path))
                frontier.append(neighbor)
        return None

    def adjacent_to(self, room: str) -> Set[str]:
        """Locations directly adjacent to ``room``."""
        return set(self._adjacent.get(room, ()))


def standard_home() -> Home:
    """The canonical two-story test household used across the repo.

    Ground floor: kitchen, living room, dining room, garage, foyer.
    Upstairs: master bedroom, kids' bedroom, study, bathroom.
    Zones: ``upstairs``/``downstairs`` (the paper's §4.2.2 examples)
    and ``private`` (bedrooms + study).
    """
    home = Home()
    for room in ["foyer", "livingroom", "kitchen", "diningroom", "garage"]:
        home.add_room(room, floor="downstairs-floor")
    for room in ["master-bedroom", "kids-bedroom", "study", "bathroom"]:
        home.add_room(room, floor="upstairs-floor")
    home.connect(OUTSIDE, "foyer")
    home.connect(OUTSIDE, "garage")
    home.connect("foyer", "livingroom")
    home.connect("livingroom", "diningroom")
    home.connect("diningroom", "kitchen")
    home.connect("kitchen", "garage")
    home.connect("foyer", "bathroom")
    home.connect("foyer", "master-bedroom")
    home.connect("master-bedroom", "study")
    home.connect("foyer", "kids-bedroom")
    home.define_zone("upstairs", ["master-bedroom", "kids-bedroom", "study", "bathroom"])
    home.define_zone(
        "downstairs", ["foyer", "livingroom", "kitchen", "diningroom", "garage"]
    )
    home.define_zone("private", ["master-bedroom", "kids-bedroom", "study"])
    return home
