"""Residents and guests — the people of the Aware Home.

A :class:`Resident` is the simulation's ground truth about a person:
their physical features (weight, biometric signatures) that sensors
observe, and a :class:`DailySchedule` describing their habitual
movement through the house — the raw material for trace generation
("it can choose to produce hot water only at times when residents
usually take showers", §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.auth.authenticator import Presence
from repro.env.location import OUTSIDE
from repro.env.temporal import parse_time_of_day
from repro.exceptions import GrbacError


class ScheduleError(GrbacError):
    """An invalid daily-schedule definition."""


@dataclass(frozen=True)
class ScheduleEntry:
    """From ``start`` (time of day) the person is at ``location``."""

    start: time
    location: str


class DailySchedule:
    """A day as a sequence of (time, location) waypoints.

    The schedule wraps around midnight: before the first entry of the
    day, the person is wherever the *last* entry put them (asleep in
    bed at 23:00 means still in bed at 02:00).
    """

    def __init__(self, entries: Sequence[Tuple[str, str]]) -> None:
        """
        :param entries: ``(time_of_day, location)`` pairs, e.g.
            ``[("07:00", "kitchen"), ("08:30", "outside"), ...]``.
        """
        if not entries:
            raise ScheduleError("a schedule needs at least one entry")
        parsed = [
            ScheduleEntry(parse_time_of_day(start), location)
            for start, location in entries
        ]
        parsed.sort(key=lambda entry: entry.start)
        for first, second in zip(parsed, parsed[1:]):
            if first.start == second.start:
                raise ScheduleError(
                    f"duplicate schedule time {first.start.isoformat()}"
                )
        self._entries = parsed

    def location_at(self, moment: datetime) -> str:
        """Where the person is at ``moment``."""
        current = self._entries[-1].location  # wrap-around from yesterday
        moment_time = moment.time()
        for entry in self._entries:
            if entry.start <= moment_time:
                current = entry.location
            else:
                break
        return current

    def entries(self) -> List[ScheduleEntry]:
        """The normalized waypoints, sorted by time."""
        return list(self._entries)

    def transition_times(self) -> List[time]:
        """Times of day at which the person moves."""
        return [entry.start for entry in self._entries]


@dataclass
class Resident:
    """Ground truth about one person in (or visiting) the home."""

    name: str
    age: int
    weight_lb: float
    #: Subject-role names this person should be assigned.
    roles: Tuple[str, ...] = ()
    #: Biometric signatures observable by recognition sensors.
    face_signature: str = ""
    voice_signature: str = ""
    #: Habitual daily movement; ``None`` for visitors.
    schedule: Optional[DailySchedule] = None
    #: Extra descriptive attributes.
    attributes: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise GrbacError("resident needs a name")
        if self.age < 0 or self.weight_lb <= 0:
            raise GrbacError("resident age/weight out of range")
        if not self.face_signature:
            self.face_signature = f"face:{self.name}"
        if not self.voice_signature:
            self.voice_signature = f"voice:{self.name}"
        self.roles = tuple(self.roles)

    @property
    def is_adult(self) -> bool:
        """Eighteen or older."""
        return self.age >= 18

    def presence(self, **extra_features: Any) -> Presence:
        """The ground-truth presence sensors observe for this person."""
        features: Dict[str, Any] = {
            "weight_lb": self.weight_lb,
            "face": self.face_signature,
            "voice": self.voice_signature,
        }
        features.update(extra_features)
        return Presence(self.name, features)

    def location_at(self, moment: datetime) -> str:
        """Scheduled location at ``moment`` (OUTSIDE without a schedule)."""
        if self.schedule is None:
            return OUTSIDE
        return self.schedule.location_at(moment)


def standard_household() -> List[Resident]:
    """The paper's Figure 2 household, with ground-truth features.

    Mom, Dad (parents), Alice (11, 94 lb — §5.2's numbers) and Bobby
    (children).  The dishwasher repair technician is created by the
    scenarios that need him, since he is a visitor, not a resident.
    """
    return [
        Resident(
            "mom",
            age=40,
            weight_lb=135.0,
            roles=("parent",),
            schedule=DailySchedule(
                [
                    ("06:30", "kitchen"),
                    ("08:00", OUTSIDE),
                    ("17:30", "kitchen"),
                    ("19:00", "livingroom"),
                    ("22:30", "master-bedroom"),
                ]
            ),
        ),
        Resident(
            "dad",
            age=42,
            weight_lb=180.0,
            roles=("parent",),
            schedule=DailySchedule(
                [
                    ("07:00", "kitchen"),
                    ("08:30", OUTSIDE),
                    ("18:00", "livingroom"),
                    ("20:00", "study"),
                    ("23:00", "master-bedroom"),
                ]
            ),
        ),
        Resident(
            "alice",
            age=11,
            weight_lb=94.0,
            roles=("child",),
            schedule=DailySchedule(
                [
                    ("07:00", "kitchen"),
                    ("08:00", OUTSIDE),
                    ("15:30", "kids-bedroom"),
                    ("18:00", "diningroom"),
                    ("19:00", "livingroom"),
                    ("22:00", "kids-bedroom"),
                ]
            ),
        ),
        Resident(
            "bobby",
            age=8,
            weight_lb=88.0,
            roles=("child",),
            schedule=DailySchedule(
                [
                    ("07:15", "kitchen"),
                    ("08:00", OUTSIDE),
                    ("15:30", "livingroom"),
                    ("18:00", "diningroom"),
                    ("19:00", "livingroom"),
                    ("21:30", "kids-bedroom"),
                ]
            ),
        ),
    ]
