"""The GRBAC decision service — an asyncio PDP serving layer.

The paper's mediation rule (§4.2.4) guards *live* requests; this
package is the layer that takes it to concurrent traffic: a
:class:`PolicyDecisionPoint` with a bounded admission queue,
micro-batching onto the compiled engine's ``decide_batch`` fast path,
a revision-keyed decision cache, explicit overload shedding, and
graceful drain — exposed in-process (:class:`PDPClient`), over
newline-delimited-JSON TCP (:class:`PDPServer` /
:class:`RemotePDPClient`), and via the CLI's ``serve`` / ``loadgen``
subcommands.  See ``docs/SERVICE.md`` for the architecture.
"""

from repro.service.admin import AdminServer
from repro.service.cache import DecisionCache
from repro.service.client import RemotePDPClient
from repro.service.loadgen import (
    ClientPool,
    attach_revocation_probe,
    LoadgenConfig,
    LoadgenResult,
    build_stream,
    compute_expected,
    merge_results,
    run_loadgen,
    run_loadgen_endpoints,
)
from repro.service.pdp import (
    MEDIATED_OUTCOMES,
    PDPClient,
    PDPConfig,
    PDPOutcome,
    PDPResponse,
    PolicyDecisionPoint,
    SessionGrant,
    SessionGrantTable,
)
from repro.service.protocol import InternTables, WireResponse, WireRevocation
from repro.service.server import PDPServer

__all__ = [
    "AdminServer",
    "ClientPool",
    "DecisionCache",
    "InternTables",
    "LoadgenConfig",
    "LoadgenResult",
    "MEDIATED_OUTCOMES",
    "PDPClient",
    "PDPConfig",
    "PDPOutcome",
    "PDPResponse",
    "PDPServer",
    "PolicyDecisionPoint",
    "RemotePDPClient",
    "SessionGrant",
    "SessionGrantTable",
    "WireResponse",
    "WireRevocation",
    "attach_revocation_probe",
    "build_stream",
    "compute_expected",
    "merge_results",
    "run_loadgen",
    "run_loadgen_endpoints",
]
