"""The asyncio Policy Decision Point (PDP).

NIST RBAC frames mediation as a reference monitor interposed on every
access; the ROADMAP's north star is that monitor under *heavy
concurrent traffic*.  :class:`PolicyDecisionPoint` is the serving
layer between the compiled engine's ``decide_batch`` fast path (PR 1)
and live callers:

* **bounded admission queue** — requests wait in an
  :class:`asyncio.Queue` of configurable depth; when it is full the
  request is *shed immediately* with the explicit
  :attr:`PDPOutcome.DENY_OVERLOAD` outcome.  Overload never produces
  an unbounded wait and never a spurious grant.
* **micro-batching** — a single consumer task drains the queue into
  batches, flushing at ``max_batch``, after ``max_wait_ms``, or as
  soon as the queue goes idle after a scheduling pass (whichever
  comes first), and renders the whole batch through one
  :meth:`MediationEngine.decide_batch` call, amortizing snapshot
  lookups and expansion memos across concurrent callers.  Batch size
  therefore self-regulates with load: light traffic flushes
  singletons immediately, heavy traffic fills real batches.
* **revision-keyed caching** — answers are cached keyed on
  ``(policy.decision_revision, environment revision, request)``; any
  policy mutation or environment transition moves a revision counter
  and the stale entry stops matching (see
  :mod:`repro.service.cache`).  Hits resolve synchronously at submit
  time without ever touching the queue.
* **deadlines** — a request may carry a timeout; if it is still
  queued when its deadline passes it resolves to
  :attr:`PDPOutcome.DENY_TIMEOUT` instead of occupying a batch slot.
* **graceful drain** — :meth:`stop` (default) decides everything
  already admitted before shutting down, so an accepted request is
  never silently dropped.
* **hot-reload** — :meth:`swap_policy` atomically replaces the served
  policy without a restart: in-flight micro-batches complete against
  the engine they started with, subsequent batches see only the new
  one, and a :attr:`generation` counter in every cache key guarantees
  a swapped-in policy can never collide with cached decisions from an
  earlier one — even when their ``decision_revision`` values happen to
  coincide.  The validated administration path (parse, lint, diff,
  audit) lives in :mod:`repro.policy.admin`; the PDP only performs the
  swap itself.

The PDP is deliberately sessionless: callers that need §4.1.2 session
semantics hold a :class:`~repro.core.activation.Session` and talk to
the engine directly.  Decisions themselves are synchronous CPU work;
the consumer runs them on the event loop in batches small enough to
bound added latency (override :meth:`_decide` to offload).
"""

from __future__ import annotations

import asyncio
import enum
import itertools
import time
import weakref
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.audit import HashChainWriter
from repro.core.decision import AccessRequest, Decision
from repro.core.mediation import MediationEngine
from repro.core.policy import GrbacPolicy
from repro.exceptions import PolicyStoreError, ServiceError
from repro.obs.export import (
    TraceSampler,
    TraceSink,
    prometheus_name,
    render_label_set,
    trace_to_dict,
)
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.observers import ObserverHub
from repro.obs.slo import SloTracker
from repro.obs.trace import (
    DecisionTrace,
    Span,
    SpanCollector,
    TraceContext,
    new_span_id,
)
from repro.service.cache import CacheKey, DecisionCache
from repro.store.store import DEFAULT_TENANT, PolicyStore


class PDPOutcome(str, enum.Enum):
    """How the service answered — distinct from grant/deny alone.

    ``GRANT``/``DENY`` are mediated answers; the remaining outcomes
    are *service* refusals, all of which report ``granted=False`` so
    an overloaded or timed-out request can never be mistaken for an
    authorization.  ``DENY_UNKNOWN_TENANT`` is the explicit answer for
    a request naming a tenant this PDP does not serve — a routing
    mistake must read as a refusal, never a crash and never a grant.
    """

    GRANT = "grant"
    DENY = "deny"
    DENY_OVERLOAD = "deny-overload"
    DENY_TIMEOUT = "deny-timeout"
    DENY_UNKNOWN_TENANT = "deny-unknown-tenant"
    #: The shard a request routes to is down or circuit-broken; the
    #: cluster router synthesizes this instead of letting the client
    #: hang.  Like every service refusal it reports ``granted=False``.
    DENY_UNAVAILABLE = "deny-unavailable"
    ERROR = "error"


#: Outcomes that carry a mediated :class:`Decision`.
MEDIATED_OUTCOMES = frozenset({PDPOutcome.GRANT, PDPOutcome.DENY})


@dataclass(frozen=True)
class PDPResponse:
    """One answered request, as seen by the submitting caller."""

    request: AccessRequest
    outcome: PDPOutcome
    #: Always ``False`` unless ``outcome is GRANT``.
    granted: bool
    #: The full mediated decision for GRANT/DENY; ``None`` for shed,
    #: timed-out, and errored requests (nothing was mediated).
    decision: Optional[Decision]
    #: Served from the revision-keyed cache (no queue, no batch).
    cached: bool = False
    #: Size of the micro-batch this request was decided in (0 when it
    #: never reached the batcher: cache hits, sheds, timeouts).
    batch_size: int = 0
    #: End-to-end service latency in seconds (submit to resolution).
    latency_s: float = 0.0
    #: Why a non-mediated outcome happened (overload/timeout/error).
    detail: str = ""
    #: Caller-supplied correlation id (the wire protocol's ``id``);
    #: echoed so logs, traces, and verification failures all name the
    #: same request.
    request_id: Optional[object] = None
    #: The tenant this request was routed to (the default tenant for
    #: single-policy traffic, preserving pre-tenancy behavior).
    tenant: str = DEFAULT_TENANT
    #: Distributed trace id when the request carried (or the PDP
    #: originated) a :class:`TraceContext`; ``""`` otherwise.
    trace_id: str = ""

    @property
    def rationale(self) -> str:
        if self.decision is not None:
            return self.decision.rationale
        return self.detail or self.outcome.value


@dataclass(frozen=True)
class PDPConfig:
    """Tuning knobs for the decision service."""

    #: Flush a batch at this size.
    max_batch: int = 64
    #: Upper bound on gathering: flush once the head of the batch has
    #: waited this long.  (An idle queue flushes sooner — see _run.)
    max_wait_ms: float = 1.0
    #: Admission bound: queued (not yet decided) request limit.  A
    #: submit finding the queue full is shed with DENY_OVERLOAD.
    max_queue: int = 1024
    #: Revision-keyed decision cache capacity (0 disables).
    cache_size: int = 4096
    #: Default per-request deadline in seconds (None = no deadline).
    default_timeout_s: Optional[float] = None
    #: Head-based trace sampling rate in [0, 1]; sampled requests are
    #: decided with a full pipeline trace exported to the trace sink
    #: (no-op unless a sink is attached).
    trace_sample_rate: float = 0.0
    #: Flight-recorder ring capacity (0 disables the recorder).
    flight_capacity: int = 512
    #: Retained distributed traces for the ``trace`` op (0 disables
    #: the in-memory span buffer; sink export is unaffected).
    trace_buffer: int = 256
    #: Tenants given their own ``tenant="..."`` label on the exported
    #: per-tenant series; everything past the top K folds into the
    #: ``__other__`` bucket so exposition cardinality stays bounded no
    #: matter how many tenants a PDP has served.
    tenant_label_topk: int = 8

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServiceError("max_batch must be >= 1")
        if self.max_wait_ms < 0:
            raise ServiceError("max_wait_ms must be >= 0")
        if self.max_queue < 1:
            raise ServiceError("max_queue must be >= 1")
        if self.cache_size < 0:
            raise ServiceError("cache_size must be >= 0")
        if self.default_timeout_s is not None and self.default_timeout_s <= 0:
            raise ServiceError("default_timeout_s must be > 0")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ServiceError("trace_sample_rate must be in [0, 1]")
        if self.flight_capacity < 0:
            raise ServiceError("flight_capacity must be >= 0")
        if self.trace_buffer < 0:
            raise ServiceError("trace_buffer must be >= 0")
        if self.tenant_label_topk < 0:
            raise ServiceError("tenant_label_topk must be >= 0")


@dataclass
class _Pending:
    """One admitted request waiting for the batcher."""

    request: AccessRequest
    env_override: Optional[FrozenSet[str]]
    future: "asyncio.Future[PDPResponse]"
    submitted_at: float
    #: Event-loop deadline (loop.time() based), or None.
    deadline: Optional[float]
    #: Wire correlation id, threaded into the response and any trace.
    request_id: Optional[object] = None
    #: Head-sampled for tracing: decided individually with a full
    #: pipeline trace that is exported to the trace sink.
    traced: bool = False
    #: Tenant the request was admitted for; the batcher groups a
    #: flush by this so each group renders on its tenant's engine.
    tenant: str = DEFAULT_TENANT
    #: Distributed trace context the request arrived with (or that
    #: submit originated for a locally sampled request); ``None`` on
    #: untraced traffic.
    trace_ctx: Optional[TraceContext] = None

    @property
    def trace_id(self) -> str:
        return self.trace_ctx.trace_id if self.trace_ctx is not None else ""


@dataclass
class _TenantState:
    """Per-tenant serving state: generation, origin, and counters.

    Store-backed tenants deliberately hold **no strong engine
    reference** — the engine is owned by the store's bounded compiled
    LRU, so resident memory scales with the LRU capacity, not the
    tenant count (the E13 bench gates on this).  What they do keep is
    a *weak* reference plus the version it was resolved at: while the
    active pointer stands still and the LRU has not evicted, requests
    skip the store's locks entirely.  Tenants swapped in directly via
    :meth:`PolicyDecisionPoint.swap_policy` pin a strong engine
    reference here instead.
    """

    name: str
    #: Per-tenant swap counter; leads this tenant's cache keys exactly
    #: as :attr:`PolicyDecisionPoint.generation` leads the default
    #: tenant's.
    generation: int = 0
    #: Store version the last resolution saw; a pointer move observed
    #: at resolve time bumps :attr:`generation` so cached decisions
    #: from the previous version stop matching.
    version: Optional[int] = None
    #: Pinned engine (direct swaps only); None = resolve via store.
    engine: Optional[MediationEngine] = None
    #: Weak reference to the engine the last store resolution returned,
    #: valid while :attr:`version` is still the active version.  Weak
    #: on purpose: the store's compiled LRU stays the engine's only
    #: owner (eviction still bounds memory); the reference only lets
    #: the per-request path skip the store's locks when nothing moved.
    store_engine: Optional["weakref.ref"] = None
    # Per-tenant tallies.  Deliberately plain attributes rather than
    # registry counters: registering ``pdp.tenant.<name>.*`` series
    # per tenant made exposition cardinality grow with tenant count
    # (an unbounded-label bug at fleet scale).  The exposition layer
    # instead emits bounded ``tenant="..."`` labels for the top-K
    # hottest tenants plus an ``__other__`` overflow bucket — see
    # :meth:`PolicyDecisionPoint._tenant_prometheus`.
    requests: int = 0
    cache_hits: int = 0
    decided: int = 0
    reloads: int = 0
    #: Decision-latency accumulator (seconds) and sample count, fed by
    #: every observed response for this tenant; exported as a
    #: Prometheus ``_sum``/``_count`` pair.
    latency_sum_s: float = 0.0
    latency_count: int = 0


@dataclass(frozen=True)
class SessionGrant:
    """One pushed-revocation subscription: a live grant being watched.

    Continuous authorization (§4.2.2) turns a GRANT answer from a
    point-in-time fact into a *standing* one: the videophone session
    that was allowed to start must be torn down the moment the
    environment roles that justified it deactivate.  A subscribed
    GRANT is recorded as one of these; the supporting ``roles`` set is
    the decision's active environment-role census at grant time, so
    *any* member deactivating withdraws the grant (conditions are
    conjunctive once granted — we cannot know which roles were
    load-bearing without re-mediating, and re-checking on flip is
    exactly what the subscriber will do anyway).
    """

    #: Opaque connection identity the grant was issued on.
    session_id: object
    #: Wire id of the decision request (what the revoke push echoes).
    grant_id: object
    subject: Optional[str]
    transaction: str
    obj: str
    #: Environment roles active when the grant was rendered.
    roles: FrozenSet[str]
    tenant: str = DEFAULT_TENANT


class SessionGrantTable:
    """Who holds which environment-supported grants, by connection.

    The PDP-side half of push revocation: the serving layer registers
    each subscribed GRANT here together with a per-session ``push``
    callable; when an environment role deactivates,
    :meth:`revoke_role` sweeps the role's postings list and hands every
    affected grant to its session's push callback exactly once (the
    grant is removed before the callback runs, so a re-entrant flip
    cannot double-revoke).  Grants supported by *no* environment role
    are never registered — nothing in the environment can withdraw
    them, so watching them would only grow the table.

    Not thread-safe by design: it lives on the server's event loop,
    where activator events (delivered synchronously by the
    :class:`~repro.env.events.EventBus`) and connection lifecycles
    already serialize.
    """

    def __init__(self) -> None:
        # session -> grant_id -> grant; insertion order preserves
        # grant age for deterministic revocation order in tests.
        self._sessions: Dict[object, Dict[object, SessionGrant]] = {}
        self._push: Dict[object, Callable[..., None]] = {}
        # role name -> {(session_id, grant_id)} postings, so a flip
        # touches only the grants that role supports — O(affected),
        # not O(table).
        self._by_role: Dict[str, Set[Tuple[object, object]]] = {}
        #: Push callbacks that raised (kept for observability; a dead
        #: connection's failed push must not break the sweep).
        self.push_errors = 0

    def attach_session(
        self, session_id: object, push: Callable[..., None]
    ) -> None:
        """Start accepting grants for ``session_id``.

        ``push(grant, roles, reason, ts)`` is invoked for every
        revocation: the withdrawn :class:`SessionGrant`, the tuple of
        deactivated role names that withdrew it, a human-readable
        reason, and the server wall-clock timestamp of the flip.
        """
        self._sessions.setdefault(session_id, {})
        self._push[session_id] = push

    def detach_session(self, session_id: object) -> None:
        """Forget a closed connection and every grant it held."""
        grants = self._sessions.pop(session_id, None)
        self._push.pop(session_id, None)
        if not grants:
            return
        for grant in grants.values():
            self._unindex(grant)

    def register(self, grant: SessionGrant) -> bool:
        """Record one subscribed GRANT; ``True`` when it is watched.

        Returns ``False`` (and records nothing) for grants with no
        supporting environment roles or on sessions never attached —
        both mean no push can ever fire.  Re-registering the same
        ``(session, grant_id)`` replaces the old record (a client
        reusing a wire id after re-asking sees the fresh census).
        """
        if not grant.roles or grant.session_id not in self._sessions:
            return False
        grants = self._sessions[grant.session_id]
        old = grants.get(grant.grant_id)
        if old is not None:
            self._unindex(old)
        grants[grant.grant_id] = grant
        key = (grant.session_id, grant.grant_id)
        for role in grant.roles:
            self._by_role.setdefault(role, set()).add(key)
        return True

    def revoke_role(
        self, role: str, reason: str, ts: float
    ) -> List[SessionGrant]:
        """Withdraw every grant ``role`` supports and push each one.

        Returns the withdrawn grants (already removed from the table).
        """
        postings = self._by_role.pop(role, None)
        if not postings:
            return []
        revoked: List[SessionGrant] = []
        for session_id, grant_id in sorted(
            postings, key=lambda key: (repr(key[0]), repr(key[1]))
        ):
            grants = self._sessions.get(session_id)
            if grants is None:
                continue
            grant = grants.pop(grant_id, None)
            if grant is None:
                continue
            self._unindex(grant, skip_role=role)
            revoked.append(grant)
            push = self._push.get(session_id)
            if push is None:
                continue
            try:
                push(grant, (role,), reason, ts)
            except Exception:  # noqa: BLE001 - a dead writer, not us
                self.push_errors += 1
        return revoked

    def _unindex(self, grant: SessionGrant, skip_role: str = "") -> None:
        key = (grant.session_id, grant.grant_id)
        for role in grant.roles:
            if role == skip_role:
                continue
            postings = self._by_role.get(role)
            if postings is None:
                continue
            postings.discard(key)
            if not postings:
                del self._by_role[role]

    @property
    def sessions(self) -> int:
        return len(self._sessions)

    @property
    def grants(self) -> int:
        return sum(len(grants) for grants in self._sessions.values())

    def grants_for(self, session_id: object) -> List[SessionGrant]:
        """The live grants of one session (observability/tests)."""
        return list(self._sessions.get(session_id, {}).values())


_STOP = object()  # queue sentinel; see stop()


class PolicyDecisionPoint:
    """An asyncio decision service over one :class:`MediationEngine`.

    :param engine: the mediation engine decisions are rendered by.
    :param config: service tuning; defaults are reasonable for an
        in-process PDP.
    :param env_revision: how to observe the environment-snapshot
        revision for cache keys — a zero-argument callable, or any
        object exposing a ``revision`` attribute (e.g.
        :class:`~repro.env.runtime.EnvironmentRuntime` or the
        activator).  When omitted, it is derived from the engine's
        environment source when that source exposes ``revision``;
        engines with an opaque source stay correct by *not caching*
        requests that resolve the environment through it (explicit
        per-request environment overrides are always cacheable).
    :param metrics: registry for service counters/histograms; the
        engine's own registry is reused by default so one snapshot
        shows the whole stack.
    :param observers: observer hub for lifecycle/overload events;
        defaults to the engine's hub.
    :param trace_sink: destination for sampled decision spans (see
        :mod:`repro.obs.export`).  ``None`` disables trace export
        regardless of the configured sample rate.
    :param slo: rolling SLO tracker; a default one (99.9%%
        availability, 99%% under 50 ms, 5-minute window) bound to the
        metrics registry is created when omitted.
    """

    def __init__(
        self,
        engine: MediationEngine,
        config: Optional[PDPConfig] = None,
        env_revision: object = None,
        metrics: Optional[MetricsRegistry] = None,
        observers: Optional[ObserverHub] = None,
        trace_sink: Optional[TraceSink] = None,
        slo: Optional[SloTracker] = None,
        store: Optional[PolicyStore] = None,
        audit_writer: Optional[HashChainWriter] = None,
    ) -> None:
        self.engine = engine
        self.config = config or PDPConfig()
        self.metrics = metrics if metrics is not None else engine.metrics
        self.observers = observers if observers is not None else engine.observers
        self.cache = DecisionCache(self.config.cache_size)
        #: Monotonic policy generation, bumped by every
        #: :meth:`swap_policy`.  It is the leading cache-key component:
        #: two policies can legitimately share a ``decision_revision``
        #: (a freshly-built policy starts its counters from the same
        #: deterministic construction order), so revision alone cannot
        #: distinguish pre-swap entries from post-swap ones.
        self.generation = 0
        self._env_revision = self._resolve_env_revision(env_revision)
        # Environment-source identity tracking: cache keys must change
        # when `engine.environment` itself is attached, detached, or
        # replaced after construction — two different sources can carry
        # equal revision numbers.  Compared by identity in
        # _env_component; the epoch bumps on every observed change.
        self._env_source = engine.environment
        self._env_epoch = 0
        #: Optional multi-tenant policy store; tenants it holds resolve
        #: engines lazily through its bounded compiled-snapshot LRU.
        #: The constructor engine always serves the *default* tenant,
        #: so single-policy deployments behave exactly as before.
        self.store = store
        self._tenants: Dict[str, _TenantState] = {}
        self._queue: Optional["asyncio.Queue[object]"] = None
        self._batcher: Optional["asyncio.Task[None]"] = None
        self._accepting = False
        self._drain_on_stop = True
        self._started_at: Optional[float] = None
        # Live-ops surfaces (PR 4): sampled trace export, the always-on
        # flight recorder, and rolling SLO objectives.
        self.trace_sink = trace_sink
        self.sampler = TraceSampler(self.config.trace_sample_rate)
        self.flight: Optional[FlightRecorder] = (
            FlightRecorder(self.config.flight_capacity)
            if self.config.flight_capacity > 0
            else None
        )
        self.slo = slo if slo is not None else SloTracker(metrics=self.metrics)
        #: Bounded buffer of this process's distributed-trace spans,
        #: keyed by trace id — what the ``trace`` wire op and the
        #: cluster admin's cross-process join read from.
        self.spans: Optional[SpanCollector] = (
            SpanCollector(self.config.trace_buffer)
            if self.config.trace_buffer > 0
            else None
        )
        #: Optional hash-chained audit stream: every *mediated*
        #: response (GRANT/DENY — service refusals mediate nothing)
        #: appends one tamper-evident record.  See
        #: :class:`repro.core.audit.HashChainWriter`.
        self.audit_writer = audit_writer
        self.metrics.gauge("pdp.queue_depth", lambda: float(self.queue_depth))
        self.metrics.gauge("pdp.running", lambda: float(self.running))
        self.metrics.gauge("pdp.generation", lambda: float(self.generation))
        environment = engine.environment
        if environment is not None and hasattr(environment, "revision"):
            self.metrics.gauge(
                "env.revision",
                lambda: float(environment.revision),  # type: ignore[attr-defined]
            )
        # Hot-path metric handles (one dict probe each, taken once).
        metrics_registry = self.metrics
        self._m_requests = metrics_registry.counter("pdp.requests")
        self._m_cache_hits = metrics_registry.counter("pdp.cache_hits")
        self._m_cache_misses = metrics_registry.counter("pdp.cache_misses")
        self._m_cache_uncacheable = metrics_registry.counter(
            "pdp.cache_uncacheable"
        )
        self._m_shed = metrics_registry.counter("pdp.shed")
        self._m_timeouts = metrics_registry.counter("pdp.timeouts")
        self._m_errors = metrics_registry.counter("pdp.errors")
        self._m_batches = metrics_registry.counter("pdp.batches")
        self._m_decided = metrics_registry.counter("pdp.decided")
        self._m_reloads = metrics_registry.counter("pdp.reloads")
        self._m_unknown_tenant = metrics_registry.counter(
            "pdp.unknown_tenant"
        )
        self._h_batch = metrics_registry.histogram("pdp.batch_size")
        self._h_queue = metrics_registry.histogram("pdp.queue_depth")
        self._h_latency = metrics_registry.histogram("pdp.latency")
        self._h_reload = metrics_registry.histogram("pdp.reload_duration")
        # Continuous authorization (§4.2.2): the push-revocation ledger
        # and its observability.  The table is always present (cheap);
        # it only fills when a serving layer attaches sessions and
        # calls watch_environment.
        self.grants = SessionGrantTable()
        self._m_revocations = metrics_registry.counter("pdp.revocations")
        self._h_revocation_latency = metrics_registry.histogram(
            "pdp.revocation_latency"
        )
        metrics_registry.gauge(
            "pdp.subscribed_sessions", lambda: float(self.grants.sessions)
        )
        metrics_registry.gauge(
            "pdp.subscribed_grants", lambda: float(self.grants.grants)
        )
        # Decision-cache capacity/evictions at the exposition surface,
        # so tenant-LRU tuning is observable without a stats round-trip.
        metrics_registry.gauge(
            "pdp.cache_capacity", lambda: float(self.cache.capacity)
        )
        metrics_registry.gauge(
            "pdp.cache_evictions", lambda: float(self.cache.evictions)
        )
        if store is not None:
            store.bind_metrics(metrics_registry)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "PolicyDecisionPoint":
        """Start the batcher; idempotent."""
        if self._batcher is not None and not self._batcher.done():
            return self
        self._queue = asyncio.Queue(maxsize=self.config.max_queue)
        self._batcher = asyncio.get_running_loop().create_task(self._run())
        self._accepting = True
        self._started_at = time.monotonic()
        hub = self.observers
        if hub:
            hub.emit("pdp.start", max_batch=self.config.max_batch,
                     max_queue=self.config.max_queue)
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting and shut the batcher down.

        With ``drain=True`` (graceful, the default) every already-
        admitted request is decided before the task exits; with
        ``drain=False`` queued requests are shed with DENY_OVERLOAD.
        """
        if self._batcher is None:
            return
        self._accepting = False
        self._drain_on_stop = drain
        assert self._queue is not None
        await self._queue.put(_STOP)
        await self._batcher
        self._batcher = None
        hub = self.observers
        if hub:
            hub.emit("pdp.stop", drained=drain)

    async def __aenter__(self) -> "PolicyDecisionPoint":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    @property
    def running(self) -> bool:
        return self._batcher is not None and not self._batcher.done()

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    @property
    def uptime_s(self) -> float:
        """Seconds since the batcher (last) started; 0 when never."""
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    @property
    def policy(self) -> GrbacPolicy:
        """The policy currently being served (default tenant)."""
        return self.engine.policy

    # ------------------------------------------------------------------
    # Tenancy
    # ------------------------------------------------------------------
    def _tenant_state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantState(name=tenant)
            self._tenants[tenant] = state
        return state

    def _resolve_tenant(
        self, tenant: str
    ) -> Optional[Tuple[MediationEngine, int, _TenantState]]:
        """``(engine, generation, state)`` for ``tenant``, or None.

        Resolution order: the default tenant is always the constructor
        engine (single-policy behavior, byte-compatible); a tenant
        with a pinned engine (direct :meth:`swap_policy`) serves that;
        otherwise the attached store resolves the tenant's *active*
        version through its compiled LRU — and a pointer move observed
        here bumps the tenant's generation, so a store-side
        ``activate``/``rollback`` invalidates cached decisions without
        any callback plumbing.  ``None`` means the tenant is unknown
        (or store-known but never activated): the caller answers
        ``DENY_UNKNOWN_TENANT``.
        """
        if tenant == DEFAULT_TENANT:
            return self.engine, self.generation, self._tenant_state(tenant)
        state = self._tenants.get(tenant)
        if state is not None and state.engine is not None:
            return state.engine, state.generation, state
        store = self.store
        if store is None or tenant not in store:
            return None
        # Fast path: the last resolution is still valid if the active
        # pointer has not moved and the LRU has not evicted the engine
        # (the weakref died).  One lock-free version probe instead of
        # the store's full lock + LRU round trip per request.
        if state is not None and state.store_engine is not None:
            try:
                version = store.active_version(tenant)
            except PolicyStoreError:
                version = None
            if version is not None and version == state.version:
                engine = state.store_engine()
                if engine is not None:
                    return engine, state.generation, state
        try:
            engine, version = store.engine(tenant)
        except PolicyStoreError:
            return None  # no active version yet
        state = self._tenant_state(tenant)
        state.store_engine = weakref.ref(engine)
        if state.version != version:
            state.version = version
            state.generation += 1
        return engine, state.generation, state

    def tenants(self) -> List[str]:
        """Every tenant this PDP can currently serve, sorted."""
        names = {DEFAULT_TENANT}
        names.update(
            name
            for name, state in self._tenants.items()
            if state.engine is not None
        )
        if self.store is not None:
            names.update(self.store.tenants())
        return sorted(names)

    def tenant_policy(self, tenant: Optional[str] = None) -> GrbacPolicy:
        """The policy serving ``tenant`` (default tenant when None).

        :raises ServiceError: unknown tenant.
        """
        resolved = self._resolve_tenant(tenant or DEFAULT_TENANT)
        if resolved is None:
            raise ServiceError(f"unknown tenant {tenant!r}")
        return resolved[0].policy

    def refresh_tenant(self, tenant: Optional[str] = None) -> int:
        """Re-resolve ``tenant`` from the attached store; new generation.

        The explicit admin hook behind ``reload?tenant=`` without a
        policy body: drops any pinned engine (the store becomes the
        authority again) and, for the default tenant, swaps the
        store's active *default* policy into the constructor engine.

        :raises ServiceError: no store attached.
        :raises PolicyStoreError: tenant unknown to the store / no
            active version.
        """
        store = self.store
        if store is None:
            raise ServiceError("no policy store attached to this PDP")
        name = tenant or DEFAULT_TENANT
        if name == DEFAULT_TENANT:
            return self.swap_policy(store.policy(DEFAULT_TENANT))
        if name not in store:
            raise PolicyStoreError(f"unknown tenant {name!r}")
        engine, version = store.engine(name)  # raises if never activated
        state = self._tenant_state(name)
        state.engine = None
        state.store_engine = weakref.ref(engine)
        state.version = version
        state.generation += 1
        state.reloads += 1
        self._m_reloads.inc()
        hub = self.observers
        if hub:
            hub.emit(
                "pdp.reload",
                policy=engine.policy.name,
                tenant=name,
                generation=state.generation,
                revision=engine.policy.decision_revision,
            )
        return state.generation

    def tenants_overview(self) -> List[Dict[str, object]]:
        """One summary row per tenant — the ``tenants`` op / ``GET
        /tenants`` body: lineage from the store (when attached) merged
        with live serving state and per-tenant counters."""
        rows: Dict[str, Dict[str, object]] = {}
        if self.store is not None:
            for row in self.store.overview():
                rows[str(row["tenant"])] = {**row, "source": "store"}
        default = rows.setdefault(
            DEFAULT_TENANT, {"tenant": DEFAULT_TENANT, "source": "engine"}
        )
        default["policy"] = self.engine.policy.name
        default["generation"] = self.generation
        for name, state in self._tenants.items():
            row = rows.setdefault(name, {"tenant": name})
            if state.engine is not None:
                row["source"] = "swap"
                row["policy"] = state.engine.policy.name
            if name != DEFAULT_TENANT:
                row["generation"] = state.generation
                if state.version is not None:
                    row["serving_version"] = state.version
            row["requests"] = state.requests
            row["cache_hits"] = state.cache_hits
            row["decided"] = state.decided
            row["reloads"] = state.reloads
        return [rows[name] for name in sorted(rows)]

    # ------------------------------------------------------------------
    # Hot-reload
    # ------------------------------------------------------------------
    def swap_policy(
        self, policy: GrbacPolicy, tenant: Optional[str] = None
    ) -> int:
        """Atomically replace the served policy; returns the generation.

        A fresh :class:`MediationEngine` is built on ``policy`` carrying
        over the old engine's environment source, confidence threshold,
        mode, internal cache sizing, and decision constraints, then
        swapped in with *no await point* between building it and
        publishing it: on asyncio's single thread, a micro-batch that
        already captured its engine (see :meth:`_flush`) completes
        against the old snapshot, and every batch formed afterwards sees
        only the new one.  :attr:`generation` bumps in the same
        synchronous step, so pre-swap :class:`DecisionCache` entries
        stop matching by construction — even when old and new policies
        share a ``decision_revision``.

        This is the mechanism only; validation, diffing, and audit live
        in :class:`repro.policy.admin.PolicyAdministrator`, which calls
        this after a candidate passes its checks.

        With ``tenant`` naming a non-default tenant, the swap targets
        (or creates) that tenant's pinned engine instead and bumps the
        *tenant's* generation — the default tenant and every other
        tenant keep serving their engines and their cached decisions
        untouched.
        """
        if tenant is not None and tenant != DEFAULT_TENANT:
            return self._swap_tenant_policy(policy, tenant)
        old = self.engine
        started = time.perf_counter()
        engine = MediationEngine(
            policy,
            environment=old.environment,
            confidence_threshold=old.confidence_threshold,
            cache_size=old.cache_size,
            mode=old.mode,
            metrics=self.metrics,
            observers=self.observers,
        )
        engine.decision_constraints = list(old.decision_constraints)
        if engine.mode == "compiled":
            # Pre-warm the snapshot so the first post-swap batch does
            # not pay the compile inside its latency budget.
            policy.compiled()
        # The swap: two plain attribute writes, no await between them,
        # so no task can observe one without the other.
        self.engine = engine
        self.generation += 1
        generation = self.generation
        duration = time.perf_counter() - started
        self._m_reloads.inc()
        self._h_reload.observe(duration)
        hub = self.observers
        if hub:
            hub.emit(
                "pdp.reload",
                policy=policy.name,
                generation=generation,
                revision=policy.decision_revision,
            )
        rationale = (
            f"policy swapped to {policy.name!r} "
            f"(generation {generation}, revision {policy.decision_revision})"
        )
        if self.flight is not None:
            self.flight.record(
                subject=None,
                transaction="policy.reload",
                obj=policy.name,
                outcome="reload",
                granted=False,
                rationale=rationale,
                latency_us=duration * 1e6,
            )
        sink = self.trace_sink
        if sink is not None:
            trace = DecisionTrace(None, "policy.reload", policy.name,
                                  mode="admin")
            trace.granted = False
            trace.rationale = rationale
            trace.add_span(
                "pdp.reload",
                duration_s=duration,
                annotations={
                    "policy": policy.name,
                    "generation": generation,
                    "revision": policy.decision_revision,
                },
            )
            sink.offer(trace_to_dict(trace))
        return generation

    def _swap_tenant_policy(self, policy: GrbacPolicy, tenant: str) -> int:
        """Pin a fresh engine for a non-default tenant; its generation.

        Engine settings (threshold, mode, cache sizing) carry over
        from the tenant's previous pinned engine when it has one, and
        from the default engine otherwise — a tenant minted by its
        first swap inherits the deployment's tuning.
        """
        state = self._tenant_state(tenant)
        template = state.engine if state.engine is not None else self.engine
        started = time.perf_counter()
        engine = MediationEngine(
            policy,
            environment=template.environment,
            confidence_threshold=template.confidence_threshold,
            cache_size=template.cache_size,
            mode=template.mode,
            metrics=self.metrics,
            observers=self.observers,
        )
        if engine.mode == "compiled":
            policy.compiled()
        state.engine = engine
        state.version = None  # pinned: the store is no longer authority
        state.store_engine = None
        state.generation += 1
        duration = time.perf_counter() - started
        state.reloads += 1
        self._m_reloads.inc()
        self._h_reload.observe(duration)
        hub = self.observers
        if hub:
            hub.emit(
                "pdp.reload",
                policy=policy.name,
                tenant=tenant,
                generation=state.generation,
                revision=policy.decision_revision,
            )
        return state.generation

    # ------------------------------------------------------------------
    # Continuous authorization (push revocation)
    # ------------------------------------------------------------------
    def watch_environment(self, bus) -> None:
        """Subscribe the grant table to ``bus``'s role lifecycle.

        Wires ``role.deactivated`` events — published eagerly by the
        :class:`~repro.env.activation.EnvironmentRoleActivator` at
        every transition, with zero requests in flight — into
        :meth:`SessionGrantTable.revoke_role`, so a §4.2.2 environment
        flip withdraws every subscribed grant the flipped role
        supported.  Delivery is synchronous on the bus's publish path:
        by the time the event has fanned out, the table no longer
        holds the grant and every push callback has run.
        """
        bus.subscribe("role.deactivated", self._on_role_deactivated)

    def _on_role_deactivated(self, event) -> None:
        role = event.get("role")
        if not role:
            return
        ts = time.time()
        revoked = self.grants.revoke_role(
            role, reason=f"environment role '{role}' deactivated", ts=ts
        )
        if revoked:
            self._m_revocations.inc(len(revoked))
            hub = self.observers
            if hub:
                hub.emit(
                    "pdp.revocations", role=role, grants=len(revoked)
                )

    def record_revocation_latency(self, seconds: float) -> None:
        """Record one flip-to-delivery revocation latency observation.

        Called by whichever layer can actually see the delivery happen
        — the TCP server just before the push bytes are written, an
        in-process harness when its callback fires — because the PDP
        itself only knows when the flip occurred, not when the
        subscriber learned of it.
        """
        self._h_revocation_latency.observe(max(0.0, seconds))

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(
        self,
        request: AccessRequest,
        environment_roles: Optional[Set[str]] = None,
        timeout: Optional[float] = None,
        request_id: Optional[object] = None,
        tenant: Optional[str] = None,
        trace_ctx: Optional[TraceContext] = None,
    ) -> PDPResponse:
        """Mediate ``request`` through the service.

        :param environment_roles: explicit directly-active environment
            roles (what-if / replay traffic); ``None`` resolves through
            the engine's environment source at decision time.
        :param timeout: per-request deadline in seconds (defaults to
            the config's ``default_timeout_s``).  A request whose
            deadline passes while it is still queued resolves to
            DENY_TIMEOUT.
        :param request_id: caller correlation id (the wire protocol's
            ``id``); echoed on the response, stamped into exported
            trace spans and flight-recorder entries.
        :param tenant: named policy lineage to decide against;
            ``None`` (and the literal default name) is the constructor
            engine.  A tenant this PDP does not serve answers
            DENY_UNKNOWN_TENANT — explicitly, never as a crash.
        :param trace_ctx: distributed trace context propagated from an
            upstream hop (router or client).  Its head-sampling flag is
            *obeyed* — this PDP never re-rolls the decision — so a
            cross-process trace is complete or absent, never partial.
            ``None`` falls back to local head sampling, originating a
            fresh context when sampled.
        :raises ServiceError: when the service is not running.
        """
        if not self._accepting or self._queue is None:
            raise ServiceError("PDP is not running (call start())")
        self._m_requests.inc()
        submitted = time.perf_counter()
        tenant_name = tenant or DEFAULT_TENANT
        resolved = self._resolve_tenant(tenant_name)
        if resolved is None:
            self._m_unknown_tenant.inc()
            latency = time.perf_counter() - submitted
            self._h_latency.observe(latency)
            response = PDPResponse(
                request=request,
                outcome=PDPOutcome.DENY_UNKNOWN_TENANT,
                granted=False,
                decision=None,
                detail=f"unknown tenant {tenant_name!r}",
                latency_s=latency,
                request_id=request_id,
                tenant=tenant_name,
                trace_id=trace_ctx.trace_id if trace_ctx is not None else "",
            )
            self._observe_response(response)
            return response
        engine, generation, state = resolved
        state.requests += 1
        override = (
            frozenset(environment_roles) if environment_roles is not None else None
        )
        # Head-based sampling: the keep/drop choice is made here, once,
        # before we know whether the request will hit the cache.  A
        # propagated context's flag is authoritative (the origin rolled
        # the dice); otherwise the local sampler decides, and a locally
        # sampled request originates its own context so every traced
        # decision carries a joinable trace id.
        if trace_ctx is not None:
            traced = trace_ctx.sampled and (
                self.trace_sink is not None or self.spans is not None
            )
        else:
            traced = (
                self.trace_sink is not None or self.spans is not None
            ) and self.sampler.should_sample()
            if traced:
                trace_ctx = TraceContext.origin()

        if self.config.cache_size == 0:
            # Capacity-0 fast path: no key tuple is ever materialized
            # and the LRU is never probed — only the uncacheable tally
            # moves, exactly as a ``get(None)`` would have moved it.
            key: Optional[CacheKey] = None
            cached = None
            self.cache.note_uncacheable()
        else:
            key = self._cache_key(
                request,
                override,
                engine=engine,
                generation=generation,
                tenant=tenant_name,
            )
            cached = self.cache.get(key)
        if cached is not None:
            self._m_cache_hits.inc()
            state.cache_hits += 1
            outcome = PDPOutcome.GRANT if cached.granted else PDPOutcome.DENY
            latency = time.perf_counter() - submitted
            self._h_latency.observe(latency)
            response = PDPResponse(
                request=request,
                outcome=outcome,
                granted=cached.granted,
                decision=cached,
                cached=True,
                latency_s=latency,
                request_id=request_id,
                tenant=tenant_name,
                trace_id=trace_ctx.trace_id if trace_ctx is not None else "",
            )
            if traced:
                self._export_cached_trace(cached, request_id, trace_ctx)
            self._observe_response(response)
            return response
        if key is None:
            # The cache could never have answered this (constraints,
            # opaque env source, cache disabled) — not a miss; counting
            # it as one deflates the exported hit rate.
            self._m_cache_uncacheable.inc()
        else:
            self._m_cache_misses.inc()

        loop = asyncio.get_running_loop()
        timeout_s = timeout if timeout is not None else self.config.default_timeout_s
        pending = _Pending(
            request=request,
            env_override=override,
            future=loop.create_future(),
            submitted_at=submitted,
            deadline=loop.time() + timeout_s if timeout_s is not None else None,
            request_id=request_id,
            traced=traced,
            tenant=tenant_name,
            trace_ctx=trace_ctx,
        )
        self._h_queue.observe(float(self._queue.qsize()))
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            return self._shed(pending, "admission queue full")
        return await pending.future

    # ------------------------------------------------------------------
    # Batching internals
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        assert self._queue is not None
        queue = self._queue
        loop = asyncio.get_running_loop()
        max_batch = self.config.max_batch
        max_wait_s = self.config.max_wait_ms / 1000.0
        stopping = False
        while not stopping:
            head = await queue.get()
            if head is _STOP:
                break
            batch: List[_Pending] = [head]  # type: ignore[list-item]
            if max_batch > 1:
                # Gather until max_batch, the deadline, or the queue
                # going momentarily idle — whichever comes first.  The
                # idle check only fires after one scheduling pass
                # (asyncio.sleep(0)) so every producer that is already
                # runnable gets to enqueue; waiting any longer could
                # only collect requests that do not exist yet, which
                # trades real latency for hypothetical batch fill (and
                # deadlocks throughput for closed-loop callers blocked
                # on this very flush).
                flush_at = loop.time() + max_wait_s
                while len(batch) < max_batch:
                    try:
                        item = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        if loop.time() >= flush_at:
                            break
                        await asyncio.sleep(0)
                        try:
                            item = queue.get_nowait()
                        except asyncio.QueueEmpty:
                            break  # idle after a yield: flush now
                    if item is _STOP:
                        stopping = True
                        break
                    batch.append(item)  # type: ignore[arg-type]
            await self._flush(batch)
            if not self._accepting and not self._drain_on_stop:
                # Non-graceful stop: shed the backlog instead of
                # deciding it (the _STOP sentinel is FIFO-last, so
                # waiting for it would drain the queue anyway).
                break
        # Shutdown: decide (drain) or shed whatever is still queued.
        leftovers: List[_Pending] = []
        while True:
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is not _STOP:
                leftovers.append(item)  # type: ignore[arg-type]
        if self._drain_on_stop:
            for start in range(0, len(leftovers), max_batch):
                await self._flush(leftovers[start : start + max_batch])
        else:
            for item in leftovers:
                self._shed(item, "service shutting down")

    async def _flush(self, batch: Sequence[_Pending]) -> None:
        """Triage one micro-batch and decide it, grouped by tenant.

        Deadline triage runs over the whole batch first; survivors are
        grouped by tenant and each group renders through one
        ``decide_batch`` call on *its* tenant's engine — single-tenant
        traffic therefore takes exactly the pre-tenancy path (one
        group, one engine capture, one decide call).
        """
        loop = asyncio.get_running_loop()
        now = loop.time()
        groups: Dict[str, List[_Pending]] = {}
        for item in batch:
            if item.deadline is not None and now > item.deadline:
                self._finish(
                    item,
                    PDPResponse(
                        request=item.request,
                        outcome=PDPOutcome.DENY_TIMEOUT,
                        granted=False,
                        decision=None,
                        detail="deadline expired while queued",
                        latency_s=time.perf_counter() - item.submitted_at,
                        request_id=item.request_id,
                        tenant=item.tenant,
                        trace_id=item.trace_id,
                    ),
                )
                self._m_timeouts.inc()
                continue
            groups.setdefault(item.tenant, []).append(item)
        for tenant, items in groups.items():
            # Capture the group's engine and generation *once*, before
            # any await: a swap/activate racing with this flush must
            # not mix decisions from the old engine with cache entries
            # keyed on the new one, or vice versa.
            resolved = self._resolve_tenant(tenant)
            if resolved is None:
                # The tenant vanished between admission and flush (a
                # store swap-out); answer explicitly, never crash.
                self._m_unknown_tenant.inc()
                for item in items:
                    self._finish(
                        item,
                        PDPResponse(
                            request=item.request,
                            outcome=PDPOutcome.DENY_UNKNOWN_TENANT,
                            granted=False,
                            decision=None,
                            detail=f"unknown tenant {tenant!r}",
                            latency_s=(
                                time.perf_counter() - item.submitted_at
                            ),
                            request_id=item.request_id,
                            tenant=tenant,
                            trace_id=item.trace_id,
                        ),
                    )
                continue
            engine, generation, state = resolved
            await self._flush_group(items, engine, generation, state)

    async def _flush_group(
        self,
        live: List[_Pending],
        engine: MediationEngine,
        generation: int,
        state: _TenantState,
    ) -> None:
        """Decide one same-tenant group and resolve its futures."""
        tenant = state.name
        self._m_batches.inc()
        self._h_batch.observe(float(len(live)))
        # Sampled requests are decided individually with a full
        # pipeline trace; the rest share one decide_batch call.
        plain = [item for item in live if not item.traced]
        traced = [item for item in live if item.traced]
        decisions: Dict[int, Decision] = {}
        try:
            if plain:
                for item, decision in zip(
                    plain,
                    await self._decide(
                        [item.request for item in plain],
                        [item.env_override for item in plain],
                        engine,
                    ),
                ):
                    decisions[id(item)] = decision
            for item in traced:
                decisions[id(item)] = self._decide_traced(item, engine)
        except Exception as error:  # noqa: BLE001 - isolate engine faults
            unresolved = [i for i in live if id(i) not in decisions]
            self._m_errors.inc(len(unresolved))
            for item in unresolved:
                self._finish(
                    item,
                    PDPResponse(
                        request=item.request,
                        outcome=PDPOutcome.ERROR,
                        granted=False,
                        decision=None,
                        detail=f"engine error: {error!r}",
                        latency_s=time.perf_counter() - item.submitted_at,
                        request_id=item.request_id,
                        tenant=tenant,
                        trace_id=item.trace_id,
                    ),
                )
            live = [i for i in live if id(i) in decisions]
        self._m_decided.inc(len(live))
        state.decided += len(live)
        size = len(live)
        for item in live:
            decision = decisions[id(item)]
            # Key recomputed *after* deciding — under the captured
            # engine and generation, so the cached entry is filed under
            # the revision it was actually rendered at, never a policy
            # swapped in mid-flush.  Capacity 0 skips key work here
            # too (the put would be a no-op anyway).
            if self.config.cache_size:
                self.cache.put(
                    self._cache_key(
                        item.request,
                        item.env_override,
                        engine=engine,
                        generation=generation,
                        tenant=tenant,
                    ),
                    decision,
                )
            latency = time.perf_counter() - item.submitted_at
            self._h_latency.observe(latency)
            self._finish(
                item,
                PDPResponse(
                    request=item.request,
                    outcome=PDPOutcome.GRANT if decision.granted else PDPOutcome.DENY,
                    granted=decision.granted,
                    decision=decision,
                    batch_size=size,
                    latency_s=latency,
                    request_id=item.request_id,
                    tenant=tenant,
                    trace_id=item.trace_id,
                ),
            )

    def _decide_traced(
        self, item: _Pending, engine: Optional[MediationEngine] = None
    ) -> Decision:
        """Decide one sampled request with a pipeline trace, export it."""
        if engine is None:
            engine = self.engine
        env = set(item.env_override) if item.env_override is not None else None
        started = time.perf_counter()
        decision = engine.decide(
            item.request, environment_roles=env, trace=True
        )
        duration = time.perf_counter() - started
        trace = decision.trace
        if trace is not None:
            trace.request_id = item.request_id
            ctx = item.trace_ctx
            if ctx is not None:
                # This hop's span: the propagated span id becomes the
                # parent, a fresh id names the PDP's own work.
                trace.trace_id = ctx.trace_id
                trace.span_id = new_span_id()
                trace.parent_span_id = ctx.span_id
                self._collect_span(
                    trace, item, duration_s=duration, cached=False
                )
            sink = self.trace_sink
            if sink is not None:
                sink.offer(trace_to_dict(trace))
        return decision

    def _collect_span(
        self,
        trace: DecisionTrace,
        item: _Pending,
        duration_s: Optional[float],
        cached: bool,
    ) -> None:
        """Retain this hop's span in the bounded collector, so the
        ``trace`` op (and the cluster admin's cross-process join) can
        serve it later."""
        spans = self.spans
        if spans is None or not trace.trace_id:
            return
        spans.add(
            Span(
                trace_id=trace.trace_id,
                span_id=trace.span_id,
                parent_span_id=trace.parent_span_id,
                name="pdp.decide",
                service="pdp",
                start_s=(
                    time.time() - duration_s
                    if duration_s is not None
                    else time.time()
                ),
                duration_s=duration_s,
                annotations={
                    "subject": item.request.subject,
                    "transaction": item.request.transaction,
                    "object": item.request.obj,
                    "granted": trace.granted,
                    "cached": cached,
                    "tenant": item.tenant,
                    "request_id": item.request_id,
                    "mode": trace.mode,
                    "stage_timings_us": trace.stage_timings_us(),
                },
            ).to_dict()
        )

    def _export_cached_trace(
        self,
        decision: Decision,
        request_id: Optional[object],
        trace_ctx: Optional[TraceContext] = None,
    ) -> None:
        """Export a timing-less span for a sampled cache hit.

        A cache hit has no live stages to time, but the sampled stream
        must still carry it — otherwise warm caches would make traces
        vanish exactly when correlation questions get asked.
        """
        sink = self.trace_sink
        spans = self.spans
        if sink is None and (spans is None or trace_ctx is None):
            return
        trace = decision.reconstruct_trace()
        trace.mode = "cached"
        trace.request_id = request_id
        if trace_ctx is not None:
            trace.trace_id = trace_ctx.trace_id
            trace.span_id = new_span_id()
            trace.parent_span_id = trace_ctx.span_id
            if spans is not None:
                spans.add(
                    Span(
                        trace_id=trace.trace_id,
                        span_id=trace.span_id,
                        parent_span_id=trace.parent_span_id,
                        name="pdp.cache_hit",
                        service="pdp",
                        start_s=time.time(),
                        annotations={
                            "subject": decision.request.subject,
                            "transaction": decision.request.transaction,
                            "object": decision.request.obj,
                            "granted": decision.granted,
                            "cached": True,
                            "request_id": request_id,
                        },
                    ).to_dict()
                )
        if sink is not None:
            sink.offer(trace_to_dict(trace))

    async def _decide(
        self,
        requests: Sequence[AccessRequest],
        env_overrides: Sequence[Optional[FrozenSet[str]]],
        engine: Optional[MediationEngine] = None,
    ) -> List[Decision]:
        """Render a batch; overridable to offload to an executor.

        ``engine`` is the snapshot captured at flush start; overrides
        must decide against it (not ``self.engine``) so a concurrent
        :meth:`swap_policy` cannot split a batch across two policies.
        """
        if engine is None:
            engine = self.engine
        if all(env is None for env in env_overrides):
            return engine.decide_batch(requests)
        return engine.decide_batch(
            requests,
            environment_roles=[
                set(env) if env is not None else None for env in env_overrides
            ],
        )

    def _shed(self, item: _Pending, detail: str) -> PDPResponse:
        self._m_shed.inc()
        hub = self.observers
        if hub:
            hub.emit(
                "pdp.shed",
                subject=item.request.subject,
                transaction=item.request.transaction,
                obj=item.request.obj,
                detail=detail,
            )
        response = PDPResponse(
            request=item.request,
            outcome=PDPOutcome.DENY_OVERLOAD,
            granted=False,
            decision=None,
            detail=detail,
            latency_s=time.perf_counter() - item.submitted_at,
            request_id=item.request_id,
            tenant=item.tenant,
            trace_id=item.trace_id,
        )
        self._finish(item, response)
        return response

    def _finish(self, item: _Pending, response: PDPResponse) -> None:
        self._observe_response(response)
        if not item.future.done():
            item.future.set_result(response)

    def _observe_response(self, response: PDPResponse) -> None:
        """Feed the flight recorder, SLO tracker, per-tenant latency
        tallies, and the audit chain — every response, every path
        (cache hit, batch, shed, timeout, error)."""
        self.slo.record_response(
            mediated=response.outcome in MEDIATED_OUTCOMES,
            latency_s=response.latency_s,
        )
        state = self._tenants.get(response.tenant)
        if state is not None:
            state.latency_sum_s += response.latency_s
            state.latency_count += 1
        decision = response.decision
        writer = self.audit_writer
        if writer is not None and response.outcome in MEDIATED_OUTCOMES:
            assert decision is not None
            writer.append(
                {
                    "timestamp": time.time(),
                    "request_id": response.request_id,
                    "trace_id": response.trace_id,
                    "tenant": response.tenant,
                    "subject": response.request.subject,
                    "transaction": response.request.transaction,
                    "object": response.request.obj,
                    "granted": response.granted,
                    "outcome": response.outcome.value,
                    "cached": response.cached,
                    "rationale": response.rationale,
                    "matched_rules": [
                        match.permission.describe()
                        for match in decision.matches
                    ],
                    "subject_roles": sorted(
                        decision.subject_role_confidence
                    ),
                    "environment_roles": sorted(decision.environment_roles),
                    "latency_us": round(response.latency_s * 1e6, 3),
                }
            )
        flight = self.flight
        if flight is None:
            return
        winner = decision.resolution.winner if decision is not None else None
        flight.record(
            subject=response.request.subject,
            transaction=response.request.transaction,
            obj=response.request.obj,
            outcome=response.outcome.value,
            granted=response.granted,
            cached=response.cached,
            request_id=response.request_id,
            trace_id=response.trace_id,
            matched_rule=(
                winner.permission.describe() if winner is not None else None
            ),
            rationale=response.rationale,
            environment_roles=(
                sorted(decision.environment_roles)
                if decision is not None
                else None
            ),
            latency_us=response.latency_s * 1e6,
        )

    # ------------------------------------------------------------------
    # Cache keying
    # ------------------------------------------------------------------
    def _resolve_env_revision(
        self, source: object
    ) -> Optional[Callable[[], int]]:
        """An explicit caller-supplied revision reader, or None.

        When None, :meth:`_env_component` derives the component from
        the engine's *current* environment source at key time — it used
        to be captured here at construction, which meant a source
        attached or replaced on the engine afterwards changed decisions
        without changing cache keys (a stale-serve bug; regression
        tests in ``tests/service/test_revision_coverage.py``).
        """
        if source is None:
            return None
        if callable(source):
            return source  # type: ignore[return-value]
        if not hasattr(source, "revision"):
            raise ServiceError(
                "env_revision must be callable or expose .revision"
            )
        return lambda: source.revision  # type: ignore[attr-defined]

    def _env_component(self, engine: MediationEngine) -> Optional[object]:
        """The environment part of the cache key, or None (uncacheable).

        Resolved against the engine's *live* environment source, with
        an identity-keyed epoch: replacing, attaching, or detaching the
        source bumps :attr:`_env_epoch`, so keys built against the old
        source stop matching even when old and new sources happen to
        carry equal revision numbers.
        """
        reader = self._env_revision
        if reader is not None:
            return ("revision", reader())
        environment = engine.environment
        if environment is not self._env_source:
            self._env_source = environment
            self._env_epoch += 1
        if environment is None:
            return ("none", self._env_epoch)
        if not hasattr(environment, "revision"):
            return None  # opaque source: source-resolved uncacheable
        return (
            "epoch",
            self._env_epoch,
            environment.revision,  # type: ignore[attr-defined]
        )

    @staticmethod
    def _tenant_env_component(engine: MediationEngine) -> Optional[object]:
        """Environment key component for a *non-default* tenant engine.

        Tenant engines alternate through the flush loop, so the
        default tenant's identity-epoch tracking (which bumps on every
        observed source change) would thrash the epoch and destroy
        cache hits.  Tenant engines instead key on the source's own
        revision — store-built engines have no environment source
        (a stable ``("none", 0)``), and an opaque source is simply
        uncacheable, exactly as on the default path.
        """
        environment = engine.environment
        if environment is None:
            return ("none", 0)
        if not hasattr(environment, "revision"):
            return None
        return ("revision", environment.revision)  # type: ignore[attr-defined]

    def _cache_key(
        self,
        request: AccessRequest,
        env_override: Optional[FrozenSet[str]],
        engine: Optional[MediationEngine] = None,
        generation: Optional[int] = None,
        tenant: str = DEFAULT_TENANT,
    ) -> Optional[CacheKey]:
        """The generation- and revision-pinned key, or None (uncacheable).

        ``engine``/``generation`` default to the live ones; the batcher
        passes the pair it captured at flush start so entries are filed
        under the policy that actually rendered them.  ``tenant``
        leads the tuple, so two tenants serving policies with equal
        revisions (a shared template text) can never collide.
        """
        if self.config.cache_size == 0:
            return None
        if engine is None:
            engine = self.engine
        if generation is None:
            generation = self.generation
        if engine.decision_constraints:
            # A constraint may consult state outside the key; mirror
            # the engine's own policy of never caching around them.
            return None
        if env_override is not None:
            env_component: Optional[object] = ("override", env_override)
        elif tenant == DEFAULT_TENANT:
            env_component = self._env_component(engine)
            if env_component is None:
                return None
        else:
            env_component = self._tenant_env_component(engine)
            if env_component is None:
                return None
        return (
            tenant,
            generation,
            engine.policy.decision_revision,
            env_component,
            request.subject,
            request.transaction,
            request.obj,
            request.identity_confidence,
            frozenset(request.role_claims.items()),
            engine.confidence_threshold,
            engine.policy.precedence,
            engine.policy.default_sign,
        )

    # ------------------------------------------------------------------
    # Introspection / live-ops
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Service counters plus the nested cache view.

        Engine-side statistics remain on :meth:`MediationEngine.stats`;
        both publish into the same metrics registry by default.
        """
        data: Dict[str, object] = {
            "running": self.running,
            "uptime_s": round(self.uptime_s, 3),
            "queue_depth": self.queue_depth,
            "max_queue": self.config.max_queue,
            "max_batch": self.config.max_batch,
            "max_wait_ms": self.config.max_wait_ms,
            "requests": self._m_requests.value,
            "decided": self._m_decided.value,
            "batches": self._m_batches.value,
            "cache_hits": self._m_cache_hits.value,
            "cache_misses": self._m_cache_misses.value,
            "cache_uncacheable": self._m_cache_uncacheable.value,
            "cache_hit_rate": round(self.cache.hit_rate, 4),
            "cache_capacity": self.cache.capacity,
            "cache_evictions": self.cache.evictions,
            "shed": self._m_shed.value,
            "timeouts": self._m_timeouts.value,
            "errors": self._m_errors.value,
            "unknown_tenant": self._m_unknown_tenant.value,
            "generation": self.generation,
            "reloads": self._m_reloads.value,
            "cache": self.cache.stats(),
            "trace_sample_rate": self.config.trace_sample_rate,
            "traces_sampled": self.sampler.sampled,
        }
        if self._tenants or self.store is not None:
            data["tenants"] = self.tenants_overview()
        if self.store is not None:
            data["store"] = self.store.stats()
        if self.trace_sink is not None:
            data["trace_sink"] = self.trace_sink.stats()
        if self.spans is not None:
            data["trace_buffer"] = self.spans.stats()
        if self.audit_writer is not None:
            data["audit"] = self.audit_writer.stats()
        if self.flight is not None:
            data["flight"] = self.flight.stats()
        return data

    def metrics_prometheus(self) -> str:
        """The shared metrics registry in Prometheus text format.

        Engine-internal tallies (plain attributes for hot-path speed)
        are synced into the registry first, so one scrape is the whole
        stack: engine, pipeline, cache, PDP, SLOs.
        """
        from repro.obs.export import render_prometheus

        self.engine.stats()  # syncs engine tallies into the registry
        text = render_prometheus(self.metrics)
        tenant_lines = self._tenant_prometheus()
        if tenant_lines:
            text += "\n".join(tenant_lines) + "\n"
        return text

    def _tenant_prometheus(self) -> List[str]:
        """Bounded-cardinality per-tenant series.

        The top-K tenants by request count get their own
        ``tenant="..."`` label; every other tenant folds into one
        ``tenant="__other__"`` bucket.  Label values are escaped, so a
        tenant named ``a"b\\n`` cannot corrupt the exposition.
        """
        states = [s for s in self._tenants.values() if s.requests > 0]
        if not states:
            return []
        states.sort(key=lambda s: (-s.requests, s.name))
        top_k = self.config.tenant_label_topk
        rows: List[Tuple[str, _TenantState]] = [
            (state.name, state) for state in states[:top_k]
        ]
        overflow = states[top_k:]
        if overflow:
            other = _TenantState(name="__other__")
            for state in overflow:
                other.requests += state.requests
                other.cache_hits += state.cache_hits
                other.decided += state.decided
                other.reloads += state.reloads
                other.latency_sum_s += state.latency_sum_s
                other.latency_count += state.latency_count
            rows.append(("__other__", other))
        lines: List[str] = []
        counters = (
            ("pdp.tenant_requests", lambda s: s.requests),
            ("pdp.tenant_cache_hits", lambda s: s.cache_hits),
            ("pdp.tenant_decided", lambda s: s.decided),
            ("pdp.tenant_reloads", lambda s: s.reloads),
        )
        for name, reader in counters:
            metric = prometheus_name(name, "_total")
            lines.append(f"# TYPE {metric} counter")
            for tenant, state in rows:
                labels = render_label_set({"tenant": tenant})
                lines.append(f"{metric}{labels} {float(reader(state))!r}")
        metric = prometheus_name("pdp.tenant_latency_seconds")
        lines.append(f"# TYPE {metric} summary")
        for tenant, state in rows:
            labels = render_label_set({"tenant": tenant})
            lines.append(f"{metric}_sum{labels} {state.latency_sum_s!r}")
            lines.append(
                f"{metric}_count{labels} {float(state.latency_count)!r}"
            )
        return lines

    def metrics_json(self) -> Dict[str, object]:
        """The same exposition as structured JSON."""
        from repro.obs.export import render_json

        self.engine.stats()
        return render_json(self.metrics)

    def health(self) -> Dict[str, object]:
        """Liveness + SLO state — the ``health`` op / ``/health`` body."""
        return {
            "healthy": self.running,
            "running": self.running,
            "uptime_s": round(self.uptime_s, 3),
            "policy": self.engine.policy.name,
            "policy_revision": self.engine.policy.decision_revision,
            "generation": self.generation,
            "queue_depth": self.queue_depth,
            "slo": self.slo.snapshot(),
        }

    def ready(self) -> Dict[str, object]:
        """Readiness: accepting work with admission headroom.

        ``ready`` flips false when the PDP is stopped, draining, or its
        admission queue is saturated (new submits would shed) — the
        signal a load balancer keys on.
        """
        saturated = self.queue_depth >= self.config.max_queue
        return {
            "ready": self.running and self._accepting and not saturated,
            "accepting": self._accepting,
            "queue_depth": self.queue_depth,
            "max_queue": self.config.max_queue,
        }

    def dump(
        self,
        limit: Optional[int] = None,
        since_seq: int = 0,
        subject: Optional[str] = None,
        outcome: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """Flight-recorder entries (oldest first); [] when disabled."""
        if self.flight is None:
            return []
        return self.flight.dump(
            limit=limit, since_seq=since_seq, subject=subject, outcome=outcome
        )

    def find_trace(self, trace_id: str) -> List[Dict[str, object]]:
        """This process's retained spans for ``trace_id`` (maybe []).

        Only spans this PDP emitted — the cluster admin joins these
        with the router's own spans for the cross-process waterfall.
        """
        if self.spans is None:
            return []
        return self.spans.get(trace_id)

    def recent_traces(self, limit: Optional[int] = None) -> List[str]:
        """Retained trace ids, newest first; [] when buffering is off."""
        if self.spans is None:
            return []
        return self.spans.trace_ids(limit)


@dataclass
class PDPClient:
    """In-process client: the ergonomic face of :class:`PolicyDecisionPoint`.

    Mirrors :meth:`MediationEngine.check`/``decide`` so call sites can
    swap direct mediation for the served path with one line —
    ``examples/served_home.py`` replays §5.1 through this.
    """

    pdp: PolicyDecisionPoint
    #: Environment roles applied to every request when the call site
    #: does not pass its own (replay streams with a fixed context).
    default_environment_roles: Optional[Set[str]] = field(default=None)

    def __post_init__(self) -> None:
        # Sequential correlation ids, mirroring the wire client's, so
        # in-process traffic is attributable the same way TCP traffic
        # is (loadgen verification errors name a request id either way).
        self._ids = itertools.count(1)

    async def decide(
        self,
        request: AccessRequest,
        environment_roles: Optional[Set[str]] = None,
        timeout: Optional[float] = None,
        request_id: Optional[object] = None,
        tenant: Optional[str] = None,
        trace: Optional[TraceContext] = None,
    ) -> PDPResponse:
        env = (
            environment_roles
            if environment_roles is not None
            else self.default_environment_roles
        )
        if request_id is None:
            request_id = next(self._ids)
        return await self.pdp.submit(
            request,
            environment_roles=env,
            timeout=timeout,
            request_id=request_id,
            tenant=tenant,
            trace_ctx=trace,
        )

    async def check(
        self,
        subject: str,
        transaction: str,
        obj: str,
        environment_roles: Optional[Set[str]] = None,
        timeout: Optional[float] = None,
        tenant: Optional[str] = None,
    ) -> bool:
        request = AccessRequest(transaction=transaction, obj=obj, subject=subject)
        response = await self.decide(
            request,
            environment_roles=environment_roles,
            timeout=timeout,
            tenant=tenant,
        )
        return response.granted
