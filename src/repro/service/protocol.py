"""Newline-delimited JSON wire protocol for the PDP.

One JSON object per line, UTF-8, ``\\n`` terminated — trivially
debuggable with ``nc`` and line-oriented tools, no framing code, and
every mainstream language can speak it.

Decision request::

    {"id": 7, "subject": "alice", "transaction": "watch",
     "object": "livingroom/tv", "env": ["weekday-free-time"],
     "identity_confidence": 1.0, "role_claims": {},
     "timeout_ms": 250}

``env`` is optional: absent/null resolves the environment through the
server's environment source at decision time; a list pins the
directly-active roles explicitly (replay / what-if traffic).

Decision response::

    {"id": 7, "outcome": "grant", "granted": true, "cached": false,
     "batch_size": 12, "latency_us": 183.4, "rationale": "..."}

Control messages use ``op`` instead of a request body: ``{"op":
"ping"}`` → ``{"op": "pong"}``; ``{"op": "stats"}`` → ``{"op":
"stats", "stats": {...}}``.  The live-ops suite (PR 4) rides the same
form: ``{"op": "metrics"}`` → Prometheus text + JSON snapshot;
``{"op": "health"}`` / ``{"op": "ready"}`` → liveness/readiness
bodies; ``{"op": "dump", "limit": 20, "since_seq": 0, "subject":
..., "outcome": ...}`` → flight-recorder entries.  Policy
administration (PR 5) adds ``{"op": "reload", "policy": "<DSL or
serialized-JSON text>", "actor": "...", "dry_run": false}`` →
``{"op": "reload", "accepted": ..., "record": {...}}`` where
``record`` is the audited :class:`~repro.policy.admin.ReloadRecord`
(who, when, diff summary, lint findings, rejection reason).  The
policy text rides the request line, so it shares the
``MAX_LINE_BYTES`` cap — ship larger policies by file path through
``serve --policy-file --watch`` instead.  A malformed line gets
``{"error": ...}`` (with the request's ``id`` echoed when one could
be parsed) — the connection stays usable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Optional, Tuple

from repro.core.decision import AccessRequest
from repro.exceptions import GrbacError, ServiceError
from repro.service.pdp import PDPOutcome, PDPResponse

#: Hard cap on one wire line; longer lines are a protocol error, not a
#: buffer-growth vector.
MAX_LINE_BYTES = 64 * 1024

#: Cap for *op responses* read by clients: a full metrics exposition
#: (Prometheus text + JSON snapshot on one line) legitimately outgrows
#: a request line, and the server is the trusted party on that path.
MAX_OP_LINE_BYTES = 4 * 1024 * 1024


def dumps_line(payload: Dict[str, Any]) -> bytes:
    """Serialize one protocol message to a wire line."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def parse_line(
    line: bytes, max_bytes: int = MAX_LINE_BYTES
) -> Dict[str, Any]:
    """Parse one wire line into a message dict.

    :raises ServiceError: on malformed JSON or a non-object payload.
    """
    if len(line) > max_bytes:
        raise ServiceError(f"wire line exceeds {max_bytes} bytes")
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceError(f"malformed wire line: {error}") from None
    if not isinstance(payload, dict):
        raise ServiceError("wire message must be a JSON object")
    return payload


def decode_request(
    payload: Dict[str, Any]
) -> Tuple[Any, AccessRequest, Optional[FrozenSet[str]], Optional[float]]:
    """Decode a decision-request message.

    :returns: ``(id, request, env_override, timeout_s)``.
    :raises ServiceError: when required fields are missing/invalid.
    """
    request_id = payload.get("id")
    transaction = payload.get("transaction")
    obj = payload.get("object")
    if not isinstance(transaction, str) or not isinstance(obj, str):
        raise ServiceError("request needs string 'transaction' and 'object'")
    subject = payload.get("subject")
    if subject is not None and not isinstance(subject, str):
        raise ServiceError("'subject' must be a string or null")
    role_claims = payload.get("role_claims") or {}
    if not isinstance(role_claims, dict):
        raise ServiceError("'role_claims' must be an object")
    confidence = payload.get("identity_confidence", 1.0)
    if not isinstance(confidence, (int, float)):
        raise ServiceError("'identity_confidence' must be a number")
    env = payload.get("env")
    if env is not None:
        if not isinstance(env, list) or not all(
            isinstance(name, str) for name in env
        ):
            raise ServiceError("'env' must be a list of role names or null")
        env_override: Optional[FrozenSet[str]] = frozenset(env)
    else:
        env_override = None
    timeout_ms = payload.get("timeout_ms")
    if timeout_ms is not None and not isinstance(timeout_ms, (int, float)):
        raise ServiceError("'timeout_ms' must be a number or null")
    try:
        request = AccessRequest(
            transaction=transaction,
            obj=obj,
            subject=subject,
            role_claims={str(k): float(v) for k, v in role_claims.items()},
            identity_confidence=float(confidence),
        )
    except GrbacError as error:
        raise ServiceError(f"invalid request: {error}") from None
    timeout_s = float(timeout_ms) / 1000.0 if timeout_ms is not None else None
    return request_id, request, env_override, timeout_s


def encode_request(
    request: AccessRequest,
    request_id: Any,
    env: Optional[FrozenSet[str]] = None,
    timeout_ms: Optional[float] = None,
) -> Dict[str, Any]:
    """Build the wire message for one decision request."""
    payload: Dict[str, Any] = {
        "id": request_id,
        "subject": request.subject,
        "transaction": request.transaction,
        "object": request.obj,
    }
    if request.role_claims:
        payload["role_claims"] = dict(request.role_claims)
    if request.identity_confidence != 1.0:
        payload["identity_confidence"] = request.identity_confidence
    if env is not None:
        payload["env"] = sorted(env)
    if timeout_ms is not None:
        payload["timeout_ms"] = timeout_ms
    return payload


def encode_response(request_id: Any, response: PDPResponse) -> Dict[str, Any]:
    """Build the wire message for one PDP response."""
    return {
        "id": request_id,
        "outcome": response.outcome.value,
        "granted": response.granted,
        "cached": response.cached,
        "batch_size": response.batch_size,
        "latency_us": round(response.latency_s * 1e6, 1),
        "rationale": response.rationale,
    }


@dataclass(frozen=True)
class WireResponse:
    """A decoded decision response, as seen by a remote client."""

    id: Any
    outcome: PDPOutcome
    granted: bool
    cached: bool
    batch_size: int
    latency_us: float
    rationale: str

    @property
    def request_id(self) -> Any:
        """The wire ``id``, under the name the in-process
        :class:`~repro.service.pdp.PDPResponse` uses — call sites that
        attribute answers to requests work against either client."""
        return self.id


def decode_response(payload: Dict[str, Any]) -> WireResponse:
    """Decode a decision-response message.

    :raises ServiceError: on missing/unknown fields (including server-
        side ``{"error": ...}`` reports, surfaced as exceptions).
    """
    if "error" in payload:
        raise ServiceError(f"server rejected request: {payload['error']}")
    try:
        outcome = PDPOutcome(payload["outcome"])
    except (KeyError, ValueError):
        raise ServiceError(f"unknown response outcome in {payload!r}") from None
    return WireResponse(
        id=payload.get("id"),
        outcome=outcome,
        granted=bool(payload.get("granted", False)),
        cached=bool(payload.get("cached", False)),
        batch_size=int(payload.get("batch_size", 0)),
        latency_us=float(payload.get("latency_us", 0.0)),
        rationale=str(payload.get("rationale", "")),
    )
