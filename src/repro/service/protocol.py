"""Newline-delimited JSON wire protocol for the PDP.

One JSON object per line, UTF-8, ``\\n`` terminated — trivially
debuggable with ``nc`` and line-oriented tools, no framing code, and
every mainstream language can speak it.

Decision request::

    {"id": 7, "subject": "alice", "transaction": "watch",
     "object": "livingroom/tv", "env": ["weekday-free-time"],
     "identity_confidence": 1.0, "role_claims": {},
     "timeout_ms": 250,
     "trace": "9f86d081884c7d65-4355a46b19d348dc-01"}

``env`` is optional: absent/null resolves the environment through the
server's environment source at decision time; a list pins the
directly-active roles explicitly (replay / what-if traffic).

``trace`` is optional distributed-trace context in the compact
``<trace_id>-<parent_span_id>-<sampled>`` form of
:class:`~repro.obs.trace.TraceContext` — absent on untraced traffic,
so pre-tracing wire bytes are unchanged.  The shard router originates
or rewrites it per hop; the server threads it into the decision's
exported spans, flight-recorder entry, and audit record.

Decision response::

    {"id": 7, "outcome": "grant", "granted": true, "cached": false,
     "batch_size": 12, "latency_us": 183.4, "rationale": "..."}

Control messages use ``op`` instead of a request body: ``{"op":
"ping"}`` → ``{"op": "pong"}``; ``{"op": "stats"}`` → ``{"op":
"stats", "stats": {...}}``.  The live-ops suite (PR 4) rides the same
form: ``{"op": "metrics"}`` → Prometheus text + JSON snapshot;
``{"op": "health"}`` / ``{"op": "ready"}`` → liveness/readiness
bodies; ``{"op": "dump", "limit": 20, "since_seq": 0, "subject":
..., "outcome": ...}`` → flight-recorder entries.  Policy
administration (PR 5) adds ``{"op": "reload", "policy": "<DSL or
serialized-JSON text>", "actor": "...", "dry_run": false}`` →
``{"op": "reload", "accepted": ..., "record": {...}}`` where
``record`` is the audited :class:`~repro.policy.admin.ReloadRecord`
(who, when, diff summary, lint findings, rejection reason).  The
policy text rides the request line, so it shares the
``MAX_LINE_BYTES`` cap — ship larger policies by file path through
``serve --policy-file --watch`` instead.  A malformed line gets
``{"error": ...}`` (with the request's ``id`` echoed when one could
be parsed) — the connection stays usable.

Beside NDJSON, hot-path decision traffic can ride the length-prefixed
*binary* framing defined in the second half of this module (PR 6):
``{"op": "intern"}`` hands the client integer id tables, after which
requests and responses are fixed-layout struct frames — see the
"Binary framing" section below for the exact layout and staleness
contract.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.core.decision import AccessRequest
from repro.exceptions import GrbacError, ServiceError
from repro.obs.trace import TraceContext
from repro.service.pdp import DEFAULT_TENANT, PDPOutcome, PDPResponse

#: Hard cap on one wire line; longer lines are a protocol error, not a
#: buffer-growth vector.
MAX_LINE_BYTES = 64 * 1024

#: Cap for *op responses* read by clients: a full metrics exposition
#: (Prometheus text + JSON snapshot on one line) legitimately outgrows
#: a request line, and the server is the trusted party on that path.
MAX_OP_LINE_BYTES = 4 * 1024 * 1024


def dumps_line(payload: Dict[str, Any]) -> bytes:
    """Serialize one protocol message to a wire line."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def parse_line(
    line: bytes, max_bytes: int = MAX_LINE_BYTES
) -> Dict[str, Any]:
    """Parse one wire line into a message dict.

    :raises ServiceError: on malformed JSON or a non-object payload.
    """
    if len(line) > max_bytes:
        raise ServiceError(f"wire line exceeds {max_bytes} bytes")
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceError(f"malformed wire line: {error}") from None
    if not isinstance(payload, dict):
        raise ServiceError("wire message must be a JSON object")
    return payload


def decode_request(
    payload: Dict[str, Any]
) -> Tuple[Any, AccessRequest, Optional[FrozenSet[str]], Optional[float]]:
    """Decode a decision-request message.

    :returns: ``(id, request, env_override, timeout_s)``.
    :raises ServiceError: when required fields are missing/invalid.
    """
    request_id = payload.get("id")
    transaction = payload.get("transaction")
    obj = payload.get("object")
    if not isinstance(transaction, str) or not isinstance(obj, str):
        raise ServiceError("request needs string 'transaction' and 'object'")
    subject = payload.get("subject")
    if subject is not None and not isinstance(subject, str):
        raise ServiceError("'subject' must be a string or null")
    role_claims = payload.get("role_claims") or {}
    if not isinstance(role_claims, dict):
        raise ServiceError("'role_claims' must be an object")
    confidence = payload.get("identity_confidence", 1.0)
    if not isinstance(confidence, (int, float)):
        raise ServiceError("'identity_confidence' must be a number")
    env = payload.get("env")
    if env is not None:
        if not isinstance(env, list) or not all(
            isinstance(name, str) for name in env
        ):
            raise ServiceError("'env' must be a list of role names or null")
        env_override: Optional[FrozenSet[str]] = frozenset(env)
    else:
        env_override = None
    timeout_ms = payload.get("timeout_ms")
    if timeout_ms is not None and not isinstance(timeout_ms, (int, float)):
        raise ServiceError("'timeout_ms' must be a number or null")
    try:
        request = AccessRequest(
            transaction=transaction,
            obj=obj,
            subject=subject,
            role_claims={str(k): float(v) for k, v in role_claims.items()},
            identity_confidence=float(confidence),
        )
    except GrbacError as error:
        raise ServiceError(f"invalid request: {error}") from None
    timeout_s = float(timeout_ms) / 1000.0 if timeout_ms is not None else None
    return request_id, request, env_override, timeout_s


def decode_tenant(payload: Dict[str, Any]) -> Optional[str]:
    """The optional ``tenant`` field of a decision request.

    Kept beside (not inside) :func:`decode_request` so that function's
    4-tuple shape — and every single-tenant call site built on it —
    stays byte-for-byte compatible.  ``None`` means "default tenant".

    :raises ServiceError: when present but not a non-empty string.
    """
    tenant = payload.get("tenant")
    if tenant is None:
        return None
    if not isinstance(tenant, str) or not tenant:
        raise ServiceError("'tenant' must be a non-empty string or absent")
    return tenant


def decode_subscribe(payload: Dict[str, Any]) -> bool:
    """The optional ``subscribe`` field of a decision request.

    Kept beside (not inside) :func:`decode_request` for the same
    reason as :func:`decode_tenant`: the 4-tuple call sites stay
    untouched, and only continuous-authorization servers pay for the
    lookup.  ``True`` asks the server to keep watching the grant — a
    later environment-role flip that withdraws it is pushed to the
    connection as an unsolicited ``{"op": "revoke"}`` message instead
    of waiting for the client to re-ask (§4.2.2's videophone hangup).

    :raises ServiceError: when present but not a boolean.
    """
    subscribe = payload.get("subscribe")
    if subscribe is None:
        return False
    if not isinstance(subscribe, bool):
        raise ServiceError("'subscribe' must be a boolean or absent")
    return subscribe


def decode_trace_context(payload: Dict[str, Any]) -> Optional[TraceContext]:
    """The optional ``trace`` field of a decision request.

    Kept beside (not inside) :func:`decode_request` for the same
    reason as :func:`decode_tenant`: the 4-tuple call sites stay
    untouched, and only trace-aware layers pay for the parse.

    :raises ServiceError: when present but not a well-formed compact
        trace context.
    """
    wire = payload.get("trace")
    if wire is None:
        return None
    if not isinstance(wire, str):
        raise ServiceError("'trace' must be a string or absent")
    try:
        return TraceContext.parse(wire)
    except ValueError as error:
        raise ServiceError(str(error)) from None


def encode_request(
    request: AccessRequest,
    request_id: Any,
    env: Optional[FrozenSet[str]] = None,
    timeout_ms: Optional[float] = None,
    tenant: Optional[str] = None,
    trace: Optional[TraceContext] = None,
    subscribe: bool = False,
) -> Dict[str, Any]:
    """Build the wire message for one decision request.

    ``tenant=None`` produces exactly the pre-tenancy message — the
    field rides the wire only when a caller names a tenant.  Likewise
    ``trace=None`` (untraced) and ``subscribe=False`` add nothing.
    """
    payload: Dict[str, Any] = {
        "id": request_id,
        "subject": request.subject,
        "transaction": request.transaction,
        "object": request.obj,
    }
    if request.role_claims:
        payload["role_claims"] = dict(request.role_claims)
    if request.identity_confidence != 1.0:
        payload["identity_confidence"] = request.identity_confidence
    if env is not None:
        payload["env"] = sorted(env)
    if timeout_ms is not None:
        payload["timeout_ms"] = timeout_ms
    if tenant is not None:
        payload["tenant"] = tenant
    if trace is not None:
        payload["trace"] = trace.to_wire()
    if subscribe:
        payload["subscribe"] = True
    return payload


def encode_response(request_id: Any, response: PDPResponse) -> Dict[str, Any]:
    """Build the wire message for one PDP response.

    Default-tenant responses are byte-identical to the pre-tenancy
    form; only tenant-routed answers carry the echoed ``tenant``.
    """
    payload = {
        "id": request_id,
        "outcome": response.outcome.value,
        "granted": response.granted,
        "cached": response.cached,
        "batch_size": response.batch_size,
        "latency_us": round(response.latency_s * 1e6, 1),
        "rationale": response.rationale,
    }
    if response.tenant != DEFAULT_TENANT:
        payload["tenant"] = response.tenant
    if response.trace_id:
        payload["trace_id"] = response.trace_id
    return payload


@dataclass(frozen=True)
class WireResponse:
    """A decoded decision response, as seen by a remote client."""

    id: Any
    outcome: PDPOutcome
    granted: bool
    cached: bool
    batch_size: int
    latency_us: float
    rationale: str
    #: Tenant echoed by the server; ``None`` on default-tenant answers
    #: (whose wire form never carries the field) and on the binary
    #: lane, where the caller already knows what it asked for.
    tenant: Optional[str] = None
    #: Trace id echoed by the server on sampled NDJSON answers (empty
    #: when the decision was untraced, and always on the binary lane —
    #: a binary caller that originated the context already knows it).
    trace_id: str = ""

    @property
    def request_id(self) -> Any:
        """The wire ``id``, under the name the in-process
        :class:`~repro.service.pdp.PDPResponse` uses — call sites that
        attribute answers to requests work against either client."""
        return self.id


def decode_response(payload: Dict[str, Any]) -> WireResponse:
    """Decode a decision-response message.

    :raises ServiceError: on missing/unknown fields (including server-
        side ``{"error": ...}`` reports, surfaced as exceptions).
    """
    if "error" in payload:
        raise ServiceError(f"server rejected request: {payload['error']}")
    try:
        outcome = PDPOutcome(payload["outcome"])
    except (KeyError, ValueError):
        raise ServiceError(f"unknown response outcome in {payload!r}") from None
    tenant = payload.get("tenant")
    return WireResponse(
        id=payload.get("id"),
        outcome=outcome,
        granted=bool(payload.get("granted", False)),
        cached=bool(payload.get("cached", False)),
        batch_size=int(payload.get("batch_size", 0)),
        latency_us=float(payload.get("latency_us", 0.0)),
        rationale=str(payload.get("rationale", "")),
        tenant=tenant if isinstance(tenant, str) else None,
        trace_id=str(payload.get("trace_id", "")),
    )


@dataclass(frozen=True)
class WireRevocation:
    """An unsolicited grant withdrawal pushed by the server (§4.2.2).

    Identifies the grant by the wire ``id`` of the decision request it
    answered, plus the request triple for callers that did not keep
    their own ledger.  ``roles`` names the environment roles whose
    deactivation withdrew the grant; ``ts`` is the server's wall clock
    (``time.time()``) at the flip, so a subscriber can measure
    flip-to-delivery latency without a round trip.
    """

    id: Any
    subject: Optional[str]
    transaction: str
    obj: str
    roles: Tuple[str, ...]
    reason: str
    ts: float


def encode_revocation(revocation: WireRevocation) -> Dict[str, Any]:
    """Build the NDJSON ``{"op": "revoke"}`` push message."""
    payload: Dict[str, Any] = {
        "op": "revoke",
        "id": revocation.id,
        "subject": revocation.subject,
        "transaction": revocation.transaction,
        "object": revocation.obj,
        "roles": list(revocation.roles),
        "reason": revocation.reason,
        "ts": revocation.ts,
    }
    return payload


def decode_revocation(payload: Dict[str, Any]) -> WireRevocation:
    """Decode an ``{"op": "revoke"}`` push message.

    :raises ServiceError: on missing/invalid fields.
    """
    transaction = payload.get("transaction")
    obj = payload.get("object")
    if not isinstance(transaction, str) or not isinstance(obj, str):
        raise ServiceError("revoke needs string 'transaction' and 'object'")
    subject = payload.get("subject")
    if subject is not None and not isinstance(subject, str):
        raise ServiceError("revoke 'subject' must be a string or null")
    roles = payload.get("roles")
    if not isinstance(roles, list) or not all(
        isinstance(name, str) for name in roles
    ):
        raise ServiceError("revoke 'roles' must be a list of role names")
    ts = payload.get("ts", 0.0)
    if not isinstance(ts, (int, float)):
        raise ServiceError("revoke 'ts' must be a number")
    return WireRevocation(
        id=payload.get("id"),
        subject=subject,
        transaction=transaction,
        obj=obj,
        roles=tuple(roles),
        reason=str(payload.get("reason", "")),
        ts=float(ts),
    )


# ======================================================================
# Binary framing — the interned-ID fast lane
# ======================================================================
# Negotiated per *message*, not per connection: every binary frame
# starts with a magic byte (0xB1) that can never begin a JSON line, so
# a server peeks one byte and routes — NDJSON and binary clients (and
# even mixed messages from one client) coexist on one listener.
#
# Frame layout (network byte order throughout)::
#
#     +------+------+----------+-----------------+
#     | 0xB1 | kind | length:4 |  body (length)  |
#     +------+------+----------+-----------------+
#
# ``kind`` is KIND_REQUEST / KIND_RESPONSE / KIND_ERROR; ``length``
# counts body bytes only and is capped at MAX_FRAME_BYTES (the NDJSON
# line cap — same buffer-growth argument).
#
# Request body (fixed ``!IiiidB`` + optional env ids + tenant +
# trace)::
#
#     id:4  subject:4  transaction:4  object:4  confidence:8  flags:1
#     [env_count:2  env_id:2 ...]         (only when flags bit 0 set)
#     [tenant_len:1  tenant_utf8 ...]     (only when flags bit 1 set)
#     [trace_id:8  span_id:8  sampled:1]  (only when flags bit 2 set)
#
# ``flags`` is a bitfield (it was a 0/1 env marker pre-tenancy, so
# tenantless frames are byte-identical to the old layout): bit 0 =
# explicit env override present, bit 1 = tenant name present, bit 2 =
# trace context present.  The tenant rides as raw UTF-8
# (length-prefixed, <= 64 bytes by the store's name rule) rather than
# an interned id — intern tables are per-tenant-policy, so the tenant
# name must be readable *before* choosing a table.  The trace segment
# is the binary form of :class:`~repro.obs.trace.TraceContext` (two
# raw 64-bit ids plus the sampled flag) and is always the *last*
# segment, so a router can splice it onto a frame without decoding
# names; untagged frames stay byte-identical to the PR 7 layout.
#
# Entity fields carry *interned ids* from the ``{"op": "intern"}``
# handshake (below), so the hot path ships 25–40 bytes of integers and
# the server never hashes a name.  ``subject == -1`` means "no
# subject".  Requests that need strings anyway — role claims, names
# minted after the handshake, per-request timeouts — simply go as
# NDJSON on the same connection; the binary lane is an accelerator,
# not a replacement.
#
# Response body (fixed ``!IBBBId`` + UTF-8 rationale)::
#
#     id:4  outcome:1  granted:1  cached:1  batch_size:4  latency_us:8
#     rationale...
#
# Error body: ``id:4`` (0xFFFFFFFF when no id could be parsed) +
# UTF-8 message.
#
# The intern handshake is an NDJSON op: ``{"op": "intern"}`` returns
# ``{"op": "intern", "revision": N, "tables": {"subjects": [...],
# "objects": [...], "transactions": [...], "environment_roles":
# [...]}}`` — each list's index is the entity's id.  Tables are pure
# name<->integer codecs, NOT authorization state: a client holding
# stale tables decodes to the same *names* the server handed out, and
# an id minted for a since-deleted entity decodes to a name that then
# fails mediation exactly as the NDJSON form would.

#: First byte of every binary frame.  0xB1 is not valid ASCII/UTF-8
#: JSON start, so one-byte peek disambiguates the wire format.
BINARY_MAGIC = 0xB1

KIND_REQUEST = 1
KIND_RESPONSE = 2
KIND_ERROR = 3
#: Unsolicited server→client grant withdrawal (continuous
#: authorization).  Body: ``id:4  subject:4  transaction:4  object:4
#: ts:8  role_count:2  role_id:2...  reason_utf8...`` — the leading
#: ``id:4`` is the wire id the grant was issued under, so
#: :func:`peek_binary_id` works and a router relays by session without
#: decoding; entity/role fields are interned ids; ``ts`` is the
#: server's wall clock at the environment flip (revocation-latency
#: measurement).
KIND_REVOKE = 4

#: Full frame header: magic, kind, body length.
FRAME_HEADER = struct.Struct("!BBI")
#: Header remainder after the peeked magic byte (kind, body length).
FRAME_TAIL = struct.Struct("!BI")

#: Body-size cap, mirroring the NDJSON line cap.
MAX_FRAME_BYTES = MAX_LINE_BYTES

#: Wire id meaning "no request id" in a KIND_ERROR frame.
NO_REQUEST_ID = 0xFFFFFFFF

_REQUEST_FIXED = struct.Struct("!IiiidB")
_RESPONSE_FIXED = struct.Struct("!IBBBId")
_ENV_COUNT = struct.Struct("!H")

#: PDPOutcome <-> one-byte wire code.
_OUTCOME_CODES = {
    PDPOutcome.GRANT: 0,
    PDPOutcome.DENY: 1,
    PDPOutcome.DENY_OVERLOAD: 2,
    PDPOutcome.DENY_TIMEOUT: 3,
    PDPOutcome.ERROR: 4,
    PDPOutcome.DENY_UNKNOWN_TENANT: 5,
    PDPOutcome.DENY_UNAVAILABLE: 6,
}
_CODE_OUTCOMES = {code: outcome for outcome, code in _OUTCOME_CODES.items()}


class InternTables:
    """Per-connection name<->id codec behind the binary request lane.

    Ids are list indices: ``tables.subjects[i]`` is the name interned
    as subject id ``i``.  Built server-side from the live policy on
    each ``{"op": "intern"}`` and shipped to the client as plain name
    lists; both ends derive the reverse maps locally.
    """

    __slots__ = (
        "revision",
        "subjects",
        "objects",
        "transactions",
        "environment_roles",
        "_subject_ids",
        "_object_ids",
        "_transaction_ids",
        "_environment_ids",
    )

    def __init__(
        self,
        subjects: List[str],
        objects: List[str],
        transactions: List[str],
        environment_roles: List[str],
        revision: int = 0,
    ) -> None:
        self.revision = revision
        self.subjects = list(subjects)
        self.objects = list(objects)
        self.transactions = list(transactions)
        self.environment_roles = list(environment_roles)
        self._subject_ids = {name: i for i, name in enumerate(self.subjects)}
        self._object_ids = {name: i for i, name in enumerate(self.objects)}
        self._transaction_ids = {
            name: i for i, name in enumerate(self.transactions)
        }
        self._environment_ids = {
            name: i for i, name in enumerate(self.environment_roles)
        }

    @classmethod
    def from_policy(cls, policy) -> "InternTables":
        """Snapshot ``policy``'s entity names into fresh tables."""
        return cls(
            subjects=sorted(s.name for s in policy.subjects()),
            objects=sorted(o.name for o in policy.objects()),
            transactions=sorted(t.name for t in policy.transactions()),
            environment_roles=sorted(
                r.name for r in policy.environment_roles.roles()
            ),
            revision=policy.decision_revision,
        )

    def to_payload(self) -> Dict[str, Any]:
        """The ``{"op": "intern"}`` response body."""
        return {
            "op": "intern",
            "revision": self.revision,
            "tables": {
                "subjects": self.subjects,
                "objects": self.objects,
                "transactions": self.transactions,
                "environment_roles": self.environment_roles,
            },
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "InternTables":
        """Rebuild client-side tables from an intern response."""
        tables = payload.get("tables")
        if not isinstance(tables, dict):
            raise ServiceError(f"malformed intern response: {payload!r}")
        try:
            return cls(
                subjects=[str(n) for n in tables["subjects"]],
                objects=[str(n) for n in tables["objects"]],
                transactions=[str(n) for n in tables["transactions"]],
                environment_roles=[
                    str(n) for n in tables["environment_roles"]
                ],
                revision=int(payload.get("revision", 0)),
            )
        except (KeyError, TypeError) as error:
            raise ServiceError(
                f"malformed intern response: {error}"
            ) from None


def frame(kind: int, body: bytes) -> bytes:
    """Wrap ``body`` in a binary frame header."""
    if len(body) > MAX_FRAME_BYTES:
        raise ServiceError(f"binary frame exceeds {MAX_FRAME_BYTES} bytes")
    return FRAME_HEADER.pack(BINARY_MAGIC, kind, len(body)) + body


#: ``flags`` bits in the binary request body.
_FLAG_ENV = 0x01
_FLAG_TENANT = 0x02
_FLAG_TRACE = 0x04
#: Bit 3 = subscribe to continuous authorization for this grant.  A
#: pure flag — no body segment — so the trace segment stays last and
#: pre-subscription decoders (which never mask this bit) see a frame
#: whose walked offsets still land exactly on the body end.
_FLAG_SUBSCRIBE = 0x08

#: Fixed head of a KIND_REVOKE body (id, subject, transaction, object,
#: flip timestamp) — entity fields are interned ids, ``subject`` may
#: be -1, mirroring the request layout.
_REVOKE_FIXED = struct.Struct("!Iiiid")

#: Trace-context segment: raw trace id, raw span id, sampled flag.
_TRACE_SEGMENT = struct.Struct("!8s8sB")

#: Byte offset of ``flags`` inside a request body (end of the fixed
#: header) — what lets a router flip the trace bit without a decode.
_FLAGS_OFFSET = _REQUEST_FIXED.size - 1


def _pack_trace(trace: TraceContext) -> bytes:
    try:
        return _TRACE_SEGMENT.pack(
            bytes.fromhex(trace.trace_id),
            bytes.fromhex(trace.span_id),
            1 if trace.sampled else 0,
        )
    except (ValueError, struct.error):
        raise ServiceError(
            f"trace ids must be 16 hex chars: {trace.trace_id!r}/"
            f"{trace.span_id!r}"
        ) from None


def _unpack_trace(body: bytes, offset: int) -> Tuple[TraceContext, int]:
    try:
        trace_raw, span_raw, sampled = _TRACE_SEGMENT.unpack_from(body, offset)
    except struct.error as error:
        raise ServiceError(
            f"truncated binary trace segment: {error}"
        ) from None
    return (
        TraceContext(trace_raw.hex(), span_raw.hex(), bool(sampled)),
        offset + _TRACE_SEGMENT.size,
    )


def encode_binary_request(
    tables: InternTables,
    request: AccessRequest,
    request_id: int,
    env: Optional[FrozenSet[str]] = None,
    tenant: Optional[str] = None,
    trace: Optional[TraceContext] = None,
    subscribe: bool = False,
) -> bytes:
    """Encode one decision request as a binary frame.

    :raises ServiceError: when the request cannot ride the binary lane
        — uninterned names, role claims, a non-u32 id, or a tenant
        name over 255 UTF-8 bytes.  Callers (the remote client) catch
        this and fall back to NDJSON.
    """
    if request.role_claims:
        raise ServiceError("role claims require the NDJSON lane")
    if not isinstance(request_id, int) or not 0 <= request_id < NO_REQUEST_ID:
        raise ServiceError("binary lane needs an integer id below 2^32-1")
    tenant_bytes = b""
    if tenant is not None:
        tenant_bytes = tenant.encode("utf-8")
        if not 1 <= len(tenant_bytes) <= 255:
            raise ServiceError("tenant name must be 1-255 UTF-8 bytes")
    try:
        subject_id = (
            -1
            if request.subject is None
            else tables._subject_ids[request.subject]
        )
        transaction_id = tables._transaction_ids[request.transaction]
        object_id = tables._object_ids[request.obj]
        if env is not None:
            env_ids = [tables._environment_ids[name] for name in sorted(env)]
    except KeyError as error:
        raise ServiceError(f"name not interned: {error}") from None
    flags = (
        (0 if env is None else _FLAG_ENV)
        | (0 if tenant is None else _FLAG_TENANT)
        | (0 if trace is None else _FLAG_TRACE)
        | (_FLAG_SUBSCRIBE if subscribe else 0)
    )
    body = _REQUEST_FIXED.pack(
        request_id,
        subject_id,
        transaction_id,
        object_id,
        request.identity_confidence,
        flags,
    )
    if env is not None:
        body += _ENV_COUNT.pack(len(env_ids))
        body += struct.pack(f"!{len(env_ids)}H", *env_ids)
    if tenant is not None:
        body += bytes([len(tenant_bytes)]) + tenant_bytes
    if trace is not None:
        body += _pack_trace(trace)
    return frame(KIND_REQUEST, body)


def decode_binary_request_ex(
    tables: Optional[InternTables], body: bytes
) -> Tuple[
    Any,
    AccessRequest,
    Optional[FrozenSet[str]],
    Optional[float],
    Optional[str],
    Optional[TraceContext],
]:
    """Decode a KIND_REQUEST body, tenant and trace context included.

    :returns: ``(id, request, env_override, timeout_s, tenant,
        trace)`` — :func:`decode_request`'s shape plus the optional
        tenant name and propagated trace context.
    :raises ServiceError: on truncated/malformed bodies, unknown ids,
        or a connection that never ran the intern handshake.
    """
    if tables is None:
        raise ServiceError(
            "binary request before intern handshake; send {\"op\": \"intern\"}"
        )
    try:
        (
            request_id,
            subject_id,
            transaction_id,
            object_id,
            confidence,
            flags,
        ) = _REQUEST_FIXED.unpack_from(body)
        offset = _REQUEST_FIXED.size
        env_override: Optional[FrozenSet[str]] = None
        if flags & _FLAG_ENV:
            (count,) = _ENV_COUNT.unpack_from(body, offset)
            offset += _ENV_COUNT.size
            env_ids = struct.unpack_from(f"!{count}H", body, offset)
            offset += count * 2
            env_override = frozenset(
                tables.environment_roles[i] for i in env_ids
            )
        tenant: Optional[str] = None
        if flags & _FLAG_TENANT:
            if offset >= len(body):
                raise ServiceError("binary request truncated before tenant")
            tenant_len = body[offset]
            offset += 1
            raw = body[offset : offset + tenant_len]
            if len(raw) != tenant_len or tenant_len == 0:
                raise ServiceError("binary request has a malformed tenant")
            tenant = raw.decode("utf-8", "strict")
            offset += tenant_len
        trace: Optional[TraceContext] = None
        if flags & _FLAG_TRACE:
            trace, offset = _unpack_trace(body, offset)
        if offset != len(body):
            raise ServiceError(
                f"binary request has {len(body) - offset} trailing bytes"
            )
        subject = (
            None if subject_id == -1 else tables.subjects[subject_id]
        )
        request = AccessRequest(
            transaction=tables.transactions[transaction_id],
            obj=tables.objects[object_id],
            subject=subject,
            identity_confidence=confidence,
        )
    except struct.error as error:
        raise ServiceError(f"truncated binary request: {error}") from None
    except UnicodeDecodeError:
        raise ServiceError("binary request tenant is not UTF-8") from None
    except IndexError:
        raise ServiceError("binary request references unknown id") from None
    except GrbacError as error:
        raise ServiceError(f"invalid request: {error}") from None
    return request_id, request, env_override, None, tenant, trace


def decode_binary_request(
    tables: Optional[InternTables], body: bytes
) -> Tuple[Any, AccessRequest, Optional[FrozenSet[str]], Optional[float]]:
    """Decode a KIND_REQUEST body — same shape as :func:`decode_request`.

    The pre-tenancy 4-tuple surface.  A tenant-tagged frame raises
    rather than silently dropping the tenant — deciding a tenant's
    request against the default policy would be an isolation hole.
    (A trace-tagged frame is fine to drop here: trace context is
    telemetry, not authorization state.)
    """
    request_id, request, env_override, timeout_s, tenant, _trace = (
        decode_binary_request_ex(tables, body)
    )
    if tenant is not None:
        raise ServiceError(
            "tenant-tagged frame needs decode_binary_request_ex"
        )
    return request_id, request, env_override, timeout_s


def encode_binary_response(request_id: Any, response: PDPResponse) -> bytes:
    """Encode one PDP response as a binary frame."""
    wire_id = (
        request_id
        if isinstance(request_id, int) and 0 <= request_id < NO_REQUEST_ID
        else NO_REQUEST_ID
    )
    rationale = response.rationale.encode("utf-8")
    body = (
        _RESPONSE_FIXED.pack(
            wire_id,
            _OUTCOME_CODES[response.outcome],
            int(response.granted),
            int(response.cached),
            response.batch_size,
            response.latency_s * 1e6,
        )
        + rationale
    )
    return frame(KIND_RESPONSE, body)


def decode_binary_response(body: bytes) -> WireResponse:
    """Decode a KIND_RESPONSE body into a :class:`WireResponse`."""
    try:
        (
            request_id,
            outcome_code,
            granted,
            cached,
            batch_size,
            latency_us,
        ) = _RESPONSE_FIXED.unpack_from(body)
        outcome = _CODE_OUTCOMES[outcome_code]
    except (struct.error, KeyError) as error:
        raise ServiceError(f"malformed binary response: {error}") from None
    rationale = body[_RESPONSE_FIXED.size :].decode("utf-8", "replace")
    return WireResponse(
        id=request_id,
        outcome=outcome,
        granted=bool(granted),
        cached=bool(cached),
        batch_size=batch_size,
        latency_us=round(latency_us, 1),
        rationale=rationale,
    )


def encode_binary_error(request_id: Any, message: str) -> bytes:
    """Encode a protocol error as a binary frame."""
    wire_id = (
        request_id
        if isinstance(request_id, int) and 0 <= request_id < NO_REQUEST_ID
        else NO_REQUEST_ID
    )
    return frame(
        KIND_ERROR, struct.pack("!I", wire_id) + message.encode("utf-8")
    )


def decode_binary_error(body: bytes) -> Tuple[Optional[int], str]:
    """Decode a KIND_ERROR body into ``(request_id, message)``."""
    try:
        (wire_id,) = struct.unpack_from("!I", body)
    except struct.error as error:
        raise ServiceError(f"malformed binary error: {error}") from None
    message = body[4:].decode("utf-8", "replace")
    return (None if wire_id == NO_REQUEST_ID else wire_id), message


def encode_binary_revocation(
    tables: InternTables, revocation: WireRevocation
) -> bytes:
    """Encode one grant withdrawal as a KIND_REVOKE frame.

    :raises ServiceError: when the revocation cannot ride the binary
        lane — uninterned names or a non-u32 grant id.  The server
        catches this and pushes the NDJSON form instead; a withdrawal
        must never be silently dropped because a name was minted after
        the intern handshake.
    """
    wire_id = revocation.id
    if not isinstance(wire_id, int) or not 0 <= wire_id < NO_REQUEST_ID:
        raise ServiceError("binary revoke needs an integer id below 2^32-1")
    try:
        subject_id = (
            -1
            if revocation.subject is None
            else tables._subject_ids[revocation.subject]
        )
        transaction_id = tables._transaction_ids[revocation.transaction]
        object_id = tables._object_ids[revocation.obj]
        role_ids = [
            tables._environment_ids[name] for name in revocation.roles
        ]
    except KeyError as error:
        raise ServiceError(f"name not interned: {error}") from None
    body = (
        _REVOKE_FIXED.pack(
            wire_id, subject_id, transaction_id, object_id, revocation.ts
        )
        + _ENV_COUNT.pack(len(role_ids))
        + struct.pack(f"!{len(role_ids)}H", *role_ids)
        + revocation.reason.encode("utf-8")
    )
    return frame(KIND_REVOKE, body)


def decode_binary_revocation(
    tables: Optional[InternTables], body: bytes
) -> WireRevocation:
    """Decode a KIND_REVOKE body into a :class:`WireRevocation`.

    :raises ServiceError: on truncated/malformed bodies, unknown ids,
        or a connection that never ran the intern handshake.
    """
    if tables is None:
        raise ServiceError(
            "binary revoke before intern handshake; send {\"op\": \"intern\"}"
        )
    try:
        (wire_id, subject_id, transaction_id, object_id, ts) = (
            _REVOKE_FIXED.unpack_from(body)
        )
        offset = _REVOKE_FIXED.size
        (count,) = _ENV_COUNT.unpack_from(body, offset)
        offset += _ENV_COUNT.size
        role_ids = struct.unpack_from(f"!{count}H", body, offset)
        offset += count * 2
        roles = tuple(tables.environment_roles[i] for i in role_ids)
        subject = (
            None if subject_id == -1 else tables.subjects[subject_id]
        )
        transaction = tables.transactions[transaction_id]
        obj = tables.objects[object_id]
    except struct.error as error:
        raise ServiceError(f"truncated binary revoke: {error}") from None
    except IndexError:
        raise ServiceError("binary revoke references unknown id") from None
    reason = body[offset:].decode("utf-8", "replace")
    return WireRevocation(
        id=wire_id,
        subject=subject,
        transaction=transaction,
        obj=obj,
        roles=roles,
        reason=reason,
        ts=ts,
    )


async def read_frame_tail(reader) -> Tuple[int, bytes]:
    """Read ``(kind, body)`` after the magic byte has been consumed.

    :raises ServiceError: on an oversized frame (the caller should
        drop the connection — the stream position is unrecoverable).
    :raises asyncio.IncompleteReadError: when the peer closes mid-
        frame (truncation).
    """
    header = await reader.readexactly(FRAME_TAIL.size)
    kind, length = FRAME_TAIL.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServiceError(
            f"binary frame of {length} bytes exceeds {MAX_FRAME_BYTES}"
        )
    body = await reader.readexactly(length)
    return kind, body


# ======================================================================
# Router support — peek helpers and synthesized refusals
# ======================================================================
# The cluster's ShardRouter forwards frames and lines *byte-for-byte*;
# it only needs the routing key (subject or tenant) and the request id
# out of each message, and a way to answer for a worker that is down.
# These helpers keep that knowledge here, next to the layouts they
# depend on, instead of leaking struct offsets into the router.


def peek_binary_request(
    tables: Optional[InternTables], body: bytes
) -> Tuple[int, Optional[str], Optional[str]]:
    """``(request_id, subject_name, tenant)`` of a KIND_REQUEST body.

    Unpacks only what routing needs — no :class:`AccessRequest` is
    built, env ids are skipped, nothing is validated beyond the
    offsets walked.  ``subject_name`` is ``None`` for subjectless
    requests or ids outside ``tables`` (stale tables route arbitrarily
    but still decode server-side to the same refusal NDJSON would).

    :raises ServiceError: truncated body, or ``tables`` is ``None``
        while the body names a subject (no handshake ran).
    """
    try:
        (request_id, subject_id, _, _, _, flags) = _REQUEST_FIXED.unpack_from(
            body
        )
        offset = _REQUEST_FIXED.size
        if flags & _FLAG_ENV:
            (count,) = _ENV_COUNT.unpack_from(body, offset)
            offset += _ENV_COUNT.size + count * 2
        tenant: Optional[str] = None
        if flags & _FLAG_TENANT:
            if offset >= len(body):
                raise ServiceError("binary request truncated before tenant")
            tenant_len = body[offset]
            offset += 1
            raw = body[offset : offset + tenant_len]
            if len(raw) != tenant_len or tenant_len == 0:
                raise ServiceError("binary request has a malformed tenant")
            tenant = raw.decode("utf-8", "replace")
    except struct.error as error:
        raise ServiceError(f"truncated binary request: {error}") from None
    subject: Optional[str] = None
    if subject_id != -1:
        if tables is None:
            raise ServiceError(
                "binary request before intern handshake; "
                'send {"op": "intern"}'
            )
        if 0 <= subject_id < len(tables.subjects):
            subject = tables.subjects[subject_id]
    return request_id, subject, tenant


def peek_binary_id(body: bytes) -> Optional[int]:
    """The leading wire id of a response/error body (both start
    ``id:4``); ``None`` for NO_REQUEST_ID or a truncated body."""
    if len(body) < 4:
        return None
    (wire_id,) = struct.unpack_from("!I", body)
    return None if wire_id == NO_REQUEST_ID else wire_id


def peek_binary_subscribe(body: bytes) -> bool:
    """Whether a KIND_REQUEST body carries the subscribe flag.

    A one-byte test against the flags offset — kept beside (not
    inside) :func:`decode_binary_request_ex` so that function's
    6-tuple shape and every call site built on it stay untouched;
    only continuous-authorization servers pay the extra peek.
    """
    return (
        len(body) > _FLAGS_OFFSET
        and bool(body[_FLAGS_OFFSET] & _FLAG_SUBSCRIBE)
    )


def peek_binary_trace(body: bytes) -> Optional[TraceContext]:
    """The trace context of a KIND_REQUEST body, or ``None``.

    Reads only the flags byte and the trailing trace segment (it is
    defined to be the last segment), so no tables and no offset walk
    are needed — the router's per-frame cost for untraced traffic is
    one byte test.

    :raises ServiceError: flag set but the segment is truncated.
    """
    if len(body) <= _FLAGS_OFFSET:
        return None
    if not body[_FLAGS_OFFSET] & _FLAG_TRACE:
        return None
    if len(body) < _REQUEST_FIXED.size + _TRACE_SEGMENT.size:
        raise ServiceError("truncated binary trace segment")
    trace, _ = _unpack_trace(body, len(body) - _TRACE_SEGMENT.size)
    return trace


def splice_binary_trace(body: bytes, trace: TraceContext) -> bytes:
    """Return ``body`` carrying ``trace`` as its context segment.

    Flips the trace flag and appends (or, for an already-tagged frame,
    replaces) the trailing trace segment.  Everything else — including
    env and tenant segments the router never decoded — is untouched,
    which is what lets the router originate/rewrite context without
    intern tables.

    :raises ServiceError: on a body too short to carry a flags byte.
    """
    if len(body) <= _FLAGS_OFFSET:
        raise ServiceError("binary request too short to tag with a trace")
    flags = body[_FLAGS_OFFSET]
    if flags & _FLAG_TRACE:
        if len(body) < _REQUEST_FIXED.size + _TRACE_SEGMENT.size:
            raise ServiceError("truncated binary trace segment")
        body = body[: len(body) - _TRACE_SEGMENT.size]
    return (
        body[:_FLAGS_OFFSET]
        + bytes([flags | _FLAG_TRACE])
        + body[_FLAGS_OFFSET + 1 :]
        + _pack_trace(trace)
    )


def splice_line_trace(line: bytes, trace: TraceContext) -> bytes:
    """Return an NDJSON request line carrying ``trace``.

    Fast path: the line is a JSON object with no ``trace`` key yet, so
    the key is spliced in before the closing brace without a parse.
    Lines that already carry one (a client-originated context being
    rewritten to name the router's span) take the parse-and-re-encode
    path.  The returned line is newline-terminated either way.

    :raises ServiceError: when the line is not a JSON object.
    """
    stripped = line.rstrip()
    if not stripped.startswith(b"{") or not stripped.endswith(b"}"):
        raise ServiceError("NDJSON request line is not a JSON object")
    addition = f',"trace":"{trace.to_wire()}"}}'.encode("ascii")
    if b'"trace"' not in stripped:
        if stripped == b"{}":
            return b'{"trace":"' + trace.to_wire().encode("ascii") + b'"}\n'
        return stripped[:-1] + addition + b"\n"
    payload = parse_line(stripped)
    payload["trace"] = trace.to_wire()
    return dumps_line(payload)


def encode_unavailable(request_id: Any, detail: str) -> Dict[str, Any]:
    """NDJSON ``DENY_UNAVAILABLE`` payload a router answers with.

    Shaped exactly like :func:`encode_response` output so
    :func:`decode_response` and every client treat it as a normal
    (refused) decision, never a protocol error.
    """
    return {
        "id": request_id,
        "outcome": PDPOutcome.DENY_UNAVAILABLE.value,
        "granted": False,
        "cached": False,
        "batch_size": 0,
        "latency_us": 0.0,
        "rationale": detail,
    }


def encode_binary_unavailable(request_id: Any, detail: str) -> bytes:
    """Binary ``DENY_UNAVAILABLE`` frame a router answers with."""
    wire_id = (
        request_id
        if isinstance(request_id, int) and 0 <= request_id < NO_REQUEST_ID
        else NO_REQUEST_ID
    )
    body = _RESPONSE_FIXED.pack(
        wire_id,
        _OUTCOME_CODES[PDPOutcome.DENY_UNAVAILABLE],
        0,
        0,
        0,
        0.0,
    ) + detail.encode("utf-8")
    return frame(KIND_RESPONSE, body)
