"""Closed-loop load generation against a PDP (local or remote).

A fixed pool of ``concurrency`` workers each keeps exactly one request
in flight (closed-loop: a worker submits, awaits the answer, then
takes the next item), which is both how interactive clients behave and
what gives the micro-batcher real concurrency to coalesce.  Latencies
are measured client-side around each await, so local and TCP runs are
comparable; percentiles are exact (computed from the full sample set,
not bucketed).

Verification mode replays the same stream through a direct, cache-less
:class:`MediationEngine` and cross-checks every mediated answer — the
CI smoke job's "zero stale responses" assertion.  Dropped requests
(submitted but never answered *and* never explicitly shed) are counted
separately and also fail verification: backpressure must always be
explicit.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.mediation import MediationEngine
from repro.core.policy import GrbacPolicy
from repro.exceptions import ServiceError
from repro.obs.export import TraceSampler
from repro.obs.trace import TraceContext
from repro.service.pdp import PDPOutcome
from repro.workload.generator import GeneratedRequest, generate_requests


@dataclass(frozen=True)
class LoadgenConfig:
    """Shape of one load-generation run."""

    requests: int = 1000
    concurrency: int = 16
    seed: int = 0
    #: Repeat the unique stream this many times (in order).  Repeats
    #: after the first hit the revision-keyed cache on a static
    #: policy/environment — the replay-workload warmth knob.
    repeat: int = 1
    #: Route every request to this tenant (None = default tenant,
    #: wire bytes unchanged).  The stream should be generated from
    #: that tenant's policy for meaningful grant rates.
    tenant: Optional[str] = None
    #: Originate a trace context on this fraction of requests (the
    #: client-side head-sampling decision; the server and router then
    #: obey it).  0.0 keeps every request byte-identical to the
    #: untraced form.
    trace_sample_rate: float = 0.0
    #: Continuous-authorization mode: send every request with the
    #: ``subscribe`` field set and *without* an explicit environment
    #: override, so grants resolve against the server's live
    #: environment and register in its session grant table.  Pair with
    #: :func:`attach_revocation_probe` to measure flip-to-delivery
    #: latency.  Incompatible with verification (the reference engine
    #: replays the stream's claimed roles, not the live environment).
    subscribe: bool = False

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ServiceError("requests must be >= 1")
        if self.concurrency < 1:
            raise ServiceError("concurrency must be >= 1")
        if self.repeat < 1:
            raise ServiceError("repeat must be >= 1")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ServiceError("trace_sample_rate must be in [0, 1]")


@dataclass
class LoadgenResult:
    """Tallies and latency distribution of one run."""

    sent: int = 0
    completed: int = 0
    grants: int = 0
    denies: int = 0
    shed: int = 0
    timeouts: int = 0
    #: Explicit ``DENY_UNAVAILABLE`` answers — the cluster router's
    #: "your shard is down/circuit-broken" refusal.  Counted apart
    #: from ``errors`` because, like sheds, they are sanctioned
    #: backpressure, not protocol failures.
    unavailable: int = 0
    errors: int = 0
    #: Requests that vanished: no mediated answer, no explicit
    #: overload/timeout outcome.  Must be zero — sheds are the only
    #: sanctioned form of loss.
    dropped: int = 0
    #: Mediated answers disagreeing with the direct-engine reference
    #: (verification runs only).  Must be zero: a cache or batching
    #: bug shows up here as a stale grant/deny.
    mismatches: int = 0
    #: Wire/request ids of the mismatched answers — the join key into
    #: the server's flight recorder, exported spans, and audit log, so
    #: a stale answer can be chased to its decision record.
    mismatch_request_ids: List[object] = field(default_factory=list, repr=False)
    #: Trace ids of the mismatched answers, aligned with
    #: ``mismatch_request_ids`` (``""`` when that request was not
    #: sampled) — pasteable straight into ``/trace/<id>`` for the
    #: cross-process waterfall of the stale answer.
    mismatch_trace_ids: List[str] = field(default_factory=list, repr=False)
    #: Requests that carried an originated trace context.
    traced: int = 0
    cached: int = 0
    elapsed_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list, repr=False)
    #: Unsolicited ``revoke`` pushes received (continuous-authorization
    #: runs with :func:`attach_revocation_probe`).
    revocations: int = 0
    #: Flip-to-delivery latency per received revocation: client
    #: ``time.time()`` at receipt minus the server's flip timestamp
    #: riding the message (``WireRevocation.ts``) — one wall clock end
    #: to end, no round trip needed.
    revocation_latencies_s: List[float] = field(
        default_factory=list, repr=False
    )

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def latency_us(self, q: float) -> float:
        """Exact ``q``-quantile of client-observed latency, in µs."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index] * 1e6

    def revocation_latency_ms(self, q: float) -> float:
        """Exact ``q``-quantile of flip-to-delivery latency, in ms."""
        if not self.revocation_latencies_s:
            return 0.0
        ordered = sorted(self.revocation_latencies_s)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index] * 1e3

    @property
    def ok(self) -> bool:
        """Zero stale answers and zero silent drops."""
        return self.mismatches == 0 and self.dropped == 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "sent": self.sent,
            "completed": self.completed,
            "grants": self.grants,
            "denies": self.denies,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "unavailable": self.unavailable,
            "errors": self.errors,
            "dropped": self.dropped,
            "mismatches": self.mismatches,
            "traced": self.traced,
            "cached": self.cached,
            "elapsed_s": round(self.elapsed_s, 6),
            "throughput_rps": round(self.throughput_rps, 1),
            "latency_p50_us": round(self.latency_us(0.50), 1),
            "latency_p95_us": round(self.latency_us(0.95), 1),
            "latency_p99_us": round(self.latency_us(0.99), 1),
            "revocations": self.revocations,
            "revocation_p50_ms": round(self.revocation_latency_ms(0.50), 3),
            "revocation_p99_ms": round(self.revocation_latency_ms(0.99), 3),
        }

    def describe(self) -> str:
        lines = [
            f"{self.completed}/{self.sent} answered in {self.elapsed_s * 1e3:.1f} ms "
            f"({self.throughput_rps:,.0f} req/s)",
            f"  grants {self.grants}  denies {self.denies}  cached {self.cached}",
            f"  shed {self.shed}  timeouts {self.timeouts}  "
            f"unavailable {self.unavailable}  errors {self.errors}  "
            f"dropped {self.dropped}",
            f"  latency p50 {self.latency_us(0.5):.1f} us  "
            f"p95 {self.latency_us(0.95):.1f} us  "
            f"p99 {self.latency_us(0.99):.1f} us",
        ]
        if self.revocations:
            lines.append(
                f"  revocations {self.revocations}  "
                f"flip-to-delivery p50 "
                f"{self.revocation_latency_ms(0.5):.2f} ms  "
                f"p99 {self.revocation_latency_ms(0.99):.2f} ms"
            )
        if self.mismatches:
            ids = ", ".join(
                f"{request_id!r}"
                + (f" (trace {trace_id})" if trace_id else "")
                for request_id, trace_id in zip(
                    self.mismatch_request_ids[:10],
                    (self.mismatch_trace_ids + [""] * 10)[:10],
                )
            )
            lines.append(
                f"  STALE ANSWERS: {self.mismatches} mismatches vs direct "
                f"engine (request ids: {ids})"
            )
        return "\n".join(lines)


def build_stream(
    policy: GrbacPolicy, config: LoadgenConfig
) -> List[GeneratedRequest]:
    """The seeded request stream for ``config`` (repeats appended)."""
    unique = generate_requests(policy, config.requests, seed=config.seed)
    return unique * config.repeat


def compute_expected(
    policy: GrbacPolicy,
    stream: Sequence[GeneratedRequest],
    confidence_threshold: float = 0.0,
) -> List[bool]:
    """Reference grant/deny per stream item, from a direct engine.

    Uses a fresh cache-less engine over the same policy, so any
    disagreement with the served path is a service bug, not drift.
    """
    reference = MediationEngine(
        policy, confidence_threshold=confidence_threshold
    )
    return [
        reference.decide(
            item.request, environment_roles=set(item.active_environment_roles)
        ).granted
        for item in stream
    ]


def attach_revocation_probe(client, result: LoadgenResult) -> None:
    """Record flip-to-delivery latency for every push ``client`` gets.

    Registers a :meth:`RemotePDPClient.subscribe` handler that stamps
    ``time.time()`` at receipt and subtracts the server's flip
    timestamp from the message.  Both ends read the same wall clock on
    one machine (the bench topology); across machines the measurement
    inherits clock skew, like any one-way latency.
    """
    subscribe = getattr(client, "subscribe", None)
    if subscribe is None:
        raise ServiceError("client does not support revocation pushes")

    def on_revocation(revocation) -> None:
        result.revocations += 1
        result.revocation_latencies_s.append(
            max(0.0, time.time() - revocation.ts)
        )

    subscribe(on_revocation)


async def run_loadgen(
    client,
    stream: Sequence[GeneratedRequest],
    config: LoadgenConfig,
    expected: Optional[Sequence[bool]] = None,
) -> LoadgenResult:
    """Drive ``stream`` through ``client`` closed-loop.

    :param client: anything with ``async decide(request,
        environment_roles=...)`` returning an object with ``outcome``
        (a :class:`PDPOutcome`), ``granted`` and ``cached`` — both the
        in-process :class:`~repro.service.pdp.PDPClient` and the
        remote :class:`~repro.service.client.RemotePDPClient` qualify.
    :param expected: optional per-item reference grants; when given,
        every mediated answer is cross-checked.
    """
    if expected is not None and len(expected) != len(stream):
        raise ServiceError("expected list must match the stream length")
    if config.subscribe and expected is not None:
        raise ServiceError(
            "subscribe mode resolves against the live environment; "
            "verification replays claimed roles — run one or the other"
        )
    result = LoadgenResult(sent=len(stream))
    next_index = 0
    sampler = (
        TraceSampler(config.trace_sample_rate)
        if config.trace_sample_rate > 0
        else None
    )

    async def worker() -> None:
        nonlocal next_index
        while True:
            index = next_index
            if index >= len(stream):
                return
            next_index = index + 1
            item = stream[index]
            started = time.perf_counter()
            kwargs = {}
            if config.tenant is not None:
                kwargs["tenant"] = config.tenant
            trace_ctx: Optional[TraceContext] = None
            if sampler is not None and sampler.should_sample():
                trace_ctx = TraceContext.origin()
                kwargs["trace"] = trace_ctx
                result.traced += 1
            if config.subscribe:
                # Live-environment resolution: no env override, so the
                # server registers every grant for push revocation.
                kwargs["subscribe"] = True
            else:
                kwargs["environment_roles"] = set(
                    item.active_environment_roles
                )
            try:
                response = await client.decide(item.request, **kwargs)
            except ServiceError:
                result.dropped += 1
                continue
            result.latencies_s.append(time.perf_counter() - started)
            result.completed += 1
            outcome = response.outcome
            if outcome is PDPOutcome.GRANT:
                result.grants += 1
            elif outcome is PDPOutcome.DENY:
                result.denies += 1
            elif outcome is PDPOutcome.DENY_OVERLOAD:
                result.shed += 1
            elif outcome is PDPOutcome.DENY_TIMEOUT:
                result.timeouts += 1
            elif outcome is PDPOutcome.DENY_UNAVAILABLE:
                result.unavailable += 1
            else:
                result.errors += 1
            if response.cached:
                result.cached += 1
            if (
                expected is not None
                and outcome in (PDPOutcome.GRANT, PDPOutcome.DENY)
                and response.granted != expected[index]
            ):
                result.mismatches += 1
                result.mismatch_request_ids.append(
                    getattr(response, "request_id", None)
                )
                result.mismatch_trace_ids.append(
                    getattr(response, "trace_id", "")
                    or (trace_ctx.trace_id if trace_ctx is not None else "")
                )

    workers = [worker() for _ in range(min(config.concurrency, len(stream)))]
    started = time.perf_counter()
    await asyncio.gather(*workers)
    result.elapsed_s = time.perf_counter() - started
    # Closed loop: anything not answered was dropped, however it failed.
    result.dropped = result.sent - result.completed
    return result


class ClientPool:
    """Round-robins ``decide`` over several pipelined clients.

    One TCP connection serializes writes under its lock; spreading a
    closed-loop worker pool over ``--connections N`` sockets per
    endpoint removes that single-connection ceiling.  All other calls
    proxy to the first client.
    """

    def __init__(self, clients: Sequence[object]) -> None:
        if not clients:
            raise ServiceError("client pool needs at least one client")
        self._clients = list(clients)
        self._next = 0

    async def decide(self, request, **kwargs):
        client = self._clients[self._next]
        self._next = (self._next + 1) % len(self._clients)
        return await client.decide(request, **kwargs)

    def subscribe(self, handler) -> None:
        """Register ``handler`` on every pooled connection — a push
        arrives on whichever socket carried the subscribed grant."""
        for client in self._clients:
            client.subscribe(handler)


def merge_results(
    results: Sequence[LoadgenResult], elapsed_s: float
) -> LoadgenResult:
    """Sum per-endpoint tallies into one run-wide result.

    ``elapsed_s`` is the caller's wall clock around the whole run, so
    aggregate throughput reflects real concurrency instead of summing
    per-endpoint rates measured over different windows.
    """
    merged = LoadgenResult(elapsed_s=elapsed_s)
    for result in results:
        merged.sent += result.sent
        merged.completed += result.completed
        merged.grants += result.grants
        merged.denies += result.denies
        merged.shed += result.shed
        merged.timeouts += result.timeouts
        merged.unavailable += result.unavailable
        merged.errors += result.errors
        merged.dropped += result.dropped
        merged.mismatches += result.mismatches
        merged.mismatch_request_ids.extend(result.mismatch_request_ids)
        merged.mismatch_trace_ids.extend(result.mismatch_trace_ids)
        merged.traced += result.traced
        merged.cached += result.cached
        merged.latencies_s.extend(result.latencies_s)
        merged.revocations += result.revocations
        merged.revocation_latencies_s.extend(result.revocation_latencies_s)
    return merged


async def run_loadgen_endpoints(
    clients_by_endpoint: "Dict[str, Sequence[object]]",
    stream: Sequence[GeneratedRequest],
    config: LoadgenConfig,
    expected: Optional[Sequence[bool]] = None,
) -> "tuple[LoadgenResult, Dict[str, LoadgenResult]]":
    """Drive one stream across several endpoints concurrently.

    The stream is dealt round-robin across endpoints (item ``i`` goes
    to endpoint ``i % k``), each endpoint running its own closed loop
    of ``config.concurrency`` workers over its client pool.  Returns
    the aggregate plus per-endpoint results so a cluster bench can
    attribute throughput skew or sheds to a single shard.
    """
    if expected is not None and len(expected) != len(stream):
        raise ServiceError("expected list must match the stream length")
    endpoints = list(clients_by_endpoint)
    if not endpoints:
        raise ServiceError("at least one endpoint is required")
    count = len(endpoints)

    async def run_one(index: int, endpoint: str) -> LoadgenResult:
        part = list(stream[index::count])
        part_expected = (
            list(expected[index::count]) if expected is not None else None
        )
        if not part:
            return LoadgenResult()
        pool = ClientPool(clients_by_endpoint[endpoint])
        return await run_loadgen(pool, part, config, part_expected)

    started = time.perf_counter()
    results = await asyncio.gather(
        *(run_one(i, endpoint) for i, endpoint in enumerate(endpoints))
    )
    elapsed = time.perf_counter() - started
    per_endpoint = dict(zip(endpoints, results))
    return merge_results(results, elapsed), per_endpoint
