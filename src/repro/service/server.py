"""The TCP face of the PDP: NDJSON and binary frames over asyncio.

:class:`PDPServer` binds a :class:`~repro.service.pdp.PolicyDecisionPoint`
to a listening socket.  Each connection is a long-lived pipelined
stream: clients may have any number of requests in flight; responses
carry the request's ``id`` and may arrive out of submission order
(cache hits and sheds resolve ahead of batched work).  Backpressure
composes: the PDP's bounded queue sheds excess decision work
explicitly, and per-connection writes await ``drain()`` so a slow
reader throttles only its own connection.

Wire negotiation is per *message*: every read peeks one byte — the
binary magic routes to the struct-frame decoder of
:mod:`repro.service.protocol`, anything else is an NDJSON line — so
NDJSON and binary clients (and mixed traffic from one client) share a
single listener.  The ``{"op": "intern"}`` handshake pins this
connection's integer id tables for the binary request lane; binary
requests get binary responses, NDJSON requests get NDJSON responses.

The CLI's ``serve`` subcommand (see :mod:`repro.cli`) is a thin
wrapper over :func:`PDPServer.serve_forever`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from repro.exceptions import PolicyStoreError, ServiceError
from repro.service.pdp import (
    DEFAULT_TENANT,
    PDPOutcome,
    PolicyDecisionPoint,
    SessionGrant,
)
from repro.service.protocol import (
    BINARY_MAGIC,
    KIND_REQUEST,
    MAX_LINE_BYTES,
    InternTables,
    WireRevocation,
    decode_binary_request_ex,
    decode_request,
    decode_subscribe,
    decode_tenant,
    decode_trace_context,
    dumps_line,
    encode_binary_error,
    encode_binary_response,
    encode_binary_revocation,
    encode_response,
    encode_revocation,
    parse_line,
    peek_binary_subscribe,
    read_frame_tail,
)


class PDPServer:
    """Serves one PDP over TCP.

    :param pdp: the decision point; started/stopped with the server.
    :param host: bind address (default loopback).
    :param port: bind port; 0 picks an ephemeral port — read
        :attr:`port` after :meth:`start`.
    :param administrator: optional
        :class:`~repro.policy.admin.PolicyAdministrator` bound to the
        same PDP; enables the ``reload`` wire op (and the two-phase
        ``reload_prepare``/``reload_activate``/``reload_abort`` ops
        the cluster supervisor drives).  Servers without one answer
        reload attempts with an explicit error.
    :param drain_timeout_s: bound on the graceful drain when
        :meth:`serve_forever` shuts down (signal or cancellation).
        ``None`` drains without a deadline; past the deadline queued
        work is shed with ``DENY_OVERLOAD`` instead.
    :param environment: optional
        :class:`~repro.env.runtime.EnvironmentRuntime` this server is
        the authority for.  Enables *continuous authorization*
        (§4.2.2): subscribed GRANTs register in the PDP's
        :class:`~repro.service.pdp.SessionGrantTable`, the runtime's
        bus is watched for ``role.deactivated``, the ``env`` wire op
        accepts state writes/moves, and a background driver observes
        the activator at each scheduled temporal boundary so
        wall-clock flips push revocations with zero requests in
        flight.
    """

    def __init__(
        self,
        pdp: PolicyDecisionPoint,
        host: str = "127.0.0.1",
        port: int = 0,
        administrator: Optional[object] = None,
        drain_timeout_s: Optional[float] = None,
        environment: Optional[object] = None,
    ) -> None:
        if drain_timeout_s is not None and drain_timeout_s <= 0:
            raise ServiceError("drain_timeout_s must be > 0 or None")
        self.pdp = pdp
        self.host = host
        self.administrator = administrator
        self.drain_timeout_s = drain_timeout_s
        self.environment = environment
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._boundary_task: Optional["asyncio.Task[None]"] = None
        self.connections = 0
        #: Lazily-created per-tenant administrators for pinned
        #: (non-store) tenants, so tenant-scoped reloads get the same
        #: lint/diff/audit gate as the default path.
        self._tenant_admins: "dict[str, object]" = {}
        if environment is not None:
            pdp.watch_environment(environment.bus)

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("server is not listening")
        return self._server.sockets[0].getsockname()[1]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "PDPServer":
        await self.pdp.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self._requested_port,
            limit=MAX_LINE_BYTES,
        )
        if self.environment is not None and self._boundary_task is None:
            self._boundary_task = asyncio.get_running_loop().create_task(
                self._drive_boundaries()
            )
        return self

    async def stop(self, drain: bool = True) -> None:
        """Close the listener, then drain (or shed) the PDP."""
        if self._boundary_task is not None:
            self._boundary_task.cancel()
            try:
                await self._boundary_task
            except asyncio.CancelledError:
                pass
            self._boundary_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.pdp.stop(drain=drain)

    async def _drive_boundaries(self) -> None:
        """Observe the activator at every scheduled temporal boundary.

        The activator's timer wheel knows the next instant any bound
        temporal condition may flip (:meth:`next_boundary`); this task
        sleeps until then and performs one observation, which advances
        the wheel, re-evaluates only the affected roles, and publishes
        ``role.deactivated`` events — i.e. pushes revocations — even
        when no request is in flight and no state event arrives.  The
        sleep is capped at one second so roles bound after the timer
        was armed (whose boundary may be earlier) are picked up
        promptly; between boundaries each wake-up is a memo hit.
        """
        activator = self.environment.activator
        clock = self.environment.clock
        while True:
            deadline = activator.next_boundary()
            if deadline is None:
                delay = 1.0
            else:
                delay = min(1.0, max(0.01, deadline - clock.now()))
            await asyncio.sleep(delay)
            activator.active_environment_roles()

    def request_shutdown(self) -> None:
        """Ask :meth:`serve_forever` to exit and drain gracefully.

        Safe to call from a signal handler registered with
        ``loop.add_signal_handler`` (it runs on the loop); idempotent.
        Before :meth:`serve_forever` runs it is a no-op.
        """
        if self._shutdown is not None:
            self._shutdown.set()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT into the graceful drain path.

        Without this, SIGTERM kills the process mid-batch and SIGINT
        relies on KeyboardInterrupt unwinding; with it, either signal
        closes the listener first and decides everything already
        admitted (bounded by :attr:`drain_timeout_s`).
        """
        import signal

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self.request_shutdown)

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled or shut down.

        Cancellation (KeyboardInterrupt in the CLI) and
        :meth:`request_shutdown` (the SIGTERM/SIGINT path) both
        trigger a graceful stop: listener closed first, admitted work
        drained — shed after :attr:`drain_timeout_s` when one is set.
        """
        if self._server is None:
            await self.start()
        assert self._server is not None
        self._shutdown = asyncio.Event()
        loop = asyncio.get_running_loop()
        forever = loop.create_task(self._server.serve_forever())
        shutdown = loop.create_task(self._shutdown.wait())
        try:
            await asyncio.wait(
                (forever, shutdown), return_when=asyncio.FIRST_COMPLETED
            )
        except asyncio.CancelledError:
            pass
        finally:
            for task in (forever, shutdown):
                task.cancel()
            await asyncio.gather(forever, shutdown, return_exceptions=True)
            if self.drain_timeout_s is None:
                await self.stop(drain=True)
            else:
                try:
                    await asyncio.wait_for(
                        asyncio.shield(
                            asyncio.ensure_future(self.stop(drain=True))
                        ),
                        timeout=self.drain_timeout_s,
                    )
                except asyncio.TimeoutError:
                    # Deadline blown: shed whatever is still queued.
                    await self.stop(drain=False)

    async def __aenter__(self) -> "PDPServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        write_lock = asyncio.Lock()
        tasks: "set[asyncio.Task[None]]" = set()
        #: Per-connection intern tables (protocol.InternTables), set by
        #: the first ``{"op": "intern"}``.  One-slot list so the nested
        #: handlers can rebind it.
        tables: "list[Optional[InternTables]]" = [None]

        async def respond(payload: dict) -> None:
            async with write_lock:
                writer.write(dumps_line(payload))
                await writer.drain()

        async def respond_bytes(data: bytes) -> None:
            async with write_lock:
                writer.write(data)
                await writer.drain()

        # Continuous-authorization session state: this connection's
        # identity in the PDP grant table, plus which of its grants
        # arrived on the binary lane (revokes answer in kind).
        loop = asyncio.get_running_loop()
        session_key = object()
        binary_grants: "set[object]" = set()

        async def deliver_revocation(
            revocation: WireRevocation, binary: bool
        ) -> None:
            # Flip-to-delivery latency, observed as late as the server
            # can see it: just before the push bytes are written.
            self.pdp.record_revocation_latency(time.time() - revocation.ts)
            if binary and tables[0] is not None:
                try:
                    data = encode_binary_revocation(tables[0], revocation)
                except ServiceError:
                    data = None  # uninterned name: fall back to NDJSON
                if data is not None:
                    await respond_bytes(data)
                    return
            await respond(encode_revocation(revocation))

        def push_revocation(grant, roles, reason: str, ts: float) -> None:
            # Called synchronously from the grant-table sweep (on this
            # loop).  Fast path: encode and buffer the push inline —
            # ``writer.write`` never blocks (``drain`` is only the
            # cooperative backpressure wait, and a sweep pushes at
            # most one frame per registered grant, so the buffer
            # growth is bounded by the table) — a 1k-session sweep is
            # 1k buffer appends, not 1k scheduled tasks.  Writes stay
            # whole-message: every ``write`` call appends one complete
            # frame/line, so interleaving with a locked respond is
            # safe.
            revocation = WireRevocation(
                id=grant.grant_id,
                subject=grant.subject,
                transaction=grant.transaction,
                obj=grant.obj,
                roles=tuple(roles),
                reason=reason,
                ts=ts,
            )
            binary = grant.grant_id in binary_grants
            data: Optional[bytes] = None
            if binary and tables[0] is not None:
                try:
                    data = encode_binary_revocation(tables[0], revocation)
                except ServiceError:
                    data = None  # uninterned name: NDJSON below
            if data is None and not binary:
                data = dumps_line(encode_revocation(revocation))
            if data is not None and not writer.is_closing():
                self.pdp.record_revocation_latency(
                    time.time() - revocation.ts
                )
                writer.write(data)
                return
            # Slow path (binary encode refused, or mid-close): a task
            # that can await the lock and fall back across lanes.
            task = loop.create_task(deliver_revocation(revocation, binary))
            tasks.add(task)
            task.add_done_callback(tasks.discard)

        def register_grant(request_id, request, response, binary) -> None:
            # Subscribed GRANTs resolved against the *live* environment
            # become standing grants: any supporting role deactivating
            # pushes a revoke.  Registered before the response is
            # written, so a flip arriving right after the decision can
            # never fall between grant and subscription.
            if (
                response.outcome is not PDPOutcome.GRANT
                or response.decision is None
            ):
                return
            if binary:
                binary_grants.add(request_id)
            self.pdp.grants.register(
                SessionGrant(
                    session_id=session_key,
                    grant_id=request_id,
                    subject=request.subject,
                    transaction=request.transaction,
                    obj=request.obj,
                    roles=frozenset(response.decision.environment_roles),
                    tenant=response.tenant,
                )
            )

        self.pdp.grants.attach_session(session_key, push_revocation)
        try:
            while True:
                # Per-message format detection: a binary frame leads
                # with BINARY_MAGIC (never a JSON start byte), NDJSON
                # with anything else — mixed clients share one port.
                try:
                    first = await reader.readexactly(1)
                except asyncio.IncompleteReadError:
                    break
                if first[0] == BINARY_MAGIC:
                    try:
                        kind, body = await read_frame_tail(reader)
                    except ServiceError as error:
                        # Oversized frame: the stream position is not
                        # recoverable, so report and drop the link.
                        await respond_bytes(
                            encode_binary_error(None, str(error))
                        )
                        break
                    except asyncio.IncompleteReadError:
                        break  # truncated frame: peer went away
                    await self._handle_frame(
                        kind, body, tables, respond_bytes, tasks,
                        register_grant,
                    )
                    continue
                try:
                    rest = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as eof:
                    rest = eof.partial  # final unterminated line
                except (asyncio.LimitOverrunError, ValueError):
                    await respond({"error": "wire line too long"})
                    break
                line = (first + rest).strip()
                if line:
                    await self._handle_line(
                        line, respond, tables, tasks, register_grant
                    )
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.pdp.grants.detach_session(session_key)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_frame(
        self, kind: int, body: bytes, tables, respond_bytes, tasks,
        register=None,
    ) -> None:
        if kind != KIND_REQUEST:
            await respond_bytes(
                encode_binary_error(None, f"unexpected frame kind {kind}")
            )
            return
        subscribe = peek_binary_subscribe(body)
        try:
            (
                request_id,
                request,
                env,
                timeout_s,
                tenant,
                trace_ctx,
            ) = decode_binary_request_ex(tables[0], body)
        except ServiceError as error:
            await respond_bytes(encode_binary_error(None, str(error)))
            return

        async def decide_and_reply() -> None:
            try:
                response = await self.pdp.submit(
                    request,
                    environment_roles=env,
                    timeout=timeout_s,
                    request_id=request_id,
                    tenant=tenant,
                    trace_ctx=trace_ctx,
                )
            except ServiceError as error:  # PDP stopped mid-flight
                await respond_bytes(
                    encode_binary_error(request_id, str(error))
                )
                return
            if subscribe and env is None and register is not None:
                register(request_id, request, response, True)
            await respond_bytes(encode_binary_response(request_id, response))

        task = asyncio.get_running_loop().create_task(decide_and_reply())
        tasks.add(task)
        task.add_done_callback(tasks.discard)

    async def _handle_line(
        self, line: bytes, respond, tables, tasks, register=None
    ) -> None:
        try:
            payload = parse_line(line)
        except ServiceError as error:
            await respond({"error": str(error)})
            return
        op = payload.get("op")
        if op is not None:
            await self._handle_op(op, payload, respond, tables)
            return
        try:
            request_id, request, env, timeout_s = decode_request(payload)
            tenant = decode_tenant(payload)
            trace_ctx = decode_trace_context(payload)
            subscribe = decode_subscribe(payload)
        except ServiceError as error:
            await respond({"id": payload.get("id"), "error": str(error)})
            return

        async def decide_and_reply() -> None:
            try:
                response = await self.pdp.submit(
                    request,
                    environment_roles=env,
                    timeout=timeout_s,
                    request_id=request_id,
                    tenant=tenant,
                    trace_ctx=trace_ctx,
                )
            except ServiceError as error:  # PDP stopped mid-flight
                await respond({"id": request_id, "error": str(error)})
                return
            if subscribe and env is None and register is not None:
                register(request_id, request, response, False)
            await respond(encode_response(request_id, response))

        # Decide concurrently so one queued request never blocks the
        # read loop — this is what lets a single connection keep many
        # requests in flight (and the batcher fill real batches).
        task = asyncio.get_running_loop().create_task(decide_and_reply())
        tasks.add(task)
        task.add_done_callback(tasks.discard)

    async def _handle_op(
        self, op: object, payload: dict, respond, tables=None
    ) -> None:
        request_id = payload.get("id")
        if op == "ping":
            await respond({"op": "pong", "id": request_id})
        elif op == "intern":
            # Hand out (and pin, for this connection) the integer id
            # tables the binary request lane encodes against.  Re-
            # issuing the op after a policy change refreshes them.  An
            # optional "tenant" interns against that tenant's active
            # policy instead of the default engine's.
            # A client (or the shard router, replaying a handshake to
            # a fresh worker connection) may instead *provide* tables;
            # they are pinned verbatim so the same ids decode to the
            # same names on every connection of a session, even across
            # worker restarts or reloads.
            if payload.get("tables") is not None:
                try:
                    interned = InternTables.from_payload(payload)
                except ServiceError as error:
                    await respond({"id": request_id, "error": str(error)})
                    return
                if tables is not None:
                    tables[0] = interned
                await respond({"id": request_id, **interned.to_payload()})
                return
            tenant = payload.get("tenant")
            if tenant is not None and not isinstance(tenant, str):
                await respond(
                    {"id": request_id, "error": "'tenant' must be a string"}
                )
                return
            try:
                policy = (
                    self.pdp.policy
                    if tenant is None or tenant == DEFAULT_TENANT
                    else self.pdp.tenant_policy(tenant)
                )
            except ServiceError as error:
                await respond({"id": request_id, "error": str(error)})
                return
            interned = InternTables.from_policy(policy)
            if tables is not None:
                tables[0] = interned
            await respond({"id": request_id, **interned.to_payload()})
        elif op == "tenants":
            await respond(
                {
                    "op": "tenants",
                    "id": request_id,
                    "tenants": self.pdp.tenants_overview(),
                }
            )
        elif op == "stats":
            await respond(
                {"op": "stats", "id": request_id, "stats": self.pdp.stats()}
            )
        elif op == "trace":
            # Span lookup for one distributed trace: the cluster admin
            # (or a debugging client) asks each worker for the spans it
            # retained for a trace id and joins them with the router's.
            trace_id = payload.get("trace_id")
            if not isinstance(trace_id, str) or not trace_id:
                await respond(
                    {
                        "id": request_id,
                        "error": "'trace_id' must be a non-empty string",
                    }
                )
                return
            await respond(
                {
                    "op": "trace",
                    "id": request_id,
                    "trace_id": trace_id,
                    "spans": self.pdp.find_trace(trace_id),
                }
            )
        elif op == "metrics":
            await respond(
                {
                    "op": "metrics",
                    "id": request_id,
                    "prometheus": self.pdp.metrics_prometheus(),
                    "json": self.pdp.metrics_json(),
                }
            )
        elif op == "health":
            await respond(
                {"op": "health", "id": request_id, **self.pdp.health()}
            )
        elif op == "ready":
            await respond(
                {"op": "ready", "id": request_id, **self.pdp.ready()}
            )
        elif op == "dump":
            limit = payload.get("limit")
            since_seq = payload.get("since_seq", 0)
            subject = payload.get("subject")
            outcome = payload.get("outcome")
            if limit is not None and not isinstance(limit, int):
                await respond(
                    {"id": request_id, "error": "'limit' must be an integer"}
                )
                return
            if not isinstance(since_seq, int):
                await respond(
                    {"id": request_id, "error": "'since_seq' must be an integer"}
                )
                return
            await respond(
                {
                    "op": "dump",
                    "id": request_id,
                    "entries": self.pdp.dump(
                        limit=limit,
                        since_seq=since_seq,
                        subject=subject if isinstance(subject, str) else None,
                        outcome=outcome if isinstance(outcome, str) else None,
                    ),
                }
            )
        elif op == "env":
            await self._handle_env(payload, respond)
        elif op == "reload":
            await self._handle_reload(payload, respond)
        elif op in ("reload_prepare", "reload_activate", "reload_abort"):
            await self._handle_two_phase(op, payload, respond)
        else:
            await respond({"id": request_id, "error": f"unknown op {op!r}"})

    async def _handle_env(self, payload: dict, respond) -> None:
        """The ``env`` wire op: feed the server's live environment.

        Only servers constructed with an ``environment`` runtime accept
        it — a PDP whose environment lives elsewhere must not pretend
        to be its authority.  Actions:

        * ``{"op": "env", "action": "set", "name": ..., "value": ...}``
          — write one state variable (a sensor event);
        * ``{"op": "env", "action": "move", "subject": ...,
          "zone": ...}`` — a location update through the
          :class:`~repro.env.location.LocationService`;
        * ``{"op": "env", "action": "advance", "seconds": N}`` — step a
          *simulated* clock (tests/smoke drills; a system clock
          refuses);
        * ``{"op": "env", "action": "define_time_role", "name": ...,
          "start": "19:00", "end": "22:00", "weekdays": false}`` —
          register and bind a temporal environment role (§5.1's
          free-time shape) in the default tenant's policy;
        * ``{"op": "env", "action": "define_location_role",
          "name": ..., "subject": ..., "zone": ...}`` — an
          environment role active while ``subject`` is in ``zone``.

        Every action answers with the post-action snapshot revision and
        active-role census.  Side effects — role flips, cache
        invalidation, pushed revocations — happen synchronously on the
        bus before the answer is written, so a client that sees the
        reply knows every revocation it caused has been queued.
        """
        request_id = payload.get("id")
        runtime = self.environment
        if runtime is None:
            await respond(
                {
                    "id": request_id,
                    "error": "this server has no live environment "
                    "(start serve with --continuous)",
                }
            )
            return
        action = payload.get("action")
        try:
            if action == "set":
                name = payload.get("name")
                if not isinstance(name, str) or not name:
                    raise ServiceError("'name' must be a non-empty string")
                runtime.state.set(name, payload.get("value"))
            elif action == "move":
                subject = payload.get("subject")
                zone = payload.get("zone")
                if not isinstance(subject, str) or not isinstance(zone, str):
                    raise ServiceError(
                        "'subject' and 'zone' must be strings"
                    )
                runtime.location.move(subject, zone)
            elif action == "advance":
                seconds = payload.get("seconds")
                if not isinstance(seconds, (int, float)) or seconds < 0:
                    raise ServiceError("'seconds' must be a number >= 0")
                advance = getattr(runtime.clock, "advance", None)
                if advance is None:
                    raise ServiceError(
                        "this server's clock is not simulated"
                    )
                advance(seconds=float(seconds))
            elif action == "define_time_role":
                from repro.env.temporal import time_window, weekdays

                name = payload.get("name")
                start = payload.get("start")
                end = payload.get("end")
                if not all(
                    isinstance(value, str) and value
                    for value in (name, start, end)
                ):
                    raise ServiceError(
                        "'name', 'start', 'end' must be non-empty strings"
                    )
                expression = time_window(start, end)
                if payload.get("weekdays"):
                    expression = weekdays() & expression
                runtime.define_time_role(self.pdp.policy, name, expression)
            elif action == "define_location_role":
                name = payload.get("name")
                subject = payload.get("subject")
                zone = payload.get("zone")
                if not all(
                    isinstance(value, str) and value
                    for value in (name, subject, zone)
                ):
                    raise ServiceError(
                        "'name', 'subject', 'zone' must be non-empty strings"
                    )
                runtime.define_location_role(
                    self.pdp.policy, name, subject, zone
                )
            else:
                raise ServiceError(
                    "'action' must be one of set/move/advance/"
                    "define_time_role/define_location_role"
                )
        except ServiceError as error:
            await respond({"id": request_id, "error": str(error)})
            return
        except Exception as error:  # noqa: BLE001 - env errors answer, not kill
            await respond({"id": request_id, "error": str(error)})
            return
        await respond(
            {
                "op": "env",
                "id": request_id,
                "revision": runtime.revision,
                "active": sorted(runtime.active_roles()),
            }
        )

    async def _handle_two_phase(self, op: str, payload: dict, respond) -> None:
        """The cluster reload ops: prepare / activate / abort.

        ``reload_prepare`` validates and compiles the candidate and
        answers with a ``token``; ``reload_activate`` swaps a prepared
        token in (the cheap, non-rejectable phase the supervisor fans
        out only after *every* worker prepared); ``reload_abort``
        discards one.  All three are admin-gated like ``reload``.
        """
        request_id = payload.get("id")
        administrator = self.administrator
        if administrator is None:
            await respond(
                {
                    "id": request_id,
                    "error": "policy administration is not enabled "
                    "on this server",
                }
            )
            return
        actor = payload.get("actor", "")
        if not isinstance(actor, str):
            await respond(
                {"id": request_id, "error": "'actor' must be a string"}
            )
            return
        actor = actor or "wire"
        if op == "reload_prepare":
            policy_text = payload.get("policy")
            if not isinstance(policy_text, str) or not policy_text.strip():
                await respond(
                    {
                        "id": request_id,
                        "error": "'policy' must be non-empty policy text "
                        "(DSL or serialized JSON)",
                    }
                )
                return
            prepared = administrator.prepare(policy_text, actor=actor)
            await respond(
                {
                    "op": op,
                    "id": request_id,
                    "accepted": prepared.accepted,
                    "token": prepared.token,
                    "error": prepared.error,
                    "record": prepared.record.to_dict(),
                }
            )
            return
        token = payload.get("token")
        if not isinstance(token, str) or not token:
            await respond(
                {
                    "id": request_id,
                    "error": "'token' must be a non-empty string",
                }
            )
            return
        if op == "reload_activate":
            result = administrator.activate_prepared(token, actor=actor)
            await respond(
                {
                    "op": op,
                    "id": request_id,
                    "accepted": result.accepted,
                    "error": result.error,
                    "generation": result.generation,
                    "record": result.record.to_dict(),
                }
            )
            return
        aborted = administrator.abort_prepared(token, actor=actor)
        await respond(
            {
                "op": op,
                "id": request_id,
                "aborted": aborted,
                "error": "" if aborted else f"unknown prepare token {token!r}",
            }
        )

    async def _handle_reload(self, payload: dict, respond) -> None:
        request_id = payload.get("id")
        tenant = payload.get("tenant")
        if tenant is not None:
            if not isinstance(tenant, str) or not tenant:
                await respond(
                    {
                        "id": request_id,
                        "error": "'tenant' must be a non-empty string",
                    }
                )
                return
            if tenant != DEFAULT_TENANT:
                await self._handle_tenant_reload(
                    request_id, tenant, payload, respond
                )
                return
        administrator = self.administrator
        if administrator is None:
            await respond(
                {
                    "id": request_id,
                    "error": "policy administration is not enabled "
                    "on this server",
                }
            )
            return
        policy_text = payload.get("policy")
        if not isinstance(policy_text, str) or not policy_text.strip():
            await respond(
                {
                    "id": request_id,
                    "error": "'policy' must be non-empty policy text "
                    "(DSL or serialized JSON)",
                }
            )
            return
        actor = payload.get("actor", "")
        if not isinstance(actor, str):
            await respond(
                {"id": request_id, "error": "'actor' must be a string"}
            )
            return
        dry_run = payload.get("dry_run", False)
        if not isinstance(dry_run, bool):
            await respond(
                {"id": request_id, "error": "'dry_run' must be a boolean"}
            )
            return
        result = administrator.reload(
            policy_text, actor=actor or "wire", dry_run=dry_run
        )
        await respond(
            {
                "op": "reload",
                "id": request_id,
                "accepted": result.accepted,
                "dry_run": result.dry_run,
                "error": result.error,
                "record": result.record.to_dict(),
            }
        )

    async def _handle_tenant_reload(
        self, request_id: object, tenant: str, payload: dict, respond
    ) -> None:
        """Tenant-scoped ``reload``: store-gated or per-tenant admin.

        Three shapes, mirroring ``POST /reload?tenant=`` on the admin
        sidecar:

        * store-backed tenant **with** policy text — ``put`` +
          ``activate`` through the store's lint gate, then refresh the
          PDP's resolution (generation bump drops stale cache lines);
        * store-backed tenant **without** text — refresh only, for
          activations done out-of-band (CLI, another process);
        * pinned tenant with text — a lazily-created per-tenant
          :class:`~repro.policy.admin.PolicyAdministrator` applies the
          same lint/diff/audit gate as the default path.
        """
        actor = payload.get("actor", "")
        if not isinstance(actor, str):
            await respond(
                {"id": request_id, "error": "'actor' must be a string"}
            )
            return
        dry_run = payload.get("dry_run", False)
        if not isinstance(dry_run, bool):
            await respond(
                {"id": request_id, "error": "'dry_run' must be a boolean"}
            )
            return
        policy_text = payload.get("policy")
        if policy_text is not None and (
            not isinstance(policy_text, str) or not policy_text.strip()
        ):
            await respond(
                {
                    "id": request_id,
                    "error": "'policy' must be non-empty policy text "
                    "when present",
                }
            )
            return
        store = self.pdp.store
        if store is not None and tenant in store:
            if dry_run:
                await respond(
                    {
                        "id": request_id,
                        "error": "dry_run is not supported for "
                        "store-backed tenants (activate gates instead)",
                    }
                )
                return
            try:
                if policy_text is not None:
                    version = store.put(
                        tenant,
                        policy_text,
                        actor=actor or "wire",
                        note="wire reload",
                    )
                    store.activate(
                        tenant, version.version, actor=actor or "wire"
                    )
                generation = self.pdp.refresh_tenant(tenant)
            except (PolicyStoreError, ServiceError) as error:
                await respond(
                    {
                        "op": "reload",
                        "id": request_id,
                        "tenant": tenant,
                        "accepted": False,
                        "dry_run": False,
                        "error": str(error),
                    }
                )
                return
            await respond(
                {
                    "op": "reload",
                    "id": request_id,
                    "tenant": tenant,
                    "accepted": True,
                    "dry_run": False,
                    "error": None,
                    "version": store.active_version(tenant),
                    "generation": generation,
                }
            )
            return
        if policy_text is None:
            await respond(
                {
                    "id": request_id,
                    "error": f"unknown store tenant {tenant!r} "
                    "(reload without 'policy' refreshes from the store)",
                }
            )
            return
        if self.administrator is None:
            await respond(
                {
                    "id": request_id,
                    "error": "policy administration is not enabled "
                    "on this server",
                }
            )
            return
        if tenant not in self.pdp.tenants():
            await respond(
                {"id": request_id, "error": f"unknown tenant {tenant!r}"}
            )
            return
        admin = self._tenant_admins.get(tenant)
        if admin is None:
            from repro.policy.admin import PolicyAdministrator

            admin = PolicyAdministrator(
                _TenantAdminTarget(self.pdp, tenant),
                fail_on=getattr(self.administrator, "fail_on", "error"),
            )
            self._tenant_admins[tenant] = admin
        result = admin.reload(
            policy_text, actor=actor or "wire", dry_run=dry_run
        )
        await respond(
            {
                "op": "reload",
                "id": request_id,
                "tenant": tenant,
                "accepted": result.accepted,
                "dry_run": result.dry_run,
                "error": result.error,
                "record": result.record.to_dict(),
            }
        )


class _TenantAdminTarget:
    """Adapter exposing one tenant of a PDP as an administrator target
    (the ``policy`` / ``swap_policy(policy) -> int`` protocol)."""

    def __init__(self, pdp: PolicyDecisionPoint, tenant: str) -> None:
        self._pdp = pdp
        self.tenant = tenant
        self.metrics = pdp.metrics

    @property
    def policy(self):
        return self._pdp.tenant_policy(self.tenant)

    def swap_policy(self, policy) -> int:
        return self._pdp.swap_policy(policy, tenant=self.tenant)
