"""The admin HTTP sidecar: scrape and poke a PDP with plain HTTP.

The NDJSON protocol is the PDP's data plane; operations tooling —
Prometheus scrapers, load-balancer health checks, ``curl`` — speaks
HTTP.  :class:`AdminServer` is a deliberately tiny HTTP/1.0-style
listener (stdlib asyncio only, one response per connection) bound to
a separate port (``repro serve --admin-port``) so a scraper can never
occupy a decision-plane connection slot:

=========================  ==================================================
``GET /metrics``           Prometheus text exposition (0.0.4), whole stack
``GET /metrics.json``      the same registry snapshot as JSON
``GET /health``            liveness + SLO state; 200 while serving, 503 after
``GET /ready``             admission headroom; 200 ready / 503 not ready
``GET /dump``              flight-recorder entries; ``?limit=&since_seq=&``
                           ``subject=&outcome=`` filters
``GET /tenants``           one summary row per tenant: store lineage merged
                           with live serving state and counters
``GET /traces``            retained distributed-trace ids, newest first
                           (``?limit=`` caps the listing)
``GET /trace/<id>``        this process's spans for one trace id; 404 with
                           an empty span list when nothing is retained
``POST /reload``           validated hot-reload; the request body is the
                           candidate policy (DSL or serialized JSON),
                           ``?actor=&dry_run=1`` qualify it.  200 on an
                           applied (or clean dry-run) candidate, 422 on a
                           rejected one — body is the audited ReloadRecord
                           either way.  404 unless the server was built
                           with an administrator.  ``?tenant=NAME`` scopes
                           the reload: store-backed tenants go through the
                           store's put+activate lint gate (an **empty**
                           body then refreshes the PDP from the store's
                           current active version), pinned tenants through
                           a per-tenant administrator.
=========================  ==================================================

Connections are read under a deadline (:attr:`AdminServer.read_timeout_s`,
408 on expiry) with hard size caps on the header block and body (413) —
a stalled or oversized scrape connection can hold a handler slot at
most one deadline long, never forever.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import PolicyStoreError, ServiceError
from repro.service.pdp import DEFAULT_TENANT, PolicyDecisionPoint

#: Request line + headers must fit in this; admin requests are tiny.
_MAX_REQUEST_BYTES = 8 * 1024

#: Upper bound on a request body (the /reload policy text).
_MAX_BODY_BYTES = 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    503: "Service Unavailable",
}

#: Content type Prometheus scrapers expect for the text format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _BadRequest(Exception):
    """Internal: abort request reading with a specific status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class AdminServer:
    """Serves a PDP's live-ops surface over HTTP.

    :param pdp: the decision point to expose (read-only access).
    :param host: bind address (default loopback).
    :param port: bind port; 0 picks an ephemeral port — read
        :attr:`port` after :meth:`start`.
    :param administrator: optional
        :class:`~repro.policy.admin.PolicyAdministrator`; enables
        ``POST /reload``.  Without one the route 404s, so a scrape-only
        sidecar exposes no mutation surface at all.
    :param read_timeout_s: deadline for reading one full request
        (request line, headers, body).  A connection that has not
        produced a complete request by then is answered 408 and closed.
    """

    def __init__(
        self,
        pdp: PolicyDecisionPoint,
        host: str = "127.0.0.1",
        port: int = 0,
        administrator: Optional[object] = None,
        read_timeout_s: float = 5.0,
    ) -> None:
        if read_timeout_s <= 0:
            raise ServiceError("read_timeout_s must be > 0")
        self.pdp = pdp
        self.host = host
        self.administrator = administrator
        self.read_timeout_s = read_timeout_s
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self.requests_served = 0
        #: Connections dropped for blowing the read deadline (408).
        self.read_timeouts = 0
        #: Lazily-created per-tenant administrators for pinned
        #: (non-store) tenants reloaded via ``POST /reload?tenant=``.
        self._tenant_admins: Dict[str, object] = {}

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise ServiceError("admin server is not listening")
        return self._server.sockets[0].getsockname()[1]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AdminServer":
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self._requested_port,
            limit=_MAX_REQUEST_BYTES,
        )
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "AdminServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # HTTP handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                # One deadline covers the whole read: a peer that
                # stalls mid-headers or trickles a body cannot hold
                # this handler longer than read_timeout_s.
                request_line, body = await asyncio.wait_for(
                    self._read_request(reader), timeout=self.read_timeout_s
                )
            except asyncio.TimeoutError:
                self.read_timeouts += 1
                writer.write(
                    self._response(
                        408, "text/plain", b"request read deadline expired\n"
                    )
                )
                await writer.drain()
                return
            except _BadRequest as refused:
                writer.write(
                    self._response(
                        refused.status,
                        "text/plain",
                        f"{refused.message}\n".encode("utf-8"),
                    )
                )
                await writer.drain()
                return
            status, content_type, response_body = self._route(
                request_line, body
            )
            self.requests_served += 1
            writer.write(self._response(status, content_type, response_body))
            await writer.drain()
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
            ValueError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[bytes, bytes]:
        """Read one request: line, capped headers, capped body.

        :raises _BadRequest: 413 when the header block or declared
            body outgrows its cap.
        """
        request_line = await reader.readline()
        header_bytes = len(request_line)
        content_length = 0
        while True:
            header = await reader.readline()
            header_bytes += len(header)
            if header_bytes > _MAX_REQUEST_BYTES:
                raise _BadRequest(
                    413,
                    f"request head exceeds {_MAX_REQUEST_BYTES} bytes",
                )
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.partition(b":")
            if name.strip().lower() == b"content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _BadRequest(
                        400, "malformed Content-Length header"
                    ) from None
        if content_length < 0:
            raise _BadRequest(400, "malformed Content-Length header")
        if content_length > _MAX_BODY_BYTES:
            raise _BadRequest(
                413, f"request body exceeds {_MAX_BODY_BYTES} bytes"
            )
        body = b""
        if content_length:
            try:
                body = await reader.readexactly(content_length)
            except asyncio.IncompleteReadError as error:
                raise _BadRequest(
                    400, "request body shorter than Content-Length"
                ) from error
        return request_line, body

    @staticmethod
    def _response(status: int, content_type: str, body: bytes) -> bytes:
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        return head.encode("ascii") + body

    def _route(
        self, request_line: bytes, body: bytes
    ) -> Tuple[int, str, bytes]:
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            return 400, "text/plain", b"malformed request line\n"
        split = urlsplit(target)
        path = split.path
        query = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        if path == "/reload":
            if self.administrator is None:
                return 404, "text/plain", b"unknown path\n"
            if method != "POST":
                return 405, "text/plain", b"/reload requires POST\n"
            return self._handle_reload(query, body)
        if method != "GET":
            return 405, "text/plain", b"only GET is supported\n"
        if path == "/metrics":
            return (
                200,
                PROMETHEUS_CONTENT_TYPE,
                self.pdp.metrics_prometheus().encode("utf-8"),
            )
        if path == "/metrics.json":
            return 200, "application/json", _json(self.pdp.metrics_json())
        if path == "/health":
            health = self.pdp.health()
            return (
                200 if health["healthy"] else 503,
                "application/json",
                _json(health),
            )
        if path == "/ready":
            ready = self.pdp.ready()
            return (
                200 if ready["ready"] else 503,
                "application/json",
                _json(ready),
            )
        if path == "/dump":
            try:
                entries = self.pdp.dump(
                    limit=_int_param(query, "limit"),
                    since_seq=_int_param(query, "since_seq") or 0,
                    subject=query.get("subject"),
                    outcome=query.get("outcome"),
                )
            except ValueError as error:
                return 400, "text/plain", f"{error}\n".encode("utf-8")
            return 200, "application/json", _json({"entries": entries})
        if path == "/tenants":
            return (
                200,
                "application/json",
                _json({"tenants": self.pdp.tenants_overview()}),
            )
        if path == "/traces":
            try:
                limit = _int_param(query, "limit")
            except ValueError as error:
                return 400, "text/plain", f"{error}\n".encode("utf-8")
            return (
                200,
                "application/json",
                _json({"trace_ids": self.pdp.recent_traces(limit)}),
            )
        if path.startswith("/trace/"):
            trace_id = path[len("/trace/"):]
            if not trace_id:
                return 400, "text/plain", b"missing trace id\n"
            spans = self.pdp.find_trace(trace_id)
            if not spans:
                return (
                    404,
                    "application/json",
                    _json({"trace_id": trace_id, "spans": []}),
                )
            return (
                200,
                "application/json",
                _json({"trace_id": trace_id, "spans": spans}),
            )
        return 404, "text/plain", b"unknown path\n"

    def _handle_reload(
        self, query: Dict[str, str], body: bytes
    ) -> Tuple[int, str, bytes]:
        """``POST /reload``: the body is the candidate policy text."""
        try:
            policy_text = body.decode("utf-8")
        except UnicodeDecodeError:
            return 400, "text/plain", b"policy body must be UTF-8 text\n"
        tenant = query.get("tenant")
        actor = query.get("actor", "") or "admin-http"
        dry_run = query.get("dry_run", "").lower() in ("1", "true", "yes")
        if tenant is not None and tenant != DEFAULT_TENANT:
            return self._handle_tenant_reload(
                tenant, policy_text, actor, dry_run
            )
        if not policy_text.strip():
            return (
                400,
                "text/plain",
                b"empty body; POST the candidate policy (DSL or JSON)\n",
            )
        result = self.administrator.reload(  # type: ignore[attr-defined]
            policy_text,
            actor=actor,
            dry_run=dry_run,
        )
        payload = {
            "accepted": result.accepted,
            "dry_run": result.dry_run,
            "error": result.error,
            "record": result.record.to_dict(),
        }
        # A rejected candidate is a *content* problem: 422, with the
        # audited record explaining why, and the old policy serving.
        status = 200 if not result.error else 422
        return status, "application/json", _json(payload)

    def _handle_tenant_reload(
        self, tenant: str, policy_text: str, actor: str, dry_run: bool
    ) -> Tuple[int, str, bytes]:
        """``POST /reload?tenant=``: store-gated or per-tenant admin.

        Mirrors the wire protocol's tenant-scoped ``reload`` op —
        store-backed tenants ``put`` + ``activate`` (an empty body
        means refresh-only), pinned tenants go through a lazily-built
        per-tenant :class:`~repro.policy.admin.PolicyAdministrator`.
        """
        store = self.pdp.store
        if store is not None and tenant in store:
            if dry_run:
                return (
                    400,
                    "text/plain",
                    b"dry_run is not supported for store-backed tenants\n",
                )
            try:
                if policy_text.strip():
                    version = store.put(
                        tenant, policy_text, actor=actor, note="admin-http"
                    )
                    store.activate(tenant, version.version, actor=actor)
                generation = self.pdp.refresh_tenant(tenant)
            except (PolicyStoreError, ServiceError) as error:
                return (
                    422,
                    "application/json",
                    _json(
                        {
                            "tenant": tenant,
                            "accepted": False,
                            "error": str(error),
                        }
                    ),
                )
            return (
                200,
                "application/json",
                _json(
                    {
                        "tenant": tenant,
                        "accepted": True,
                        "error": "",
                        "version": store.active_version(tenant),
                        "generation": generation,
                    }
                ),
            )
        if not policy_text.strip():
            return (
                400,
                "text/plain",
                f"unknown store tenant {tenant!r} (an empty body "
                "refreshes a store-backed tenant)\n".encode("utf-8"),
            )
        if tenant not in self.pdp.tenants():
            return (
                404,
                "text/plain",
                f"unknown tenant {tenant!r}\n".encode("utf-8"),
            )
        admin = self._tenant_admins.get(tenant)
        if admin is None:
            from repro.policy.admin import PolicyAdministrator
            from repro.service.server import _TenantAdminTarget

            admin = PolicyAdministrator(
                _TenantAdminTarget(self.pdp, tenant),
                fail_on=getattr(self.administrator, "fail_on", "error"),
            )
            self._tenant_admins[tenant] = admin
        result = admin.reload(policy_text, actor=actor, dry_run=dry_run)
        payload = {
            "tenant": tenant,
            "accepted": result.accepted,
            "dry_run": result.dry_run,
            "error": result.error,
            "record": result.record.to_dict(),
        }
        return (200 if not result.error else 422), "application/json", _json(
            payload
        )


def _json(payload: Dict[str, object]) -> bytes:
    return (json.dumps(payload, indent=2) + "\n").encode("utf-8")


def _int_param(query: Dict[str, str], name: str) -> Optional[int]:
    raw = query.get(name)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"query parameter {name!r} must be an integer") from None
