"""The admin HTTP sidecar: scrape and poke a PDP with plain HTTP.

The NDJSON protocol is the PDP's data plane; operations tooling —
Prometheus scrapers, load-balancer health checks, ``curl`` — speaks
HTTP.  :class:`AdminServer` is a deliberately tiny HTTP/1.0-style
listener (stdlib asyncio only, one response per connection) bound to
a separate port (``repro serve --admin-port``) so a scraper can never
occupy a decision-plane connection slot:

======================  =====================================================
``GET /metrics``        Prometheus text exposition (0.0.4), whole stack
``GET /metrics.json``   the same registry snapshot as JSON
``GET /health``         liveness + SLO state; 200 while serving, 503 after
``GET /ready``          admission headroom; 200 ready / 503 not ready
``GET /dump``           flight-recorder entries; ``?limit=&since_seq=&``
                        ``subject=&outcome=`` filters
======================  =====================================================
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import ServiceError
from repro.service.pdp import PolicyDecisionPoint

#: Request line + headers must fit in this; admin requests are tiny.
_MAX_REQUEST_BYTES = 8 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}

#: Content type Prometheus scrapers expect for the text format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class AdminServer:
    """Serves a PDP's live-ops surface over HTTP.

    :param pdp: the decision point to expose (read-only access).
    :param host: bind address (default loopback).
    :param port: bind port; 0 picks an ephemeral port — read
        :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        pdp: PolicyDecisionPoint,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.pdp = pdp
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self.requests_served = 0

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise ServiceError("admin server is not listening")
        return self._server.sockets[0].getsockname()[1]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AdminServer":
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self._requested_port,
            limit=_MAX_REQUEST_BYTES,
        )
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "AdminServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # HTTP handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            # Drain headers (ignored) until the blank line.
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            status, content_type, body = self._route(request_line)
            self.requests_served += 1
            writer.write(self._response(status, content_type, body))
            await writer.drain()
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
            ValueError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    def _response(status: int, content_type: str, body: bytes) -> bytes:
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        return head.encode("ascii") + body

    def _route(self, request_line: bytes) -> Tuple[int, str, bytes]:
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            return 400, "text/plain", b"malformed request line\n"
        if method != "GET":
            return 405, "text/plain", b"only GET is supported\n"
        split = urlsplit(target)
        path = split.path
        query = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        if path == "/metrics":
            return (
                200,
                PROMETHEUS_CONTENT_TYPE,
                self.pdp.metrics_prometheus().encode("utf-8"),
            )
        if path == "/metrics.json":
            return 200, "application/json", _json(self.pdp.metrics_json())
        if path == "/health":
            health = self.pdp.health()
            return (
                200 if health["healthy"] else 503,
                "application/json",
                _json(health),
            )
        if path == "/ready":
            ready = self.pdp.ready()
            return (
                200 if ready["ready"] else 503,
                "application/json",
                _json(ready),
            )
        if path == "/dump":
            try:
                entries = self.pdp.dump(
                    limit=_int_param(query, "limit"),
                    since_seq=_int_param(query, "since_seq") or 0,
                    subject=query.get("subject"),
                    outcome=query.get("outcome"),
                )
            except ValueError as error:
                return 400, "text/plain", f"{error}\n".encode("utf-8")
            return 200, "application/json", _json({"entries": entries})
        return 404, "text/plain", b"unknown path\n"


def _json(payload: Dict[str, object]) -> bytes:
    return (json.dumps(payload, indent=2) + "\n").encode("utf-8")


def _int_param(query: Dict[str, str], name: str) -> Optional[int]:
    raw = query.get(name)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"query parameter {name!r} must be an integer") from None
