"""Async TCP client for a remote PDP (newline-delimited JSON).

:class:`RemotePDPClient` keeps one connection and pipelines: each
in-flight request is tracked by id in a pending-future table, a single
reader task dispatches responses as they arrive (they may be
reordered by the server — cache hits overtake batched work), and any
number of callers can await decisions concurrently.  The surface
mirrors the in-process :class:`~repro.service.pdp.PDPClient` so load
generators and examples can target either transparently.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, FrozenSet, List, Optional, Set

from repro.core.decision import AccessRequest
from repro.exceptions import ServiceError
from repro.service.protocol import (
    MAX_OP_LINE_BYTES,
    WireResponse,
    decode_response,
    dumps_line,
    encode_request,
    parse_line,
)


class RemotePDPClient:
    """One pipelined connection to a :class:`~repro.service.server.PDPServer`.

    Use as an async context manager::

        async with await RemotePDPClient.connect("127.0.0.1", 7471) as pdp:
            granted = await pdp.check("alice", "watch", "livingroom/tv",
                                      environment_roles={"weekday-free-time"})
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: Dict[Any, "asyncio.Future[dict]"] = {}
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(cls, host: str, port: int) -> "RemotePDPClient":
        # The read limit is the op-response cap: a metrics exposition
        # line is much larger than any decision response.
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_OP_LINE_BYTES
        )
        return cls(reader, writer)

    async def __aenter__(self) -> "RemotePDPClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def decide(
        self,
        request: AccessRequest,
        environment_roles: Optional[Set[str]] = None,
        timeout_ms: Optional[float] = None,
    ) -> WireResponse:
        """Submit one request and await its wire response."""
        env: Optional[FrozenSet[str]] = (
            frozenset(environment_roles) if environment_roles is not None else None
        )
        request_id = next(self._ids)
        payload = encode_request(request, request_id, env=env, timeout_ms=timeout_ms)
        raw = await self._roundtrip(request_id, payload)
        return decode_response(raw)

    async def check(
        self,
        subject: str,
        transaction: str,
        obj: str,
        environment_roles: Optional[Set[str]] = None,
        timeout_ms: Optional[float] = None,
    ) -> bool:
        request = AccessRequest(transaction=transaction, obj=obj, subject=subject)
        response = await self.decide(
            request, environment_roles=environment_roles, timeout_ms=timeout_ms
        )
        return response.granted

    async def ping(self) -> bool:
        request_id = next(self._ids)
        raw = await self._roundtrip(request_id, {"op": "ping", "id": request_id})
        return raw.get("op") == "pong"

    async def stats(self) -> Dict[str, Any]:
        """The server-side PDP's :meth:`stats` snapshot."""
        request_id = next(self._ids)
        raw = await self._roundtrip(request_id, {"op": "stats", "id": request_id})
        stats = raw.get("stats")
        if not isinstance(stats, dict):
            raise ServiceError(f"bad stats response: {raw!r}")
        return stats

    async def metrics(self) -> Dict[str, Any]:
        """The server's metrics exposition.

        :returns: ``{"prometheus": <text exposition>, "json":
            <registry snapshot>}``.
        """
        request_id = next(self._ids)
        raw = await self._roundtrip(
            request_id, {"op": "metrics", "id": request_id}
        )
        if "prometheus" not in raw or "json" not in raw:
            raise ServiceError(f"bad metrics response: {raw!r}")
        return {"prometheus": raw["prometheus"], "json": raw["json"]}

    async def health(self) -> Dict[str, Any]:
        """The server's ``health`` body (liveness + SLO state)."""
        request_id = next(self._ids)
        raw = await self._roundtrip(
            request_id, {"op": "health", "id": request_id}
        )
        if "healthy" not in raw:
            raise ServiceError(f"bad health response: {raw!r}")
        return raw

    async def ready(self) -> Dict[str, Any]:
        """The server's ``ready`` body (admission headroom)."""
        request_id = next(self._ids)
        raw = await self._roundtrip(
            request_id, {"op": "ready", "id": request_id}
        )
        if "ready" not in raw:
            raise ServiceError(f"bad ready response: {raw!r}")
        return raw

    async def reload(
        self,
        policy_text: str,
        actor: str = "",
        dry_run: bool = False,
    ) -> Dict[str, Any]:
        """Ask the server to hot-reload ``policy_text`` (DSL or JSON).

        :returns: ``{"accepted": bool, "dry_run": bool, "error": str,
            "record": {...}}`` — the audited
            :class:`~repro.policy.admin.ReloadRecord` as a dict.
        :raises ServiceError: when the server has no administrator or
            the message itself was malformed (a *rejected candidate*
            is not an exception — read ``accepted``/``error``).
        """
        request_id = next(self._ids)
        raw = await self._roundtrip(
            request_id,
            {
                "op": "reload",
                "id": request_id,
                "policy": policy_text,
                "actor": actor,
                "dry_run": dry_run,
            },
        )
        if raw.get("op") != "reload" or "accepted" not in raw:
            raise ServiceError(
                f"bad reload response: {raw.get('error', raw)!r}"
            )
        return {
            "accepted": raw["accepted"],
            "dry_run": raw.get("dry_run", dry_run),
            "error": raw.get("error", ""),
            "record": raw.get("record", {}),
        }

    async def dump(
        self,
        limit: Optional[int] = None,
        since_seq: int = 0,
        subject: Optional[str] = None,
        outcome: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Flight-recorder entries from the server (oldest first)."""
        request_id = next(self._ids)
        payload: Dict[str, Any] = {
            "op": "dump",
            "id": request_id,
            "since_seq": since_seq,
        }
        if limit is not None:
            payload["limit"] = limit
        if subject is not None:
            payload["subject"] = subject
        if outcome is not None:
            payload["outcome"] = outcome
        raw = await self._roundtrip(request_id, payload)
        entries = raw.get("entries")
        if not isinstance(entries, list):
            raise ServiceError(f"bad dump response: {raw!r}")
        return entries

    # ------------------------------------------------------------------
    # Transport internals
    # ------------------------------------------------------------------
    async def _roundtrip(self, request_id: Any, payload: dict) -> dict:
        if self._closed:
            raise ServiceError("client is closed")
        future: "asyncio.Future[dict]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[request_id] = future
        try:
            async with self._write_lock:
                self._writer.write(dumps_line(payload))
                await self._writer.drain()
            return await future
        finally:
            self._pending.pop(request_id, None)

    async def _read_loop(self) -> None:
        error: Optional[Exception] = None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    payload = parse_line(
                        line.strip(), max_bytes=MAX_OP_LINE_BYTES
                    )
                except ServiceError:
                    continue  # garbage line; keep the stream alive
                future = self._pending.get(payload.get("id"))
                if future is not None and not future.done():
                    future.set_result(payload)
        except (ConnectionResetError, asyncio.IncompleteReadError) as exc:
            error = exc
        except asyncio.CancelledError:
            error = ServiceError("client closed")
        # Fail anything still waiting so callers never hang on EOF.
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    error or ServiceError("connection closed by server")
                )

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
