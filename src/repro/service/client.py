"""Async TCP client for a remote PDP (NDJSON, plus the binary lane).

:class:`RemotePDPClient` keeps one connection and pipelines: each
in-flight request is tracked by id in a pending-future table, a single
reader task dispatches responses as they arrive (they may be
reordered by the server — cache hits overtake batched work), and any
number of callers can await decisions concurrently.  The surface
mirrors the in-process :class:`~repro.service.pdp.PDPClient` so load
generators and examples can target either transparently.

``wire="binary"`` adds the interned-ID fast lane of
:mod:`repro.service.protocol`: the client runs the ``intern``
handshake on connect and encodes eligible decision requests as
fixed-layout struct frames, falling back to NDJSON per request when a
name is not interned, the request carries role claims, or a timeout
rides along.  Control ops always speak NDJSON.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set

from repro.core.decision import AccessRequest
from repro.exceptions import ServiceError
from repro.obs.trace import TraceContext
from repro.service.protocol import (
    BINARY_MAGIC,
    KIND_ERROR,
    KIND_RESPONSE,
    KIND_REVOKE,
    MAX_OP_LINE_BYTES,
    InternTables,
    WireResponse,
    WireRevocation,
    decode_binary_error,
    decode_binary_response,
    decode_binary_revocation,
    decode_response,
    decode_revocation,
    dumps_line,
    encode_binary_request,
    encode_request,
    parse_line,
    read_frame_tail,
)


class RemotePDPClient:
    """One pipelined connection to a :class:`~repro.service.server.PDPServer`.

    Use as an async context manager::

        async with await RemotePDPClient.connect("127.0.0.1", 7471) as pdp:
            granted = await pdp.check("alice", "watch", "livingroom/tv",
                                      environment_roles={"weekday-free-time"})

    With ``wire="binary"`` the client runs the intern handshake on
    connect and ships interned-integer frames for every request the
    binary lane can carry (no role claims, no per-request timeout, all
    names interned); anything else transparently falls back to NDJSON
    on the same connection.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        wire: str = "json",
    ) -> None:
        if wire not in ("json", "binary"):
            raise ServiceError(f"unknown wire format {wire!r}")
        self.wire = wire
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: Dict[Any, "asyncio.Future[Any]"] = {}
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._tables: Optional[InternTables] = None
        #: Unsolicited grant withdrawals received on this connection,
        #: oldest first (continuous authorization; see
        #: :meth:`subscribe`).
        self.revocations: List[WireRevocation] = []
        self._revocation_handlers: List[
            Callable[[WireRevocation], None]
        ] = []
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(
        cls, host: str, port: int, wire: str = "json"
    ) -> "RemotePDPClient":
        # The read limit is the op-response cap: a metrics exposition
        # line is much larger than any decision response.
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_OP_LINE_BYTES
        )
        client = cls(reader, writer, wire=wire)
        if wire == "binary":
            await client.intern()
        return client

    async def intern(self, tenant: Optional[str] = None) -> InternTables:
        """Run (or re-run) the intern handshake.

        Fetches the server's current name<->id tables and pins them
        for this connection's binary lane.  Re-issue after a policy
        reload to pick up newly minted names — stale tables are never
        *unsafe* (an unknown or stale name fails mediation exactly as
        it would over NDJSON), just slower, since uninterned requests
        fall back to NDJSON.  ``tenant`` interns against that tenant's
        active policy instead of the default engine's — a client
        mostly talking to one tenant should intern against it.
        """
        request_id = next(self._ids)
        payload: Dict[str, Any] = {"op": "intern", "id": request_id}
        if tenant is not None:
            payload["tenant"] = tenant
        raw = await self._roundtrip(request_id, payload)
        if raw.get("op") != "intern":
            raise ServiceError(f"bad intern response: {raw!r}")
        self._tables = InternTables.from_payload(raw)
        return self._tables

    async def __aenter__(self) -> "RemotePDPClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def subscribe(self, handler: Callable[[WireRevocation], None]) -> None:
        """Register a callback for pushed grant revocations.

        ``handler(revocation)`` runs on the reader task, synchronously,
        for every unsolicited ``revoke`` the server pushes (on either
        wire lane); exceptions are swallowed so a broken handler cannot
        kill the connection.  Every revocation is also appended to
        :attr:`revocations` whether or not handlers are registered —
        polling callers need no callback at all.
        """
        self._revocation_handlers.append(handler)

    async def decide(
        self,
        request: AccessRequest,
        environment_roles: Optional[Set[str]] = None,
        timeout_ms: Optional[float] = None,
        tenant: Optional[str] = None,
        trace: Optional[TraceContext] = None,
        subscribe: bool = False,
    ) -> WireResponse:
        """Submit one request and await its wire response.

        ``tenant`` routes the decision to that tenant's engine; the
        server answers ``deny-unknown-tenant`` (never an error) for
        names it cannot resolve.  ``None`` is the default tenant and
        keeps the wire bytes identical to a tenantless client.
        ``trace`` rides both lanes as the compact trace-context
        segment; untraced requests stay byte-identical.

        ``subscribe=True`` asks a continuous-authorization server to
        keep watching a GRANT resolved against its live environment:
        when a supporting environment role later deactivates, the
        server pushes an unsolicited revoke (see :meth:`subscribe`
        and :attr:`revocations`).  Requests pinning an explicit
        ``environment_roles`` override are never watched — they are
        not claims about the live environment.
        """
        env: Optional[FrozenSet[str]] = (
            frozenset(environment_roles) if environment_roles is not None else None
        )
        request_id = next(self._ids)
        if self.wire == "binary" and self._tables is not None and timeout_ms is None:
            try:
                data = encode_binary_request(
                    self._tables,
                    request,
                    request_id,
                    env=env,
                    tenant=tenant,
                    trace=trace,
                    subscribe=subscribe,
                )
            except ServiceError:
                data = None  # uninterned name / claims: NDJSON lane
            if data is not None:
                raw = await self._send_and_wait(request_id, data)
                if isinstance(raw, WireResponse):
                    return raw
                return decode_response(raw)
        payload = encode_request(
            request,
            request_id,
            env=env,
            timeout_ms=timeout_ms,
            tenant=tenant,
            trace=trace,
            subscribe=subscribe,
        )
        raw = await self._roundtrip(request_id, payload)
        return decode_response(raw)

    async def check(
        self,
        subject: str,
        transaction: str,
        obj: str,
        environment_roles: Optional[Set[str]] = None,
        timeout_ms: Optional[float] = None,
        tenant: Optional[str] = None,
    ) -> bool:
        request = AccessRequest(transaction=transaction, obj=obj, subject=subject)
        response = await self.decide(
            request,
            environment_roles=environment_roles,
            timeout_ms=timeout_ms,
            tenant=tenant,
        )
        return response.granted

    async def ping(self) -> bool:
        request_id = next(self._ids)
        raw = await self._roundtrip(request_id, {"op": "ping", "id": request_id})
        return raw.get("op") == "pong"

    async def env(self, action: str, **fields: Any) -> Dict[str, Any]:
        """Drive the server's live environment (the ``env`` wire op).

        ``action`` is ``"set"`` (``name=``, ``value=``), ``"move"``
        (``subject=``, ``zone=``), or ``"advance"`` (``seconds=``, on
        simulated clocks).  Answers the post-action snapshot:
        ``{"revision": N, "active": [...]}``.  By the time this
        returns, every revocation the action caused has been pushed.

        :raises ServiceError: when the server has no live environment
            or the action was malformed.
        """
        request_id = next(self._ids)
        payload: Dict[str, Any] = {
            "op": "env",
            "id": request_id,
            "action": action,
            **fields,
        }
        raw = await self._roundtrip(request_id, payload)
        if raw.get("op") != "env" or "revision" not in raw:
            raise ServiceError(
                f"bad env response: {raw.get('error', raw)!r}"
            )
        return raw

    async def env_set(self, name: str, value: Any) -> Dict[str, Any]:
        """Write one environment state variable (a sensor event)."""
        return await self.env("set", name=name, value=value)

    async def env_move(self, subject: str, zone: str) -> Dict[str, Any]:
        """Report a subject's location to the server's environment."""
        return await self.env("move", subject=subject, zone=zone)

    async def stats(self) -> Dict[str, Any]:
        """The server-side PDP's :meth:`stats` snapshot."""
        request_id = next(self._ids)
        raw = await self._roundtrip(request_id, {"op": "stats", "id": request_id})
        stats = raw.get("stats")
        if not isinstance(stats, dict):
            raise ServiceError(f"bad stats response: {raw!r}")
        return stats

    async def metrics(self) -> Dict[str, Any]:
        """The server's metrics exposition.

        :returns: ``{"prometheus": <text exposition>, "json":
            <registry snapshot>}``.
        """
        request_id = next(self._ids)
        raw = await self._roundtrip(
            request_id, {"op": "metrics", "id": request_id}
        )
        if "prometheus" not in raw or "json" not in raw:
            raise ServiceError(f"bad metrics response: {raw!r}")
        return {"prometheus": raw["prometheus"], "json": raw["json"]}

    async def health(self) -> Dict[str, Any]:
        """The server's ``health`` body (liveness + SLO state)."""
        request_id = next(self._ids)
        raw = await self._roundtrip(
            request_id, {"op": "health", "id": request_id}
        )
        if "healthy" not in raw:
            raise ServiceError(f"bad health response: {raw!r}")
        return raw

    async def ready(self) -> Dict[str, Any]:
        """The server's ``ready`` body (admission headroom)."""
        request_id = next(self._ids)
        raw = await self._roundtrip(
            request_id, {"op": "ready", "id": request_id}
        )
        if "ready" not in raw:
            raise ServiceError(f"bad ready response: {raw!r}")
        return raw

    async def reload(
        self,
        policy_text: Optional[str] = None,
        actor: str = "",
        dry_run: bool = False,
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Ask the server to hot-reload ``policy_text`` (DSL or JSON).

        With ``tenant`` the reload is tenant-scoped: store-backed
        tenants go through ``put`` + ``activate`` (the store's lint
        gate), pinned tenants through a per-tenant administrator.
        ``policy_text=None`` is only meaningful with a store-backed
        tenant — it refreshes the PDP from the store's current active
        version without shipping text.

        :returns: ``{"accepted": bool, "dry_run": bool, "error": str,
            "record": {...}}`` — the audited
            :class:`~repro.policy.admin.ReloadRecord` as a dict
            (store-path reloads return ``version``/``generation``
            instead of a record).
        :raises ServiceError: when the server has no administrator or
            the message itself was malformed (a *rejected candidate*
            is not an exception — read ``accepted``/``error``).
        """
        request_id = next(self._ids)
        payload: Dict[str, Any] = {
            "op": "reload",
            "id": request_id,
            "actor": actor,
            "dry_run": dry_run,
        }
        if policy_text is not None:
            payload["policy"] = policy_text
        if tenant is not None:
            payload["tenant"] = tenant
        raw = await self._roundtrip(request_id, payload)
        if raw.get("op") != "reload" or "accepted" not in raw:
            raise ServiceError(
                f"bad reload response: {raw.get('error', raw)!r}"
            )
        result = {
            "accepted": raw["accepted"],
            "dry_run": raw.get("dry_run", dry_run),
            "error": raw.get("error", ""),
            "record": raw.get("record", {}),
        }
        for key in ("tenant", "version", "generation"):
            if key in raw:
                result[key] = raw[key]
        return result

    async def reload_prepare(
        self, policy_text: str, actor: str = ""
    ) -> Dict[str, Any]:
        """Phase one of a two-phase reload: validate and hold warm.

        The server parses, lints, diffs, and *compiles* the candidate
        but keeps serving the old policy; an accepted prepare returns
        a ``token`` to pass to :meth:`reload_activate` (or
        :meth:`reload_abort`).  A cluster supervisor prepares on every
        worker and activates only when all of them accepted.

        :returns: ``{"accepted": bool, "token": str|None,
            "error": str, "record": {...}}``.
        """
        request_id = next(self._ids)
        raw = await self._roundtrip(
            request_id,
            {
                "op": "reload_prepare",
                "id": request_id,
                "actor": actor,
                "policy": policy_text,
            },
        )
        if raw.get("op") != "reload_prepare" or "accepted" not in raw:
            raise ServiceError(
                f"bad reload_prepare response: {raw.get('error', raw)!r}"
            )
        return {
            "accepted": raw["accepted"],
            "token": raw.get("token"),
            "error": raw.get("error", ""),
            "record": raw.get("record", {}),
        }

    async def reload_activate(
        self, token: str, actor: str = ""
    ) -> Dict[str, Any]:
        """Phase two: atomically swap in the prepared candidate.

        :returns: ``{"accepted": bool, "error": str,
            "generation": int|None, "record": {...}}``.
        """
        request_id = next(self._ids)
        raw = await self._roundtrip(
            request_id,
            {
                "op": "reload_activate",
                "id": request_id,
                "actor": actor,
                "token": token,
            },
        )
        if raw.get("op") != "reload_activate" or "accepted" not in raw:
            raise ServiceError(
                f"bad reload_activate response: {raw.get('error', raw)!r}"
            )
        return {
            "accepted": raw["accepted"],
            "error": raw.get("error", ""),
            "generation": raw.get("generation"),
            "record": raw.get("record", {}),
        }

    async def reload_abort(self, token: str, actor: str = "") -> bool:
        """Discard a prepared candidate; ``True`` if it existed."""
        request_id = next(self._ids)
        raw = await self._roundtrip(
            request_id,
            {
                "op": "reload_abort",
                "id": request_id,
                "actor": actor,
                "token": token,
            },
        )
        if raw.get("op") != "reload_abort" or "aborted" not in raw:
            raise ServiceError(
                f"bad reload_abort response: {raw.get('error', raw)!r}"
            )
        return bool(raw["aborted"])

    async def tenants(self) -> List[Dict[str, Any]]:
        """The server's tenant overview (one summary row per tenant)."""
        request_id = next(self._ids)
        raw = await self._roundtrip(
            request_id, {"op": "tenants", "id": request_id}
        )
        rows = raw.get("tenants")
        if not isinstance(rows, list):
            raise ServiceError(f"bad tenants response: {raw!r}")
        return rows

    async def dump(
        self,
        limit: Optional[int] = None,
        since_seq: int = 0,
        subject: Optional[str] = None,
        outcome: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Flight-recorder entries from the server (oldest first)."""
        request_id = next(self._ids)
        payload: Dict[str, Any] = {
            "op": "dump",
            "id": request_id,
            "since_seq": since_seq,
        }
        if limit is not None:
            payload["limit"] = limit
        if subject is not None:
            payload["subject"] = subject
        if outcome is not None:
            payload["outcome"] = outcome
        raw = await self._roundtrip(request_id, payload)
        entries = raw.get("entries")
        if not isinstance(entries, list):
            raise ServiceError(f"bad dump response: {raw!r}")
        return entries

    async def trace(self, trace_id: str) -> List[Dict[str, Any]]:
        """The server's retained spans for ``trace_id`` (maybe []).

        One worker's contribution only; the cluster admin fans this
        out across workers and joins the results with the router's
        spans into the cross-process waterfall.
        """
        request_id = next(self._ids)
        raw = await self._roundtrip(
            request_id,
            {"op": "trace", "id": request_id, "trace_id": trace_id},
        )
        spans = raw.get("spans")
        if not isinstance(spans, list):
            raise ServiceError(f"bad trace response: {raw!r}")
        return spans

    # ------------------------------------------------------------------
    # Transport internals
    # ------------------------------------------------------------------
    async def _roundtrip(self, request_id: Any, payload: dict) -> dict:
        return await self._send_and_wait(request_id, dumps_line(payload))

    async def _send_and_wait(self, request_id: Any, data: bytes) -> Any:
        if self._closed:
            raise ServiceError("client is closed")
        future: "asyncio.Future[Any]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[request_id] = future
        try:
            async with self._write_lock:
                self._writer.write(data)
                await self._writer.drain()
            return await future
        finally:
            self._pending.pop(request_id, None)

    def _deliver_revocation(self, revocation: WireRevocation) -> None:
        self.revocations.append(revocation)
        for handler in self._revocation_handlers:
            try:
                handler(revocation)
            except Exception:  # noqa: BLE001 - a handler bug, not the wire
                pass

    def _dispatch_frame(self, kind: int, body: bytes) -> None:
        if kind == KIND_REVOKE:
            try:
                revocation = decode_binary_revocation(self._tables, body)
            except ServiceError:
                return  # undecodable push; the stream itself is fine
            self._deliver_revocation(revocation)
        elif kind == KIND_RESPONSE:
            response = decode_binary_response(body)
            future = self._pending.get(response.id)
            if future is not None and not future.done():
                future.set_result(response)
        elif kind == KIND_ERROR:
            request_id, message = decode_binary_error(body)
            future = (
                self._pending.get(request_id)
                if request_id is not None
                else None
            )
            if future is not None and not future.done():
                future.set_exception(
                    ServiceError(f"server rejected request: {message}")
                )

    async def _read_loop(self) -> None:
        error: Optional[Exception] = None
        try:
            while True:
                # Same per-message format detection as the server:
                # binary frames lead with the magic byte, NDJSON with
                # anything else — responses of both kinds interleave.
                try:
                    first = await self._reader.readexactly(1)
                except asyncio.IncompleteReadError:
                    break
                if first[0] == BINARY_MAGIC:
                    kind, body = await read_frame_tail(self._reader)
                    self._dispatch_frame(kind, body)
                    continue
                try:
                    rest = await self._reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as eof:
                    if not eof.partial:
                        break
                    rest = eof.partial
                try:
                    payload = parse_line(
                        (first + rest).strip(), max_bytes=MAX_OP_LINE_BYTES
                    )
                except ServiceError:
                    continue  # garbage line; keep the stream alive
                if payload.get("op") == "revoke":
                    # Unsolicited push — never matched against pending
                    # futures (its id names a *grant*, whose decide()
                    # future resolved long ago).
                    try:
                        self._deliver_revocation(decode_revocation(payload))
                    except ServiceError:
                        pass
                    continue
                future = self._pending.get(payload.get("id"))
                if future is not None and not future.done():
                    future.set_result(payload)
        except (ConnectionResetError, asyncio.IncompleteReadError) as exc:
            error = exc
        except ServiceError as exc:  # oversized or malformed frame
            error = exc
        except asyncio.CancelledError:
            error = ServiceError("client closed")
        # Fail anything still waiting so callers never hang on EOF.
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    error or ServiceError("connection closed by server")
                )

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
