"""Revision-keyed decision cache for the PDP.

The engine's internal LRU (PR 1) keys on the *resolved* active
environment set; the service-level cache keys on **revisions** instead:
``(policy.decision_revision, environment revision, request fields)``.
That makes invalidation automatic and observable — any policy mutation
or environment transition moves a revision counter (see
:mod:`repro.env.runtime` and :attr:`GrbacPolicy.decision_revision`),
the next lookup builds a different key, and the stale entry simply
never matches again.  Old-revision entries age out of the LRU tail.

Correctness argument (property-tested in
``tests/service/test_property_pdp.py``): a decision is a pure function
of (policy state, active environment, request).  Equal policy revision
implies equal policy state; equal environment revision implies an
equal active environment (both counters move *before* a changed value
can be observed); the remaining key fields pin the request.  So equal
keys imply equal decisions, and a hit can never serve a stale grant.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

from repro.core.decision import Decision
from repro.exceptions import ServiceError

CacheKey = Tuple[Hashable, ...]


class DecisionCache:
    """A bounded LRU of fully-rendered :class:`Decision` objects.

    :param capacity: maximum entries; 0 disables the cache (every
        ``get`` misses, ``put`` is a no-op).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 0:
            raise ServiceError("cache capacity must be >= 0")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, Decision]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Lookups the cache could never have answered: ``None`` keys
        #: (uncacheable requests) and capacity-0 lookups.  Tracked
        #: apart from :attr:`misses` so :attr:`hit_rate` measures how
        #: the cache performs on the traffic it is *allowed* to serve —
        #: counting these as misses deflated the warm-hit-rate gate
        #: (E12) and the exported metric on streams with uncacheable
        #: requests mixed in.
        self.uncacheable = 0
        self.evictions = 0
        #: Entries displaced because their key could never match again
        #: is not tracked separately: revision-keyed entries are not
        #: *removed* on invalidation, they stop matching and age out.

    def __len__(self) -> int:
        return len(self._entries)

    def note_uncacheable(self) -> None:
        """Record a lookup that skipped key construction entirely.

        The capacity-0 fast path in the PDP short-circuits *before*
        materializing a key tuple; this keeps the
        :attr:`uncacheable` tally identical to the ``get(None)`` it
        replaced.
        """
        self.uncacheable += 1

    def get(self, key: Optional[CacheKey]) -> Optional[Decision]:
        """Look up ``key``; ``None`` keys (uncacheable requests) miss."""
        if key is None or self.capacity == 0:
            self.uncacheable += 1
            return None
        found = self._entries.get(key)
        if found is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return found

    def put(self, key: Optional[CacheKey], decision: Decision) -> None:
        if key is None or self.capacity == 0:
            return
        self._entries[key] = decision
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Hits over *cacheable* lookups (uncacheable ones excluded)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "uncacheable": self.uncacheable,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }
