"""GRBAC — Generalized Role-Based Access Control.

A production-quality reproduction of Covington, Moyer & Ahamad,
*Generalized Role-Based Access Control for Securing Future
Applications* (ICDCS 2001): the GRBAC model (subject, object, and
environment roles over one mediation rule), the environment substrate
(trusted clock/events/state, temporal algebra, location, load), the
authentication pipeline with confidence levels, the simulated Aware
Home (topology, devices, residents, applications), a traditional-RBAC
baseline with bridges, policy tooling (builder, DSL, analysis, an MLS
encoding), and workload generation.

Quickstart::

    from repro import (
        GrbacPolicy, MediationEngine, StaticEnvironment,
    )

    policy = GrbacPolicy("home")
    policy.add_subject("alice")
    policy.add_subject_role("child")
    policy.assign_subject("alice", "child")
    policy.add_object("tv")
    policy.add_object_role("entertainment")
    policy.assign_object("tv", "entertainment")
    policy.add_environment_role("free-time")
    policy.grant("child", "watch", "entertainment", "free-time")

    env = StaticEnvironment({"free-time"})
    engine = MediationEngine(policy, env)
    assert engine.check("alice", "watch", "tv")

See the ``examples/`` directory for the full Aware Home walkthroughs.
"""

from repro.core import (
    ANY_ENVIRONMENT,
    ANY_OBJECT,
    AccessRequest,
    AuditLog,
    CardinalityConstraint,
    Decision,
    GrbacPolicy,
    MediationEngine,
    Permission,
    PrecedenceStrategy,
    PrerequisiteConstraint,
    Resource,
    Role,
    RoleHierarchy,
    RoleKind,
    SeparationOfDuty,
    Session,
    Sign,
    StaticEnvironment,
    Subject,
    Transaction,
    environment_role,
    object_role,
    subject_role,
)
from repro.env import (
    EnvironmentRuntime,
    EnvironmentState,
    EventBus,
    SimulatedClock,
)
from repro.exceptions import AccessDeniedError, GrbacError
from repro.home import SecureHome
from repro.obs import (
    CollectingObserver,
    DecisionTrace,
    MetricsRegistry,
    Observer,
    ObserverHub,
)
from repro.policy import PolicyAnalyzer, PolicyBuilder, compile_policy

__version__ = "1.0.0"

__all__ = [
    "ANY_ENVIRONMENT",
    "ANY_OBJECT",
    "AccessDeniedError",
    "AccessRequest",
    "AuditLog",
    "CardinalityConstraint",
    "CollectingObserver",
    "Decision",
    "DecisionTrace",
    "EnvironmentRuntime",
    "EnvironmentState",
    "EventBus",
    "GrbacError",
    "GrbacPolicy",
    "MediationEngine",
    "MetricsRegistry",
    "Observer",
    "ObserverHub",
    "Permission",
    "PolicyAnalyzer",
    "PolicyBuilder",
    "PrecedenceStrategy",
    "PrerequisiteConstraint",
    "Resource",
    "Role",
    "RoleHierarchy",
    "RoleKind",
    "SecureHome",
    "SeparationOfDuty",
    "Session",
    "Sign",
    "SimulatedClock",
    "StaticEnvironment",
    "Subject",
    "Transaction",
    "__version__",
    "compile_policy",
    "environment_role",
    "object_role",
    "subject_role",
]
