"""Consistent-hash ring for shard-affine request routing.

The cluster routes every decision request by its *shard key* (subject
name, or tenant when one is set) so that a given subject always lands
on the same worker and that worker's revision-keyed decision cache
stays hot for its key range — the same locality argument GRBAC makes
for environment state living near the home it describes.

A plain ``hash(key) % N`` mapping would remap almost every key when a
worker joins or leaves.  The ring instead places ``vnodes`` virtual
points per worker on a 32-bit circle and routes each key to the first
point clockwise from the key's hash; removing a worker reassigns only
the arcs that worker owned (~1/N of the keyspace), which is the
"bounded remap on membership change" contract the router depends on.

Hashes come from :mod:`hashlib` (md5, first 4 bytes), **never**
Python's builtin ``hash``: the builtin is salted per process, and the
ring must route identically in the router, the supervisor, tests, and
any future peer — routing is part of the wire contract, not an
implementation detail.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ServiceError

#: Virtual nodes per ring member.  128 keeps the largest/smallest
#: owned-share ratio under ~1.6 for 4–16 workers (asserted in tests)
#: while membership changes stay O(vnodes · log points).
DEFAULT_VNODES = 128


def stable_hash(key: str) -> int:
    """Process-stable 32-bit hash of ``key`` (md5 prefix)."""
    return int.from_bytes(
        hashlib.md5(key.encode("utf-8")).digest()[:4], "big"
    )


class ConsistentHashRing:
    """Maps shard keys to member names with bounded remap.

    :param members: initial member names (e.g. worker slot names
        ``"w0".."wN-1"``).  Names must be unique and non-empty.
    :param vnodes: virtual points per member; more points smooth the
        distribution at the cost of membership-change work.
    """

    def __init__(
        self, members: Sequence[str] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ServiceError("vnodes must be >= 1")
        self.vnodes = vnodes
        #: Sorted virtual-point hashes, parallel to :attr:`_owners`.
        self._points: List[int] = []
        self._owners: List[str] = []
        self._members: Dict[str, List[int]] = {}
        for member in members:
            self.add(member)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def members(self) -> List[str]:
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def add(self, member: str) -> None:
        """Place ``member``'s virtual points on the ring."""
        if not member:
            raise ServiceError("ring member name must be non-empty")
        if member in self._members:
            raise ServiceError(f"ring member {member!r} already present")
        hashes: List[int] = []
        for vnode in range(self.vnodes):
            point = stable_hash(f"{member}#{vnode}")
            # Collisions across members are astronomically unlikely but
            # must not silently shadow an existing owner; perturb.
            while True:
                index = bisect.bisect_left(self._points, point)
                if index < len(self._points) and self._points[index] == point:
                    point = (point + 1) & 0xFFFFFFFF
                    continue
                break
            self._points.insert(index, point)
            self._owners.insert(index, member)
            hashes.append(point)
        self._members[member] = hashes

    def remove(self, member: str) -> None:
        """Remove ``member``; only its arcs are reassigned."""
        hashes = self._members.pop(member, None)
        if hashes is None:
            raise ServiceError(f"ring member {member!r} not present")
        for point in hashes:
            index = bisect.bisect_left(self._points, point)
            # The point is present by construction; owners may share a
            # hash value only via the perturbation above, so scan.
            while self._owners[index] != member or self._points[index] != point:
                index += 1
            del self._points[index]
            del self._owners[index]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, key: str) -> str:
        """Member owning ``key``: first virtual point clockwise."""
        if not self._points:
            raise ServiceError("ring has no members")
        index = bisect.bisect_right(self._points, stable_hash(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """Routed-key counts per member (diagnostics and tests)."""
        counts = {member: 0 for member in self._members}
        for key in keys:
            counts[self.route(key)] += 1
        return counts

    def describe(self) -> List[Tuple[str, int]]:
        """(member, virtual-point count) rows, sorted by member."""
        return [(m, len(h)) for m, h in sorted(self._members.items())]
