"""The cluster admin endpoint: one HTTP surface for the whole fleet.

The per-worker ``--admin-port`` sidecars still exist (debugging one
shard), but operations tooling should not need to know how many
workers there are or which ports they restarted onto.
:class:`ClusterAdminServer` binds one port on the supervisor and
aggregates:

=========================  ==================================================
``GET /metrics``           every worker's Prometheus exposition merged into
                           one, each sample labelled ``shard="wN"``
``GET /metrics.json``      per-shard registry snapshots, keyed by worker
``GET /health``            merged health: 200 only when every worker is
                           healthy *and* all serve one policy generation
``GET /status``            supervisor view: worker states/pids/ports/
                           restarts, router shard stats, reload counters
``GET /dump``              interleaved flight-recorder tails (``?limit=``),
                           each entry labelled with its shard
``GET /traces``            recent trace ids the router sampled
                           (``?limit=``)
``GET /trace/<id>``        one distributed trace joined across the
                           router and every worker: a waterfall-ordered
                           span list with parentage depth
``POST /reload``           cluster-wide two-phase reload; the body is the
                           candidate policy, ``?actor=&dry_run=1`` qualify
                           it.  200 when every worker activated, 422 when
                           the cluster rejected it (and nothing changed)
``POST /drain``            graceful cluster shutdown: router drains, then
                           every worker gets SIGTERM and drains too
=========================  ==================================================

Same hardening as the single-PDP sidecar: one request per connection,
read deadline (408), capped head and body (413).
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.cluster.supervisor import ClusterSupervisor
from repro.exceptions import ServiceError
from repro.service.admin import PROMETHEUS_CONTENT_TYPE

_MAX_REQUEST_BYTES = 8 * 1024
_MAX_BODY_BYTES = 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    503: "Service Unavailable",
}


class _BadRequest(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class ClusterAdminServer:
    """Aggregating live-ops HTTP endpoint over a running supervisor."""

    def __init__(
        self,
        supervisor: ClusterSupervisor,
        host: str = "127.0.0.1",
        port: int = 0,
        read_timeout_s: float = 5.0,
    ) -> None:
        if read_timeout_s <= 0:
            raise ServiceError("read_timeout_s must be > 0")
        self.supervisor = supervisor
        self.host = host
        self.read_timeout_s = read_timeout_s
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self.requests_served = 0
        self.read_timeouts = 0
        #: Set by ``POST /drain``; the CLI awaits it to exit cleanly.
        self.drain_requested = asyncio.Event()

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise ServiceError("cluster admin server is not listening")
        return self._server.sockets[0].getsockname()[1]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ClusterAdminServer":
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self._requested_port,
            limit=_MAX_REQUEST_BYTES,
        )
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "ClusterAdminServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # HTTP handling (same shape as service.admin.AdminServer, but the
    # routes aggregate, so routing is async)
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request_line, body = await asyncio.wait_for(
                    self._read_request(reader), timeout=self.read_timeout_s
                )
            except asyncio.TimeoutError:
                self.read_timeouts += 1
                writer.write(
                    self._response(
                        408, "text/plain", b"request read deadline expired\n"
                    )
                )
                await writer.drain()
                return
            except _BadRequest as refused:
                writer.write(
                    self._response(
                        refused.status,
                        "text/plain",
                        f"{refused.message}\n".encode("utf-8"),
                    )
                )
                await writer.drain()
                return
            status, content_type, response_body = await self._route(
                request_line, body
            )
            self.requests_served += 1
            writer.write(self._response(status, content_type, response_body))
            await writer.drain()
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
            ValueError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[bytes, bytes]:
        request_line = await reader.readline()
        header_bytes = len(request_line)
        content_length = 0
        while True:
            header = await reader.readline()
            header_bytes += len(header)
            if header_bytes > _MAX_REQUEST_BYTES:
                raise _BadRequest(
                    413, f"request head exceeds {_MAX_REQUEST_BYTES} bytes"
                )
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.partition(b":")
            if name.strip().lower() == b"content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _BadRequest(
                        400, "malformed Content-Length header"
                    ) from None
        if content_length < 0:
            raise _BadRequest(400, "malformed Content-Length header")
        if content_length > _MAX_BODY_BYTES:
            raise _BadRequest(
                413, f"request body exceeds {_MAX_BODY_BYTES} bytes"
            )
        body = b""
        if content_length:
            try:
                body = await reader.readexactly(content_length)
            except asyncio.IncompleteReadError as error:
                raise _BadRequest(
                    400, "request body shorter than Content-Length"
                ) from error
        return request_line, body

    @staticmethod
    def _response(status: int, content_type: str, body: bytes) -> bytes:
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        return head.encode("ascii") + body

    async def _route(
        self, request_line: bytes, body: bytes
    ) -> Tuple[int, str, bytes]:
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            return 400, "text/plain", b"malformed request line\n"
        split = urlsplit(target)
        path = split.path
        query = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        supervisor = self.supervisor
        if path == "/reload":
            if method != "POST":
                return 405, "text/plain", b"/reload requires POST\n"
            return await self._handle_reload(query, body)
        if path == "/drain":
            if method != "POST":
                return 405, "text/plain", b"/drain requires POST\n"
            self.drain_requested.set()
            return 200, "application/json", _json({"draining": True})
        if method != "GET":
            return 405, "text/plain", b"only GET is supported\n"
        if path == "/metrics":
            merged = await supervisor.cluster_metrics()
            return (
                200,
                PROMETHEUS_CONTENT_TYPE,
                merged["prometheus"].encode("utf-8"),
            )
        if path == "/metrics.json":
            merged = await supervisor.cluster_metrics()
            return 200, "application/json", _json({"shards": merged["json"]})
        if path == "/health":
            health = await supervisor.cluster_health()
            return (
                200 if health["healthy"] else 503,
                "application/json",
                _json(health),
            )
        if path == "/status":
            return 200, "application/json", _json(supervisor.status())
        if path == "/dump":
            limit_raw = query.get("limit")
            try:
                limit = None if limit_raw is None else int(limit_raw)
            except ValueError:
                return (
                    400,
                    "text/plain",
                    b"query parameter 'limit' must be an integer\n",
                )
            entries = await supervisor.cluster_tail(limit=limit)
            return 200, "application/json", _json({"entries": entries})
        if path == "/traces":
            limit_raw = query.get("limit")
            try:
                limit = 50 if limit_raw is None else int(limit_raw)
            except ValueError:
                return (
                    400,
                    "text/plain",
                    b"query parameter 'limit' must be an integer\n",
                )
            return (
                200,
                "application/json",
                _json({"trace_ids": supervisor.cluster_traces(limit)}),
            )
        if path.startswith("/trace/"):
            trace_id = path[len("/trace/"):]
            if not trace_id:
                return 400, "text/plain", b"missing trace id\n"
            joined = await supervisor.cluster_trace(trace_id)
            status = 200 if joined["spans"] else 404
            return status, "application/json", _json(joined)
        return 404, "text/plain", b"unknown path\n"

    async def _handle_reload(
        self, query: Dict[str, str], body: bytes
    ) -> Tuple[int, str, bytes]:
        """``POST /reload``: body is the candidate, two-phase fan-out."""
        try:
            policy_text = body.decode("utf-8")
        except UnicodeDecodeError:
            return 400, "text/plain", b"policy body must be UTF-8 text\n"
        if not policy_text.strip():
            return (
                400,
                "text/plain",
                b"empty body; POST the candidate policy (DSL or JSON)\n",
            )
        actor = query.get("actor", "") or "cluster-admin-http"
        dry_run = query.get("dry_run", "").lower() in ("1", "true", "yes")
        result = await self.supervisor.reload_cluster(
            policy_text, actor=actor, dry_run=dry_run
        )
        status = 200 if result["accepted"] else 422
        return status, "application/json", _json(result)


def _json(payload: Dict[str, object]) -> bytes:
    return (json.dumps(payload, indent=2) + "\n").encode("utf-8")


__all__ = ["ClusterAdminServer"]
