"""The cluster supervisor: spawn, watch, reload, and drain N workers.

One :class:`ClusterSupervisor` process forks N ``repro.cli serve``
workers (each its own interpreter — its own GIL, asyncio loop, PDP,
and admin sidecar, all on ephemeral ports) and fronts them with a
:class:`~repro.cluster.router.ShardRouter`.  The supervisor owns the
control plane:

* **Liveness** — a monitor task probes each worker (process exit and
  a wire ``ping``); a dead worker's breaker opens immediately (its
  key range sheds ``DENY_UNAVAILABLE``) while the worker is restarted
  with exponential backoff.  Worker *names* ("w0".."wN-1") are ring
  slots, so a restart keeps its key range — no cluster-wide reshuffle
  for a crash.
* **Two-phase policy reload** — :meth:`reload_cluster` runs
  ``prepare`` on every worker (parse, lint, diff, *compile*, hold
  warm), and only when all of them accepted fans out ``activate``
  (the cheap, non-rejectable swap).  Any prepare failure aborts every
  prepared candidate: nothing changed anywhere.  The last activated
  text is replayed onto restarted workers, so a crash after a reload
  cannot resurrect the old policy on one shard.
* **Live-ops aggregation** — merged Prometheus metrics (``shard``
  labels), cluster health (including generation-skew detection), and
  interleaved flight-recorder tails, via the per-worker control
  connections.
"""

from __future__ import annotations

import asyncio
import os
import re
import sys
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence

import repro
from repro.cluster.liveops import (
    join_trace,
    merge_flight,
    merge_health,
    merge_prometheus,
)
from repro.cluster.router import ShardRouter
from repro.exceptions import ServiceError
from repro.service.client import RemotePDPClient

_SERVING_LINE = re.compile(r"serving .* listening on ([^\s:]+):(\d+)")
_ADMIN_LINE = re.compile(r"admin http listening on ([^\s:]+):(\d+)")


class WorkerHandle:
    """One managed worker: process, ports, control client, history."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.process: Optional[asyncio.subprocess.Process] = None
        self.port: Optional[int] = None
        self.admin_port: Optional[int] = None
        self.state = "starting"  # starting | ready | down | stopped
        self.restarts = 0
        self.probe_failures = 0
        self.started_at = 0.0
        self.log: Deque[str] = deque(maxlen=100)
        self.client: Optional[RemotePDPClient] = None
        self._log_pump: Optional[asyncio.Task] = None
        self._restart_task: Optional[asyncio.Task] = None

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "state": self.state,
            "pid": self.pid,
            "port": self.port,
            "admin_port": self.admin_port,
            "restarts": self.restarts,
            "uptime_s": (
                round(time.monotonic() - self.started_at, 3)
                if self.state == "ready"
                else 0.0
            ),
        }


class ClusterSupervisor:
    """Spawn and operate a shard-routed PDP worker cluster.

    Exactly one of ``policy_path`` / ``store_dir`` boot sources is
    required (both is fine too: the file is the default tenant, the
    store adds tenants).  ``worker_args`` is passed through to every
    worker's ``serve`` command line (PDP tuning flags).
    """

    def __init__(
        self,
        policy_path: Optional[str] = None,
        store_dir: Optional[str] = None,
        workers: int = 4,
        host: str = "127.0.0.1",
        router_port: int = 0,
        vnodes: int = 128,
        probe_interval_s: float = 0.5,
        probe_failure_limit: int = 3,
        restart_backoff_s: float = 0.2,
        restart_backoff_max_s: float = 5.0,
        spawn_timeout_s: float = 30.0,
        drain_timeout_s: float = 5.0,
        worker_args: Sequence[str] = (),
        python: Optional[str] = None,
        trace_sample_rate: float = 0.0,
        trace_buffer: int = 256,
        audit_dir: Optional[str] = None,
    ) -> None:
        if policy_path is None and store_dir is None:
            raise ServiceError(
                "a cluster needs a policy file or a --store directory"
            )
        if workers < 1:
            raise ServiceError("workers must be >= 1")
        if probe_interval_s <= 0 or spawn_timeout_s <= 0:
            raise ServiceError("intervals and timeouts must be > 0")
        self.policy_path = policy_path
        self.store_dir = store_dir
        self.host = host
        self.vnodes = vnodes
        self.probe_interval_s = probe_interval_s
        self.probe_failure_limit = probe_failure_limit
        self.restart_backoff_s = restart_backoff_s
        self.restart_backoff_max_s = restart_backoff_max_s
        self.spawn_timeout_s = spawn_timeout_s
        self.drain_timeout_s = drain_timeout_s
        self.worker_args = list(worker_args)
        self.python = python or sys.executable
        #: Directory for per-worker hash-chained audit logs
        #: (``<audit_dir>/<worker>.audit.jsonl``); ``None`` disables.
        self.audit_dir = audit_dir
        if audit_dir is not None:
            os.makedirs(audit_dir, exist_ok=True)
        self.router = ShardRouter(
            host=host,
            port=router_port,
            vnodes=vnodes,
            reload_handler=self._wire_reload,
            trace_sample_rate=trace_sample_rate,
            trace_buffer=trace_buffer,
        )
        self._workers: Dict[str, WorkerHandle] = {
            f"w{i}": WorkerHandle(f"w{i}") for i in range(workers)
        }
        self._monitor_task: Optional[asyncio.Task] = None
        self._running = False
        #: The text activated by the last successful cluster reload —
        #: replayed onto restarted workers so a post-reload crash
        #: cannot bring the old policy back on one shard.
        self._current_policy_text: Optional[str] = None
        self.reloads_accepted = 0
        self.reloads_rejected = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ClusterSupervisor":
        self._running = True
        spawned = await asyncio.gather(
            *(self._spawn(worker) for worker in self._workers.values()),
            return_exceptions=True,
        )
        failures = [e for e in spawned if isinstance(e, BaseException)]
        if failures:
            await self.stop(drain=False)
            raise ServiceError(
                f"cluster failed to start: {failures[0]}"
            ) from failures[0]
        try:
            await self.router.start()
        except Exception as exc:
            # The workers are already up; leaving them running after a
            # failed router bind would orphan N serve processes.
            await self.stop(drain=False)
            raise ServiceError(f"cluster failed to start: {exc}") from exc
        self._monitor_task = asyncio.get_running_loop().create_task(
            self._monitor()
        )
        return self

    async def stop(self, drain: bool = True) -> None:
        """Drain (or abort) the router, then SIGTERM every worker."""
        self._running = False
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
            self._monitor_task = None
        for worker in self._workers.values():
            if worker._restart_task is not None:
                worker._restart_task.cancel()
        try:
            if drain:
                await self.router.drain(self.drain_timeout_s)
            else:
                await self.router.stop()
        except ServiceError:
            pass
        await asyncio.gather(
            *(self._stop_worker(w) for w in self._workers.values())
        )

    async def _stop_worker(self, worker: WorkerHandle) -> None:
        worker.state = "stopped"
        if worker.client is not None:
            await worker.client.close()
            worker.client = None
        process = worker.process
        if process is not None and process.returncode is None:
            process.terminate()  # workers installed a SIGTERM drain
            try:
                await asyncio.wait_for(
                    process.wait(), self.drain_timeout_s + 2.0
                )
            except asyncio.TimeoutError:
                process.kill()
                await process.wait()
        if worker._log_pump is not None:
            worker._log_pump.cancel()
            worker._log_pump = None

    async def __aenter__(self) -> "ClusterSupervisor":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------
    def _worker_argv(self, worker: WorkerHandle) -> List[str]:
        argv = [self.python, "-m", "repro.cli", "serve"]
        if self.policy_path is not None:
            argv.append(self.policy_path)
        if self.store_dir is not None:
            # Workers share the supervisor-side store directory
            # read-only; the writer (CLI / admin) appends, readers
            # follow the log.
            argv += ["--store", self.store_dir, "--store-reader"]
        argv += [
            "--host", self.host,
            "--port", "0",
            "--admin-port", "0",
            "--drain-timeout", str(self.drain_timeout_s),
        ]
        if self.audit_dir is not None:
            # One chain per worker: a restarted worker resumes its own
            # file's head, so the chain survives crashes without any
            # cross-worker hash coordination.
            argv += [
                "--audit-file",
                os.path.join(
                    self.audit_dir, f"{worker.name}.audit.jsonl"
                ),
            ]
        argv += self.worker_args
        return argv

    def _worker_env(self) -> Dict[str, str]:
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__
        )))
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_dir if not existing
            else src_dir + os.pathsep + existing
        )
        return env

    async def _spawn(self, worker: WorkerHandle) -> None:
        worker.state = "starting"
        worker.probe_failures = 0
        process = await asyncio.create_subprocess_exec(
            *self._worker_argv(worker),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
            env=self._worker_env(),
        )
        worker.process = process
        try:
            await asyncio.wait_for(
                self._await_ready(worker), self.spawn_timeout_s
            )
        except (asyncio.TimeoutError, asyncio.IncompleteReadError):
            process.kill()
            await process.wait()
            tail = " | ".join(list(worker.log)[-5:])
            raise ServiceError(
                f"worker {worker.name} did not become ready within "
                f"{self.spawn_timeout_s}s: {tail}"
            ) from None
        worker._log_pump = asyncio.get_running_loop().create_task(
            self._pump_log(worker)
        )
        worker.client = await RemotePDPClient.connect(
            self.host, worker.port
        )
        if self._current_policy_text is not None:
            # The boot source predates the last cluster reload; heal
            # the fresh worker before it takes traffic.
            result = await worker.client.reload(
                self._current_policy_text, actor="supervisor-restart"
            )
            if not result["accepted"]:
                raise ServiceError(
                    f"worker {worker.name} rejected the current "
                    f"cluster policy on restart: {result['error']}"
                )
        worker.state = "ready"
        worker.started_at = time.monotonic()
        self.router.set_worker(worker.name, self.host, worker.port)

    async def _await_ready(self, worker: WorkerHandle) -> None:
        """Parse readiness lines until both ports are known."""
        assert worker.process is not None and worker.process.stdout
        worker.port = None
        worker.admin_port = None
        while worker.port is None or worker.admin_port is None:
            raw = await worker.process.stdout.readline()
            if not raw:
                raise asyncio.IncompleteReadError(b"", None)
            line = raw.decode("utf-8", "replace").rstrip()
            worker.log.append(line)
            serving = _SERVING_LINE.search(line)
            if serving:
                worker.port = int(serving.group(2))
            admin = _ADMIN_LINE.search(line)
            if admin:
                worker.admin_port = int(admin.group(2))

    async def _pump_log(self, worker: WorkerHandle) -> None:
        """Keep draining worker stdout so the pipe never fills."""
        process = worker.process
        assert process is not None and process.stdout
        try:
            while True:
                raw = await process.stdout.readline()
                if not raw:
                    return
                worker.log.append(raw.decode("utf-8", "replace").rstrip())
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    # Monitoring and restart
    # ------------------------------------------------------------------
    async def _monitor(self) -> None:
        while self._running:
            await asyncio.sleep(self.probe_interval_s)
            for worker in self._workers.values():
                if worker.state in ("stopped", "down"):
                    continue
                process = worker.process
                if process is not None and process.returncode is not None:
                    self._declare_down(
                        worker, f"exited {process.returncode}"
                    )
                    continue
                if worker.state != "ready" or worker.client is None:
                    continue
                try:
                    await asyncio.wait_for(worker.client.ping(), 2.0)
                    worker.probe_failures = 0
                except (ServiceError, OSError, asyncio.TimeoutError):
                    worker.probe_failures += 1
                    if worker.probe_failures >= self.probe_failure_limit:
                        if process is not None and process.returncode is None:
                            process.kill()
                        self._declare_down(worker, "unresponsive")

    def _declare_down(self, worker: WorkerHandle, reason: str) -> None:
        if (
            worker.state == "ready"
            and time.monotonic() - worker.started_at > 30.0
        ):
            worker.restarts = 0  # it ran long enough: fresh backoff
        worker.state = "down"
        worker.log.append(f"[supervisor] worker down: {reason}")
        try:
            self.router.mark_worker_down(worker.name)
        except ServiceError:
            pass
        if worker._restart_task is None or worker._restart_task.done():
            worker._restart_task = asyncio.get_running_loop().create_task(
                self._restart(worker)
            )

    async def _restart(self, worker: WorkerHandle) -> None:
        if worker.client is not None:
            await worker.client.close()
            worker.client = None
        if worker._log_pump is not None:
            worker._log_pump.cancel()
            worker._log_pump = None
        while self._running:
            backoff = min(
                self.restart_backoff_s * (2 ** worker.restarts),
                self.restart_backoff_max_s,
            )
            await asyncio.sleep(backoff)
            if not self._running:
                return
            worker.restarts += 1
            try:
                await self._spawn(worker)
            except (ServiceError, OSError) as error:
                worker.log.append(f"[supervisor] restart failed: {error}")
                continue
            # A worker that stays up long enough earns its backoff
            # reset on the *next* crash, via started_at below.
            return

    # ------------------------------------------------------------------
    # Two-phase cluster reload
    # ------------------------------------------------------------------
    async def reload_cluster(
        self,
        policy_text: str,
        actor: str = "cluster",
        dry_run: bool = False,
    ) -> Dict[str, Any]:
        """Prepare everywhere; activate everywhere or nothing.

        Phase one runs ``reload_prepare`` on every ready worker — each
        parses, lints, diffs, and compiles the candidate while still
        serving the old policy.  Only if *all* of them accepted does
        phase two ``reload_activate`` the held candidates (an atomic
        in-worker swap); otherwise every prepared candidate is
        aborted and the cluster is untouched.  With ``dry_run`` the
        prepare fan-out runs and everything is aborted regardless —
        cluster-wide validation with zero risk.

        :returns: ``{"accepted", "phase", "error", "dry_run",
            "workers": {name: {...}}, "generations": {name: gen}}``.
        """
        workers = [
            w for w in self._workers.values() if w.state == "ready"
        ]
        absent = sorted(
            w.name for w in self._workers.values() if w.state != "ready"
        )
        if absent:
            # Activating around a down worker would fork generations
            # the moment it restarts with the older boot source.
            self.reloads_rejected += 1
            return {
                "accepted": False,
                "phase": "prepare",
                "dry_run": dry_run,
                "error": f"workers not ready: {', '.join(absent)}",
                "workers": {},
                "generations": {},
            }

        async def prepare(worker: WorkerHandle) -> Dict[str, Any]:
            assert worker.client is not None
            return await worker.client.reload_prepare(policy_text, actor)

        prepared = await asyncio.gather(
            *(prepare(w) for w in workers), return_exceptions=True
        )
        per_worker: Dict[str, Any] = {}
        tokens: Dict[str, str] = {}
        failed = False
        first_error = ""
        for worker, outcome in zip(workers, prepared):
            if isinstance(outcome, BaseException):
                failed = True
                first_error = first_error or str(outcome)
                per_worker[worker.name] = {
                    "accepted": False, "error": str(outcome)
                }
                continue
            per_worker[worker.name] = outcome
            if outcome["accepted"] and outcome["token"]:
                tokens[worker.name] = outcome["token"]
            else:
                failed = True
                first_error = first_error or outcome["error"]
        if failed or dry_run:
            # Abort everything that *was* prepared: all-or-nothing.
            for worker in workers:
                token = tokens.get(worker.name)
                if token is None or worker.client is None:
                    continue
                try:
                    await worker.client.reload_abort(token, actor)
                except (ServiceError, OSError):
                    pass  # worker will evict it FIFO; nothing active
            accepted = dry_run and not failed
            if accepted:
                self.reloads_accepted += 1
            else:
                self.reloads_rejected += 1
            return {
                "accepted": accepted,
                "phase": "prepare",
                "dry_run": dry_run,
                "error": first_error,
                "workers": per_worker,
                "generations": {},
            }

        async def activate(worker: WorkerHandle) -> Dict[str, Any]:
            assert worker.client is not None
            return await worker.client.reload_activate(
                tokens[worker.name], actor
            )

        activated = await asyncio.gather(
            *(activate(w) for w in workers), return_exceptions=True
        )
        generations: Dict[str, Any] = {}
        all_activated = True
        for worker, outcome in zip(workers, activated):
            if isinstance(outcome, BaseException):
                all_activated = False
                first_error = first_error or str(outcome)
                per_worker[worker.name] = {
                    "accepted": False, "error": str(outcome)
                }
                continue
            per_worker[worker.name] = outcome
            if outcome["accepted"]:
                generations[worker.name] = outcome["generation"]
            else:
                all_activated = False
                first_error = first_error or outcome["error"]
        if all_activated:
            self._current_policy_text = policy_text
            self.reloads_accepted += 1
        else:
            # Prepare succeeded everywhere, so activation can only
            # fail on a worker that died mid-swap; its restart replays
            # _current_policy_text... which must therefore be the NEW
            # text only if someone activated it.  If *any* worker
            # activated, converge forward; if none did, stay put.
            if generations:
                self._current_policy_text = policy_text
            self.reloads_rejected += 1
        return {
            "accepted": all_activated,
            "phase": "activate",
            "dry_run": False,
            "error": "" if all_activated else first_error,
            "workers": per_worker,
            "generations": generations,
        }

    async def _wire_reload(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """The router's reload handler: cluster two-phase over the wire."""
        op = payload.get("op")
        if op != "reload":
            return {
                "accepted": False,
                "error": f"{op!r} is supervisor-internal; send a "
                "'reload' op to the cluster",
            }
        policy_text = payload.get("policy")
        if not isinstance(policy_text, str) or not policy_text:
            return {
                "accepted": False,
                "error": "cluster reload requires 'policy' text "
                "(store-backed refresh goes through the store writer)",
            }
        actor = payload.get("actor")
        result = await self.reload_cluster(
            policy_text,
            actor=actor if isinstance(actor, str) and actor else "wire",
            dry_run=bool(payload.get("dry_run", False)),
        )
        result["record"] = {}  # shape-compatible with single-server reload
        return result

    # ------------------------------------------------------------------
    # Live-ops aggregation
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        return {
            "workers": {
                name: self._workers[name].describe()
                for name in sorted(self._workers)
            },
            "router": self.router.stats(),
            "reloads": {
                "accepted": self.reloads_accepted,
                "rejected": self.reloads_rejected,
            },
        }

    async def _each_ready(self, call) -> Dict[str, Any]:
        """``{name: result-or-None}`` of ``call(client)`` per worker."""
        workers = sorted(self._workers)

        async def one(name: str) -> Any:
            worker = self._workers[name]
            if worker.state != "ready" or worker.client is None:
                return None
            try:
                return await asyncio.wait_for(call(worker.client), 5.0)
            except (ServiceError, OSError, asyncio.TimeoutError):
                return None

        results = await asyncio.gather(*(one(name) for name in workers))
        return dict(zip(workers, results))

    async def cluster_health(self) -> Dict[str, Any]:
        reports = await self._each_ready(lambda c: c.health())
        merged = merge_health(reports)
        merged["router"] = self.router.stats()
        return merged

    async def cluster_metrics(self) -> Dict[str, Any]:
        reports = await self._each_ready(lambda c: c.metrics())
        texts = {
            name: report["prometheus"]
            for name, report in reports.items()
            if report is not None
        }
        return {
            "prometheus": merge_prometheus(texts),
            "json": {
                name: (None if report is None else report["json"])
                for name, report in reports.items()
            },
        }

    async def cluster_trace(self, trace_id: str) -> Dict[str, Any]:
        """Join one trace across the router and every ready worker.

        The router holds its own ``router.route`` spans in-process;
        each worker is asked over the control connection for the spans
        its PDP retained (``pdp.decide`` / ``pdp.cache_hit``).  The
        result is one waterfall-ordered span list (see
        :func:`~repro.cluster.liveops.join_trace`) — the cross-process
        view no single process can produce alone.
        """
        reports: Dict[str, Optional[List[Dict[str, Any]]]] = dict(
            await self._each_ready(lambda c: c.trace(trace_id))
        )
        reports["router"] = self.router.find_trace(trace_id)
        spans = join_trace(reports)
        return {
            "trace_id": trace_id,
            "spans": spans,
            "span_count": len(spans),
            "services": sorted(
                {span.get("service") or "" for span in spans} - {""}
            ),
        }

    def cluster_traces(self, limit: int = 50) -> List[str]:
        """Recent trace ids the router sampled or propagated."""
        return self.router.recent_traces(limit)

    async def cluster_tail(
        self, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        reports = await self._each_ready(lambda c: c.dump(limit=limit))
        tails = {
            name: report
            for name, report in reports.items()
            if report is not None
        }
        return merge_flight(tails, limit=limit)


__all__ = ["ClusterSupervisor", "WorkerHandle"]
