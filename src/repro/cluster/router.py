"""The shard router: one front door for a cluster of PDP workers.

An asyncio TCP proxy that terminates both wire formats the PDP speaks
(NDJSON lines and binary frames, detected per message by the same
one-byte peek the server uses), extracts each decision request's
*shard key* — tenant when present, else subject — and forwards the
message byte-for-byte to the worker the consistent-hash ring owns
that key on.  Responses stream back over per-worker pumps and are
written to the client under its connection lock, so the client sees
exactly the pipelined out-of-order protocol a single server gives it.

Connections upstream are **per client session, per worker**, created
lazily on first route and kept pipelined: because every upstream
carries only one client's traffic, the client's own request ids stay
unique on the wire and the router never rewrites a message.

Failure policy — shed, never hang:

* every worker has a :class:`CircuitBreaker`; connect/IO failures
  open it and requests routed there are answered immediately with
  ``DENY_UNAVAILABLE`` until the cooldown's half-open probe succeeds;
* when an upstream dies mid-flight, every request still outstanding
  on it is answered with ``DENY_UNAVAILABLE`` (matching the lane it
  arrived on) — a killed worker costs explicit refusals, not client
  errors or silent drops;
* ``drain()`` stops accepting, lets in-flight work finish (bounded),
  then closes — the router half of the cluster's graceful SIGTERM
  story.

Control ops ride through too: ``ping`` is answered locally,
``intern`` is forwarded and its table payload captured so new
upstreams can be pinned to the *same* tables (see
``PDPServer``'s intern-with-tables form), reload ops are delegated
to the supervisor's cluster-wide two-phase handler, and everything
else goes to the first healthy worker.
"""

from __future__ import annotations

import asyncio
import time
from typing import Awaitable, Callable, Dict, Optional, Tuple

from repro.cluster.ring import ConsistentHashRing
from repro.exceptions import ServiceError
from repro.obs.export import TraceSampler
from repro.obs.trace import Span, SpanCollector, TraceContext, new_span_id
from repro.service.protocol import (
    BINARY_MAGIC,
    KIND_REQUEST,
    MAX_LINE_BYTES,
    MAX_OP_LINE_BYTES,
    InternTables,
    dumps_line,
    encode_binary_error,
    encode_binary_unavailable,
    encode_unavailable,
    frame,
    parse_line,
    peek_binary_id,
    peek_binary_request,
    peek_binary_trace,
    read_frame_tail,
    splice_binary_trace,
    splice_line_trace,
)

#: Reserved wire id for the router's own intern replays to fresh
#: upstreams; responses carrying it are consumed, never forwarded.
ROUTER_INTERN_ID = "__router_intern__"

#: Ops the router forwards to any healthy worker (cluster-wide
#: aggregation lives on the supervisor's admin endpoint instead).
_FORWARD_OPS = frozenset(
    {"stats", "metrics", "health", "ready", "dump", "tenants", "intern"}
)

_RELOAD_OPS = frozenset({"reload", "reload_prepare", "reload_activate",
                         "reload_abort"})


class CircuitBreaker:
    """Per-worker failure gate: open after N failures, probe after cooldown.

    While open, routed requests shed with ``DENY_UNAVAILABLE`` instead
    of paying a connect timeout each.  After ``cooldown_s`` the breaker
    is *half-open*: attempts pass again, one failure re-opens it, one
    success closes it.
    """

    def __init__(
        self, failure_threshold: int = 3, cooldown_s: float = 1.0
    ) -> None:
        if failure_threshold < 1:
            raise ServiceError("failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ServiceError("cooldown_s must be > 0")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.opens = 0

    @property
    def open(self) -> bool:
        if self.opened_at is None:
            return False
        if time.monotonic() - self.opened_at >= self.cooldown_s:
            return False  # half-open: let a probe through
        return True

    def record_failure(self) -> None:
        self.failures += 1
        if self.failures >= self.failure_threshold:
            if self.opened_at is None:
                self.opens += 1
            self.opened_at = time.monotonic()

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None

    def force_open(self) -> None:
        """Open immediately (supervisor saw the worker die)."""
        if self.opened_at is None:
            self.opens += 1
        self.failures = max(self.failures, self.failure_threshold)
        self.opened_at = time.monotonic()

    def state(self) -> str:
        if self.opened_at is None:
            return "closed"
        return "open" if self.open else "half-open"


class _Upstream:
    """One client session's pipelined connection to one worker."""

    def __init__(
        self,
        session: "_Session",
        name: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.session = session
        self.name = name
        self.reader = reader
        self.writer = writer
        #: wire id -> lane tag ("bin" | "json" | "op" | "intern" |
        #: "router-intern"), insertion-ordered for failure synthesis.
        self.outstanding: Dict[object, str] = {}
        #: wire id -> pending router span (sampled requests only);
        #: completed when the worker's response comes back, so the
        #: span's duration is the upstream round-trip time.
        self.traces: Dict[object, Dict[str, object]] = {}
        self.closed = False
        self.pump = asyncio.get_running_loop().create_task(self._pump())

    async def _pump(self) -> None:
        """Forward worker responses to the client, byte-for-byte."""
        session = self.session
        try:
            while True:
                try:
                    first = await self.reader.readexactly(1)
                except asyncio.IncompleteReadError:
                    break
                if first[0] == BINARY_MAGIC:
                    kind, body = await read_frame_tail(self.reader)
                    wire_id = peek_binary_id(body)
                    self.outstanding.pop(wire_id, None)
                    self._finish_trace(wire_id)
                    await session.send_bytes(frame(kind, body))
                    continue
                try:
                    rest = await self.reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as eof:
                    if eof.partial:
                        await self._forward_line(first + eof.partial + b"\n")
                    break
                await self._forward_line(first + rest)
        except (ConnectionResetError, BrokenPipeError, OSError, ServiceError):
            pass
        finally:
            await self.close(synthesize=True)

    async def _forward_line(self, line: bytes) -> None:
        """Pass one NDJSON response through; intercept intern replies."""
        session = self.session
        wire_id, parsed = _scan_response_id(line)
        tag = self.outstanding.pop(wire_id, None)
        self._finish_trace(wire_id)
        if tag == "router-intern":
            return  # the router's own table pin; nothing to forward
        if tag == "intern":
            # Capture the table payload so future upstreams (worker
            # restarts, other shards) can be pinned to the same codec.
            try:
                payload = parsed if parsed is not None else parse_line(
                    line, max_bytes=MAX_OP_LINE_BYTES
                )
                if "error" not in payload:
                    session.tables = InternTables.from_payload(payload)
                    session.intern_payload = {
                        "op": "intern",
                        "id": ROUTER_INTERN_ID,
                        "revision": payload.get("revision", 0),
                        "tables": payload.get("tables"),
                    }
            except ServiceError:
                pass
        await session.send_bytes(line)

    async def send(self, data: bytes) -> None:
        self.writer.write(data)
        await self.writer.drain()

    def _finish_trace(self, wire_id: object, outcome: str = "ok") -> None:
        """Complete the router span for ``wire_id`` (upstream RTT)."""
        pending = self.traces.pop(wire_id, None)
        if pending is not None:
            self.session.router._record_span(
                pending, self.name, outcome=outcome
            )

    async def close(self, synthesize: bool) -> None:
        """Tear down; optionally answer everything still in flight."""
        if self.closed:
            return
        self.closed = True
        self.session.upstreams.pop(self.name, None)
        if self.pump is not asyncio.current_task():
            self.pump.cancel()
        self.writer.close()
        pending = list(self.outstanding.items())
        self.outstanding.clear()
        for wire_id in list(self.traces):
            self._finish_trace(wire_id, outcome="unavailable")
        if synthesize and pending:
            detail = f"worker {self.name} unavailable"
            router = self.session.router
            for wire_id, tag in pending:
                router.unavailable_synthesized += 1
                try:
                    if tag == "bin":
                        await self.session.send_bytes(
                            encode_binary_unavailable(wire_id, detail)
                        )
                    elif tag == "json":
                        await self.session.send_bytes(
                            dumps_line(encode_unavailable(wire_id, detail))
                        )
                    elif tag in ("op", "intern"):
                        await self.session.send_bytes(
                            dumps_line({"id": wire_id, "error": detail})
                        )
                except (ConnectionResetError, BrokenPipeError, OSError):
                    break


class _Session:
    """One client connection and its lazily-built upstream fan."""

    def __init__(
        self,
        router: "ShardRouter",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.router = router
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.upstreams: Dict[str, _Upstream] = {}
        #: The client's intern tables (captured off the intern reply)
        #: — used to decode binary routing keys.
        self.tables: Optional[InternTables] = None
        #: The intern op to replay on fresh upstreams (tables pinned).
        self.intern_payload: Optional[dict] = None

    async def send_bytes(self, data: bytes) -> None:
        async with self.write_lock:
            self.writer.write(data)
            await self.writer.drain()

    @property
    def in_flight(self) -> int:
        return sum(len(u.outstanding) for u in self.upstreams.values())

    # ------------------------------------------------------------------
    # Upstream management
    # ------------------------------------------------------------------
    async def upstream_for(self, name: str) -> Optional[_Upstream]:
        """The (possibly fresh) upstream to worker ``name``.

        ``None`` means unroutable right now: breaker open, worker
        removed, or connect refused — the caller sheds.
        """
        upstream = self.upstreams.get(name)
        if upstream is not None and not upstream.closed:
            return upstream
        router = self.router
        breaker = router.breaker(name)
        if breaker.open:
            return None
        address = router.worker_address(name)
        if address is None:
            return None
        try:
            reader, writer = await asyncio.open_connection(
                address[0], address[1], limit=MAX_OP_LINE_BYTES
            )
        except OSError:
            breaker.record_failure()
            return None
        breaker.record_success()
        upstream = _Upstream(self, name, reader, writer)
        self.upstreams[name] = upstream
        if self.intern_payload is not None:
            # Pin the worker connection to the client's exact tables
            # (a worker restarted after a reload must not decode the
            # client's ids against a different codec).
            line = dumps_line(self.intern_payload)
            if len(line) <= MAX_LINE_BYTES:
                upstream.outstanding[ROUTER_INTERN_ID] = "router-intern"
                try:
                    await upstream.send(line)
                except (ConnectionResetError, BrokenPipeError, OSError):
                    breaker.record_failure()
                    await upstream.close(synthesize=True)
                    return None
        return upstream

    async def first_healthy_upstream(self) -> Optional[_Upstream]:
        for name in self.router.ring.members:
            upstream = await self.upstream_for(name)
            if upstream is not None:
                return upstream
        return None

    async def close(self) -> None:
        for upstream in list(self.upstreams.values()):
            await upstream.close(synthesize=False)
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


class ShardRouter:
    """The cluster's front listener (see module docstring).

    :param workers: initial ``name -> (host, port)`` map; the ring is
        built from the names, so slots (not ports) own key ranges and
        a restarted worker keeps its range.
    :param reload_handler: async callable given the parsed reload-op
        payload, returning the response payload — the supervisor's
        cluster-wide two-phase reload.  Without one, reload ops are
        refused (reloading one shard of a cluster would fork it).
    :param trace_sample_rate: head-sampling rate for traces the
        *router originates* on requests that arrive without a trace
        context.  Requests that already carry one keep their origin's
        sampled flag — the router never re-rolls.
    :param trace_buffer: retained traces in the router's own span
        buffer (0 disables router span recording entirely).
    """

    def __init__(
        self,
        workers: Optional[Dict[str, Tuple[str, int]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        vnodes: int = 128,
        failure_threshold: int = 3,
        cooldown_s: float = 1.0,
        reload_handler: Optional[
            Callable[[dict], Awaitable[dict]]
        ] = None,
        trace_sample_rate: float = 0.0,
        trace_buffer: int = 256,
    ) -> None:
        if not 0.0 <= trace_sample_rate <= 1.0:
            raise ServiceError("trace_sample_rate must be in [0, 1]")
        if trace_buffer < 0:
            raise ServiceError("trace_buffer must be >= 0")
        self.host = host
        self.reload_handler = reload_handler
        self.sampler = TraceSampler(trace_sample_rate)
        self.trace_sample_rate = trace_sample_rate
        self.spans: Optional[SpanCollector] = (
            SpanCollector(trace_buffer) if trace_buffer > 0 else None
        )
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._workers: Dict[str, Tuple[str, int]] = dict(workers or {})
        self.ring = ConsistentHashRing(sorted(self._workers), vnodes=vnodes)
        self._failure_threshold = failure_threshold
        self._cooldown_s = cooldown_s
        self._breakers: Dict[str, CircuitBreaker] = {
            name: CircuitBreaker(failure_threshold, cooldown_s)
            for name in self._workers
        }
        self._sessions: "set[_Session]" = set()
        self._accepting = True
        self.connections = 0
        self.routed: Dict[str, int] = {name: 0 for name in self._workers}
        self.unavailable_synthesized = 0

    # ------------------------------------------------------------------
    # Membership (driven by the supervisor)
    # ------------------------------------------------------------------
    def breaker(self, name: str) -> CircuitBreaker:
        found = self._breakers.get(name)
        if found is None:
            raise ServiceError(f"unknown worker {name!r}")
        return found

    def worker_address(self, name: str) -> Optional[Tuple[str, int]]:
        return self._workers.get(name)

    def set_worker(self, name: str, host: str, port: int) -> None:
        """Add ``name`` or update its address (restart on a new port).

        A fresh address resets the breaker — the supervisor only calls
        this once the worker answered its readiness probe.
        """
        known = name in self._workers
        self._workers[name] = (host, port)
        self._breakers.setdefault(
            name,
            CircuitBreaker(self._failure_threshold, self._cooldown_s),
        ).record_success()
        self.routed.setdefault(name, 0)
        if not known or name not in self.ring:
            if name not in self.ring:
                self.ring.add(name)

    def mark_worker_down(self, name: str) -> None:
        """Shed immediately for ``name`` (supervisor saw it die).

        The slot stays on the ring — its key range sheds until the
        restarted worker re-registers — so no other shard's cache
        locality is disturbed by the outage.
        """
        self.breaker(name).force_open()

    def remove_worker(self, name: str) -> None:
        """Take ``name`` out of rotation (scale-down, not a crash)."""
        self._workers.pop(name, None)
        self._breakers.pop(name, None)
        if name in self.ring:
            self.ring.remove(name)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise ServiceError("router is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "ShardRouter":
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self._requested_port,
            limit=MAX_LINE_BYTES,
        )
        return self

    async def stop(self) -> None:
        self._accepting = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for session in list(self._sessions):
            await session.close()
        self._sessions.clear()

    async def drain(self, timeout_s: float = 5.0) -> int:
        """Stop accepting, wait (bounded) for in-flight work, close.

        :returns: requests still in flight when the deadline hit
            (0 on a clean drain).
        """
        self._accepting = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            remaining = sum(s.in_flight for s in self._sessions)
            if remaining == 0:
                break
            await asyncio.sleep(0.02)
        remaining = sum(s.in_flight for s in self._sessions)
        for session in list(self._sessions):
            await session.close()
        self._sessions.clear()
        return remaining

    async def __aenter__(self) -> "ShardRouter":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Client connections
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if not self._accepting:
            writer.close()
            return
        self.connections += 1
        session = _Session(self, reader, writer)
        self._sessions.add(session)
        try:
            while True:
                try:
                    first = await reader.readexactly(1)
                except asyncio.IncompleteReadError:
                    break
                if first[0] == BINARY_MAGIC:
                    try:
                        kind, body = await read_frame_tail(reader)
                    except ServiceError as error:
                        await session.send_bytes(
                            encode_binary_error(None, str(error))
                        )
                        break
                    except asyncio.IncompleteReadError:
                        break
                    await self._route_frame(session, kind, body)
                    continue
                try:
                    rest = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError as eof:
                    rest = eof.partial
                except (asyncio.LimitOverrunError, ValueError):
                    await session.send_bytes(
                        dumps_line({"error": "wire line too long"})
                    )
                    break
                line = first + rest
                if line.strip():
                    await self._route_line(session, line)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            self._sessions.discard(session)
            await session.close()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route_frame(
        self, session: _Session, kind: int, body: bytes
    ) -> None:
        if kind != KIND_REQUEST:
            await session.send_bytes(
                encode_binary_error(None, f"unexpected frame kind {kind}")
            )
            return
        try:
            wire_id, subject, tenant = peek_binary_request(
                session.tables, body
            )
            incoming = peek_binary_trace(body)
        except ServiceError as error:
            await session.send_bytes(
                encode_binary_error(peek_binary_id(body), str(error))
            )
            return
        key = tenant or subject or str(wire_id)
        pending = self._begin_trace(incoming, wire_id, key, "bin")
        if pending is not None:
            body = splice_binary_trace(body, pending["ctx"])
        await self._forward(
            session,
            self.ring.route(key),
            frame(kind, body),
            wire_id,
            "bin",
            pending,
        )

    async def _route_line(self, session: _Session, line: bytes) -> None:
        scanned = _scan_request(line)
        if scanned is None:
            # Slow path: ops, escaped strings, unusual field order.
            try:
                payload = parse_line(line)
            except ServiceError as error:
                await session.send_bytes(dumps_line({"error": str(error)}))
                return
            op = payload.get("op")
            if op is not None:
                await self._handle_op(session, op, payload, line)
                return
            wire_id = payload.get("id")
            subject = payload.get("subject")
            tenant = payload.get("tenant")
            key = (
                tenant
                if isinstance(tenant, str) and tenant
                else subject
                if isinstance(subject, str) and subject
                else str(wire_id)
            )
        else:
            wire_id, key = scanned
        if not isinstance(wire_id, (int, str)) and wire_id is not None:
            wire_id = str(wire_id)
        incoming = _scan_trace(line)
        pending = self._begin_trace(incoming, wire_id, key, "json")
        if pending is not None:
            try:
                line = splice_line_trace(line, pending["ctx"])
            except ServiceError:
                pending = None  # not a JSON object; forward verbatim
        await self._forward(
            session, self.ring.route(key), line, wire_id, "json", pending
        )

    def _begin_trace(
        self,
        incoming: Optional[TraceContext],
        wire_id: object,
        key: str,
        lane: str,
    ) -> Optional[Dict[str, object]]:
        """Originate or propagate trace context for one request.

        Returns the pending router-span record (the forwarded context
        under ``"ctx"``), or ``None`` when the request is untraced —
        in which case the message must be forwarded byte-verbatim.
        An incoming context's sampled flag is authoritative; only
        context-less requests consult the router's own sampler.
        """
        if incoming is not None:
            if not incoming.sampled:
                return None  # head said drop: forward untouched
            forward = TraceContext(incoming.trace_id, new_span_id(), True)
            parent = incoming.span_id
        elif self.sampler.should_sample():
            forward = TraceContext.origin()
            parent = ""
        else:
            return None
        return {
            "ctx": forward,
            "parent": parent,
            "start": time.perf_counter(),
            # Wall clock for the span record: perf_counter times the
            # hop, but only wall time is comparable across processes
            # when the collector orders siblings in a joined trace.
            "start_wall": time.time(),
            "key": key,
            "lane": lane,
            "wire_id": wire_id,
        }

    def _record_span(
        self,
        pending: Dict[str, object],
        worker: str,
        outcome: str,
    ) -> None:
        """Emit the router's own span for one completed route."""
        spans = self.spans
        if spans is None:
            return
        ctx = pending["ctx"]
        assert isinstance(ctx, TraceContext)
        breaker = self._breakers.get(worker)
        start = pending.get("start")
        spans.add(
            Span(
                trace_id=ctx.trace_id,
                span_id=ctx.span_id,
                parent_span_id=str(pending.get("parent", "")),
                name="router.route",
                service="router",
                start_s=pending.get("start_wall"),
                duration_s=(
                    time.perf_counter() - start
                    if isinstance(start, float)
                    else None
                ),
                annotations={
                    "worker": worker,
                    "key": pending.get("key"),
                    "lane": pending.get("lane"),
                    "breaker": breaker.state() if breaker else "unknown",
                    "outcome": outcome,
                    "request_id": pending.get("wire_id"),
                    "origin": pending.get("parent", "") == "",
                },
            ).to_dict()
        )

    async def _forward(
        self,
        session: _Session,
        worker: str,
        data: bytes,
        wire_id: object,
        lane: str,
        trace_pending: Optional[Dict[str, object]] = None,
    ) -> None:
        upstream = await session.upstream_for(worker)
        if upstream is None:
            await self._shed(session, wire_id, lane, worker, trace_pending)
            return
        upstream.outstanding[wire_id] = lane
        if trace_pending is not None:
            upstream.traces[wire_id] = trace_pending
        try:
            await upstream.send(data)
            self.routed[worker] = self.routed.get(worker, 0) + 1
        except (ConnectionResetError, BrokenPipeError, OSError):
            self.breaker(worker).record_failure()
            # close() synthesizes for everything outstanding there —
            # including the id just recorded.
            await upstream.close(synthesize=True)

    async def _shed(
        self,
        session: _Session,
        wire_id: object,
        lane: str,
        worker: str,
        trace_pending: Optional[Dict[str, object]] = None,
    ) -> None:
        self.unavailable_synthesized += 1
        if trace_pending is not None:
            self._record_span(trace_pending, worker, outcome="shed")
        detail = f"worker {worker} unavailable"
        if lane == "bin":
            await session.send_bytes(
                encode_binary_unavailable(wire_id, detail)
            )
        else:
            await session.send_bytes(
                dumps_line(encode_unavailable(wire_id, detail))
            )

    # ------------------------------------------------------------------
    # Control ops
    # ------------------------------------------------------------------
    async def _handle_op(
        self, session: _Session, op: object, payload: dict, line: bytes
    ) -> None:
        wire_id = payload.get("id")
        if op == "ping":
            await session.send_bytes(
                dumps_line({"op": "pong", "id": wire_id})
            )
            return
        if op in _RELOAD_OPS:
            if self.reload_handler is None:
                await session.send_bytes(
                    dumps_line(
                        {
                            "id": wire_id,
                            "error": "cluster reload requires the "
                            "supervisor (no reload handler installed)",
                        }
                    )
                )
                return
            result = await self.reload_handler(payload)
            await session.send_bytes(
                dumps_line({"op": op, "id": wire_id, **result})
            )
            return
        if op == "env":
            # Environment events fan out to *every* worker: each worker
            # process holds its own environment replica, and a flip
            # must revoke subscribed grants wherever they were issued —
            # not just on the shard this client's subjects hash to.
            # All workers answer with the same wire id; the client's
            # pending-future table resolves on the first and ignores
            # the rest, exactly like a duplicated op response.
            delivered = 0
            for name in list(self._workers):
                upstream = await session.upstream_for(name)
                if upstream is None:
                    continue
                upstream.outstanding[wire_id] = "op"
                try:
                    await upstream.send(line)
                    delivered += 1
                except (ConnectionResetError, BrokenPipeError, OSError):
                    self.breaker(upstream.name).record_failure()
                    await upstream.close(synthesize=True)
            if delivered == 0:
                await session.send_bytes(
                    dumps_line({"id": wire_id, "error": "no healthy worker"})
                )
            return
        if op in _FORWARD_OPS:
            upstream = await session.first_healthy_upstream()
            if upstream is None:
                await session.send_bytes(
                    dumps_line({"id": wire_id, "error": "no healthy worker"})
                )
                return
            upstream.outstanding[wire_id] = (
                "intern" if op == "intern" else "op"
            )
            try:
                await upstream.send(line)
            except (ConnectionResetError, BrokenPipeError, OSError):
                self.breaker(upstream.name).record_failure()
                await upstream.close(synthesize=True)
            return
        await session.send_bytes(
            dumps_line({"id": wire_id, "error": f"unknown op {op!r}"})
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def find_trace(self, trace_id: str) -> "list[Dict[str, object]]":
        """The router's retained spans for ``trace_id`` (maybe [])."""
        if self.spans is None:
            return []
        return self.spans.get(trace_id)

    def recent_traces(self, limit: Optional[int] = None) -> "list[str]":
        """Retained trace ids, newest first."""
        if self.spans is None:
            return []
        return self.spans.trace_ids(limit)

    def stats(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "workers": {
                name: {
                    "address": list(self._workers[name]),
                    "routed": self.routed.get(name, 0),
                    "breaker": self._breakers[name].state(),
                    "breaker_opens": self._breakers[name].opens,
                }
                for name in sorted(self._workers)
            },
            "connections": self.connections,
            "sessions": len(self._sessions),
            "in_flight": sum(s.in_flight for s in self._sessions),
            "unavailable_synthesized": self.unavailable_synthesized,
            "trace_sample_rate": self.trace_sample_rate,
            "traces_sampled": self.sampler.sampled,
        }
        if self.spans is not None:
            data["trace_buffer"] = self.spans.stats()
        return data


# ----------------------------------------------------------------------
# Fast-path line scanners
# ----------------------------------------------------------------------
# encode_request serializes compactly with "id" first and "subject"
# second, so the hot path can lift the routing key with two byte scans
# and no JSON parse.  Anything surprising (ops, escapes, other
# producers' field orders) falls back to parse_line — the scanners
# must never guess.

_ID_PREFIX = b'{"id":'
_SUBJECT_MARK = b'"subject":"'
_TENANT_MARK = b'"tenant":"'
_TRACE_MARK = b'"trace":"'


def _scan_string(line: bytes, marker: bytes) -> Optional[str]:
    start = line.find(marker)
    if start < 0:
        return None
    start += len(marker)
    end = line.find(b'"', start)
    if end < 0 or b"\\" in line[start:end]:
        return None
    try:
        return line[start:end].decode("utf-8")
    except UnicodeDecodeError:
        return None


def _scan_request(line: bytes) -> Optional[Tuple[object, str]]:
    """``(id, shard_key)`` of a compact decision line; None → slow path."""
    if not line.startswith(_ID_PREFIX):
        return None
    if b'"op"' in line:
        return None  # never treat an op as a decision
    rest = line[len(_ID_PREFIX) :]
    wire_id: object
    if rest[:1] == b'"':
        end = rest.find(b'"', 1)
        if end < 0 or b"\\" in rest[1:end]:
            return None
        wire_id = rest[1:end].decode("utf-8", "replace")
    else:
        end = 0
        while end < len(rest) and rest[end : end + 1] in b"-0123456789":
            end += 1
        if end == 0 or rest[end : end + 1] not in (b",", b"}"):
            return None
        try:
            wire_id = int(rest[:end])
        except ValueError:
            return None
    tenant = _scan_string(line, _TENANT_MARK)
    if tenant:
        return wire_id, tenant
    subject = _scan_string(line, _SUBJECT_MARK)
    if subject:
        return wire_id, subject
    if b'"subject"' in line or b'"tenant"' in line:
        return None  # present but not scannable: fall back
    return wire_id, str(wire_id)  # subjectless request


def _scan_trace(line: bytes) -> Optional[TraceContext]:
    """The line's trace context, or None (absent or unscannable).

    A valid wire context is pure hex-and-dash, so the no-escapes scan
    is exact; anything unparseable forwards verbatim and the worker's
    own decoder renders the verdict.
    """
    if _TRACE_MARK not in line:
        return None
    wire = _scan_string(line, _TRACE_MARK)
    if wire is None:
        return None
    try:
        return TraceContext.parse(wire)
    except ValueError:
        return None


def _scan_response_id(
    line: bytes,
) -> Tuple[object, Optional[dict]]:
    """``(id, parsed_payload_or_None)`` of a response line.

    Responses also serialize ``id`` first; when the scan cannot be
    trusted the line is fully parsed (and the parse returned so the
    caller does not pay it twice).
    """
    if line.startswith(_ID_PREFIX):
        rest = line[len(_ID_PREFIX) :]
        if rest[:1] == b'"':
            end = rest.find(b'"', 1)
            if end >= 0 and b"\\" not in rest[1:end]:
                return rest[1:end].decode("utf-8", "replace"), None
        else:
            end = 0
            while end < len(rest) and rest[end : end + 1] in b"-0123456789":
                end += 1
            if end and rest[end : end + 1] in (b",", b"}"):
                try:
                    return int(rest[:end]), None
                except ValueError:
                    pass
    try:
        payload = parse_line(line, max_bytes=MAX_OP_LINE_BYTES)
    except ServiceError:
        return None, None
    return payload.get("id"), payload


__all__ = ["CircuitBreaker", "ShardRouter", "ROUTER_INTERN_ID"]
