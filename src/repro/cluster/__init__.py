"""Multi-worker PDP cluster: shard router, supervisor, live-ops.

One supervisor process forks N single-loop ``PDPServer`` workers and
fronts them with a :class:`~repro.cluster.router.ShardRouter` that
consistent-hashes each request's shard key (tenant, else subject) to
a worker — keeping every decision cache hot for its own key range.
The supervisor restarts dead workers with backoff, drives cluster-wide
two-phase policy reloads (prepare everywhere, then activate
everywhere or abort everywhere), and aggregates per-worker metrics,
health, and flight-recorder tails into one cluster view.
"""

from repro.cluster.admin import ClusterAdminServer
from repro.cluster.liveops import (
    merge_flight,
    merge_health,
    merge_prometheus,
)
from repro.cluster.ring import ConsistentHashRing, stable_hash
from repro.cluster.router import CircuitBreaker, ShardRouter
from repro.cluster.supervisor import ClusterSupervisor, WorkerHandle

__all__ = [
    "CircuitBreaker",
    "ClusterAdminServer",
    "ClusterSupervisor",
    "ConsistentHashRing",
    "ShardRouter",
    "WorkerHandle",
    "merge_flight",
    "merge_health",
    "merge_prometheus",
    "stable_hash",
]
