"""Cluster live-ops: merge per-worker telemetry into one view.

Pure functions over data the supervisor's control connections already
fetch (the ``metrics`` / ``health`` / ``dump`` wire ops), so they are
trivially testable without a cluster.  Every merged sample, health
row, and flight entry carries a ``shard`` label naming the worker it
came from — one scrape target, per-shard drill-down.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

from repro.obs.export import (
    PrometheusParseError,
    escape_label_value,
    parse_prometheus,
)

_TYPE_LINE = re.compile(r"^#\s+TYPE\s+(\S+)\s+(\S+)\s*$", re.MULTILINE)


def _render_labels(labels: Dict[str, str]) -> str:
    body = ",".join(
        f'{key}="{escape_label_value(value)}"'
        for key, value in labels.items()
    )
    return "{" + body + "}"


def merge_prometheus(texts: Dict[str, str]) -> str:
    """Merge per-worker expositions into one, adding ``shard`` labels.

    ``texts`` maps worker name -> that worker's Prometheus text
    exposition.  Every sample is re-emitted with ``shard="<name>"``
    merged into its label set; ``# TYPE`` declarations are emitted
    once per metric family.  A worker whose exposition fails to parse
    contributes a ``grbac_cluster_scrape_errors`` sample instead of
    poisoning the whole scrape.
    """
    types: Dict[str, str] = {}
    merged: Dict[str, List[str]] = {}
    scrape_errors: Dict[str, int] = {}
    for shard in sorted(texts):
        text = texts[shard]
        for match in _TYPE_LINE.finditer(text):
            types.setdefault(match.group(1), match.group(2))
        try:
            samples = parse_prometheus(text)
        except PrometheusParseError:
            scrape_errors[shard] = 1
            continue
        for name in samples:
            lines = merged.setdefault(name, [])
            for labels, value in samples[name]:
                labelled = dict(labels)
                labelled["shard"] = shard
                lines.append(f"{name}{_render_labels(labelled)} {value}")
    def family_of(name: str) -> str:
        # Histogram series (_bucket/_sum/_count) belong to the family
        # their TYPE line declares; everything else is its own family.
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                return name[: -len(suffix)]
        return name

    families: Dict[str, List[str]] = {}
    for name in merged:
        families.setdefault(family_of(name), []).append(name)
    out: List[str] = []
    for family in sorted(families):
        if family in types:
            out.append(f"# TYPE {family} {types[family]}")
        for name in sorted(families[family]):
            out.extend(merged[name])
    out.append("# TYPE grbac_cluster_scrape_errors_total counter")
    for shard in sorted(texts):
        out.append(
            f"grbac_cluster_scrape_errors_total{_render_labels({'shard': shard})} "
            f"{scrape_errors.get(shard, 0)}"
        )
    return "\n".join(out) + "\n"


def merge_health(
    reports: Dict[str, Optional[Dict[str, Any]]]
) -> Dict[str, Any]:
    """One cluster health body from per-worker ``health`` bodies.

    ``None`` marks an unreachable worker.  The cluster is healthy only
    when every worker answered healthy **and** all of them serve the
    same policy generation — a mixed-generation cluster answers the
    same request differently depending on the shard it lands on, which
    is exactly what the two-phase reload exists to prevent.
    """
    generations = sorted(
        {
            report["generation"]
            for report in reports.values()
            if report is not None and "generation" in report
        }
    )
    workers = {}
    for shard in sorted(reports):
        report = reports[shard]
        if report is None:
            workers[shard] = {"healthy": False, "reachable": False}
        else:
            workers[shard] = {**report, "reachable": True}
    healthy = (
        bool(reports)
        and all(
            report is not None and report.get("healthy", False)
            for report in reports.values()
        )
        and len(generations) <= 1
    )
    return {
        "healthy": healthy,
        "workers": workers,
        "generations": generations,
        "mixed_generations": len(generations) > 1,
    }


def merge_flight(
    tails: Dict[str, List[Dict[str, Any]]], limit: Optional[int] = None
) -> List[Dict[str, Any]]:
    """Interleave per-worker flight-recorder tails into one list.

    Entries gain a ``shard`` field.  Recorder sequence numbers are
    per-worker (there is no cluster clock), so ordering is by ``seq``
    then shard name — each worker's own tail stays in order and the
    interleave is deterministic; ``limit`` keeps the last N.
    """
    merged: List[Dict[str, Any]] = []
    for shard in sorted(tails):
        for entry in tails[shard]:
            merged.append({**entry, "shard": shard})
    merged.sort(key=lambda e: (e.get("seq", 0), e.get("shard", "")))
    if limit is not None and limit >= 0:
        merged = merged[len(merged) - min(limit, len(merged)):]
    return merged


def join_trace(
    reports: Dict[str, Optional[List[Dict[str, Any]]]]
) -> List[Dict[str, Any]]:
    """One waterfall-ordered span list from per-source span fetches.

    ``reports`` maps a source name (``"router"`` or a worker name) to
    the spans that source holds for one trace id — ``None`` marks an
    unreachable source, an empty list a source that never saw the
    trace.  Every span gains a ``shard`` field naming its source.

    Ordering is the waterfall a human wants to read: roots first (a
    span whose parent is absent from the joined set — the router's
    origin span, or a client-originated span whose client we cannot
    see), each span immediately followed by its children, siblings by
    start time.  Each span also gains ``depth`` (0 for roots) so a
    renderer can indent without re-deriving parentage.
    """
    spans: List[Dict[str, Any]] = []
    for source in sorted(reports):
        listing = reports[source]
        if not listing:
            continue
        for span in listing:
            spans.append({**span, "shard": source})
    span_ids = {
        span["span_id"] for span in spans if span.get("span_id")
    }
    children: Dict[str, List[Dict[str, Any]]] = {}
    roots: List[Dict[str, Any]] = []
    for span in spans:
        parent = span.get("parent_span_id") or ""
        if parent and parent in span_ids:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)

    def start_key(span: Dict[str, Any]) -> Any:
        return (span.get("start_s") or 0.0, span.get("span_id") or "")

    ordered: List[Dict[str, Any]] = []

    def walk(span: Dict[str, Any], depth: int) -> None:
        ordered.append({**span, "depth": depth})
        own_id = span.get("span_id") or ""
        for child in sorted(children.get(own_id, []), key=start_key):
            walk(child, depth + 1)

    for root in sorted(roots, key=start_key):
        walk(root, 0)
    return ordered


__all__ = ["join_trace", "merge_flight", "merge_health", "merge_prometheus"]
