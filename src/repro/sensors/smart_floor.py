"""The Smart Floor — weight-based identification (§5.2, ref. [12]).

The paper's worked example: "the Smart Floor can identify her as Alice
with 75% accuracy by comparing the amount of weight that it senses
with its internal, 'official' weight for Alice... it may be able to
authenticate her into the *Child* role with 98% accuracy, because it
knows the approximate weight of children in the household."

The model here makes both numbers *derived* rather than hard-coded:

* **identity** — a Bayesian posterior over enrolled residents under a
  Gaussian weight-measurement model.  Residents with similar weights
  (two kids at 88 lb and 94 lb) are inherently confusable, so identity
  confidence is moderate.
* **role** — the probability mass of the measured weight falling in a
  declared weight class (e.g. *child* = 40–120 lb).  Classes are far
  apart, so role confidence approaches the sensor's reliability even
  when identity is ambiguous.

That gap — high role confidence, modest identity confidence — is the
entire point of §5.2, and it emerges from the physics of the model.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.auth.authenticator import Evidence, Presence
from repro.auth.claims import IdentityClaim, RoleClaim
from repro.exceptions import AuthenticationError
from repro.sensors.base import SimulatedSensor, interval_probability

#: Presence feature carrying the person's true weight in pounds.
WEIGHT_FEATURE = "weight_lb"


class SmartFloor(SimulatedSensor):
    """Weight-sensing floor that identifies people and weight classes.

    :param measurement_sigma: std-dev of the weight measurement noise
        (pounds) — the physical sensor error.
    :param identity_sigma: std-dev used in the identity likelihood —
        how much a person's day-to-day weight varies around their
        enrolled ("official") weight.
    :param reliability: cap on reported confidences.
    """

    name = "smart-floor"

    def __init__(
        self,
        measurement_sigma: float = 3.0,
        identity_sigma: float = 5.0,
        reliability: float = 0.98,
        seed: int = 0,
    ) -> None:
        super().__init__(reliability=reliability, seed=seed)
        if measurement_sigma < 0 or identity_sigma <= 0:
            raise AuthenticationError("sigmas must be positive")
        self._measurement_sigma = measurement_sigma
        self._identity_sigma = identity_sigma
        #: subject -> enrolled official weight (lb)
        self._enrolled: Dict[str, float] = {}
        #: role -> (min_lb, max_lb) weight class
        self._classes: Dict[str, Tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # Enrollment
    # ------------------------------------------------------------------
    def enroll(self, subject: str, weight_lb: float) -> None:
        """Register a resident's official weight (§5.2: Alice, 94 lb)."""
        if weight_lb <= 0:
            raise AuthenticationError("weight must be positive")
        self._enrolled[subject] = weight_lb

    def define_weight_class(
        self, role: str, min_lb: float, max_lb: float
    ) -> None:
        """Declare a subject role's approximate weight range."""
        if not 0 < min_lb < max_lb:
            raise AuthenticationError("invalid weight class bounds")
        self._classes[role] = (min_lb, max_lb)

    # ------------------------------------------------------------------
    # Sensing
    # ------------------------------------------------------------------
    def measure(self, true_weight: float) -> float:
        """One noisy weight measurement."""
        return true_weight + self.gaussian_noise(self._measurement_sigma)

    def observe(self, presence: Presence) -> Evidence:
        """Sense the presence's weight and emit identity + role claims."""
        true_weight = presence.feature(WEIGHT_FEATURE)
        if true_weight is None:
            return Evidence(self.name)
        measured = self.measure(float(true_weight))
        identity_claims = tuple(
            IdentityClaim(subject, confidence, self.name)
            for subject, confidence in self.identity_posterior(measured).items()
            if confidence > 0.01
        )
        role_claims = tuple(
            RoleClaim(role, confidence, self.name)
            for role, confidence in self.role_confidences(measured).items()
            if confidence > 0.01
        )
        return Evidence(self.name, identity_claims, role_claims)

    # ------------------------------------------------------------------
    # The measurement models (exposed for tests and benchmarks)
    # ------------------------------------------------------------------
    def identity_posterior(self, measured: float) -> Dict[str, float]:
        """Posterior over enrolled residents given a measured weight.

        Uniform prior over enrolled residents, Gaussian likelihood
        around each official weight; the posterior is then capped by
        the sensor reliability.
        """
        if not self._enrolled:
            return {}
        likelihoods = {
            subject: math.exp(
                -0.5 * ((measured - weight) / self._identity_sigma) ** 2
            )
            for subject, weight in self._enrolled.items()
        }
        total = sum(likelihoods.values())
        if total <= 1e-12:
            return {}
        return {
            subject: self.bound(likelihood / total)
            for subject, likelihood in likelihoods.items()
        }

    def role_confidences(self, measured: float) -> Dict[str, float]:
        """P(true weight in each declared class | measured weight)."""
        return {
            role: self.bound(
                interval_probability(measured, low, high, self._measurement_sigma)
            )
            for role, (low, high) in self._classes.items()
        }
