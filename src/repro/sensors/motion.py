"""Motion / occupancy sensing — presence as environment state.

Motion sensors do not identify anyone; they report that *somebody* is
in a room.  That feeds environment roles like *home-occupied* (the
utility-management app of §2 heats the house "only when it knows there
are residents inside") without any authentication at all.

:class:`OccupancyProvider` derives per-zone occupancy from the
location service (the simulation's ground truth for movement) and
writes ``occupancy.<zone>`` counts plus ``occupancy.home`` into the
environment state on every refresh.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.env.clock import Clock
from repro.env.location import LocationService
from repro.env.providers import StateProvider
from repro.env.state import EnvironmentState


class OccupancyProvider(StateProvider):
    """Mirrors zone occupancy counts into environment state.

    :param location: the location service to read.
    :param zones: zone names to track; ``"home"`` aggregates everything
        that is not outside.
    """

    name = "occupancy"

    def __init__(self, location: LocationService, zones: Iterable[str]) -> None:
        self._location = location
        self._zones: List[str] = list(zones)

    def refresh(self, state: EnvironmentState, clock: Clock) -> None:
        for zone in self._zones:
            state.set(f"occupancy.{zone}", self._location.occupancy(zone))
