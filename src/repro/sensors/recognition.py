"""Face and voice recognition sensors (§3's 90% / 70% example).

"An experiment might conclude that face recognition is 90% accurate,
while voice recognition is only 70% accurate."  Both are instances of
one model, :class:`RecognitionSensor`, parameterized by modality and
accuracy.

Two operating modes:

* **deterministic** (default) — the sensor recognizes an enrolled
  signature and reports the correct identity at exactly its accuracy.
  This is the right model for policy reasoning and the paper's worked
  numbers: "90% accurate" becomes an identity claim at 0.90.
* **stochastic** — with probability ``accuracy`` the correct identity
  is reported; otherwise the sensor misreads (uniformly among other
  enrolled residents) or misses entirely.  Used by workload traces to
  measure *realized* grant/deny error rates under sensor error (E4).
"""

from __future__ import annotations

from typing import Dict

from repro.auth.authenticator import Evidence, Presence
from repro.auth.claims import IdentityClaim
from repro.exceptions import AuthenticationError
from repro.sensors.base import SimulatedSensor


class RecognitionSensor(SimulatedSensor):
    """A biometric recognizer over enrolled signatures.

    :param modality: presence feature to read, e.g. ``"face"`` or
        ``"voice"`` — the feature value is the person's true signature.
    :param accuracy: recognition accuracy, also used as the reported
        confidence.
    :param stochastic: enable the error-sampling mode.
    :param miss_fraction: in stochastic mode, the fraction of errors
        that are misses (no claim) rather than misidentifications.
    """

    def __init__(
        self,
        modality: str,
        accuracy: float,
        stochastic: bool = False,
        miss_fraction: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(reliability=accuracy, seed=seed)
        if not 0.0 < accuracy <= 1.0:
            raise AuthenticationError("accuracy must be in (0, 1]")
        if not 0.0 <= miss_fraction <= 1.0:
            raise AuthenticationError("miss_fraction must be in [0, 1]")
        self.name = f"{modality}-recognition"
        self._modality = modality
        self.accuracy = accuracy
        self._stochastic = stochastic
        self._miss_fraction = miss_fraction
        #: signature -> subject
        self._signatures: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Enrollment
    # ------------------------------------------------------------------
    def enroll(self, subject: str, signature: str) -> None:
        """Register a subject's biometric signature.

        :raises AuthenticationError: if the signature is already bound
            to a *different* subject — colliding biometrics must be
            surfaced at enrollment, not at recognition time.
        """
        existing = self._signatures.get(signature)
        if existing is not None and existing != subject:
            raise AuthenticationError(
                f"signature already enrolled for {existing!r}"
            )
        self._signatures[signature] = subject

    def enrolled_subjects(self) -> list:
        """All enrolled subjects (deduplicated, sorted)."""
        return sorted(set(self._signatures.values()))

    # ------------------------------------------------------------------
    # Sensing
    # ------------------------------------------------------------------
    def observe(self, presence: Presence) -> Evidence:
        signature = presence.feature(self._modality)
        if signature is None:
            return Evidence(self.name)
        subject = self._signatures.get(str(signature))
        if subject is None:
            return Evidence(self.name)
        if not self._stochastic:
            return self._claim(subject)
        roll = self._rng.random()
        if roll < self.accuracy:
            return self._claim(subject)
        # Error branch: miss or misidentify.
        if self._rng.random() < self._miss_fraction:
            return Evidence(self.name)
        others = [s for s in self.enrolled_subjects() if s != subject]
        if not others:
            return Evidence(self.name)
        wrong = others[self._rng.randrange(len(others))]
        return self._claim(wrong)

    def _claim(self, subject: str) -> Evidence:
        return Evidence(
            self.name,
            identity_claims=(IdentityClaim(subject, self.accuracy, self.name),),
        )


def face_sensor(
    accuracy: float = 0.90, stochastic: bool = False, seed: int = 0
) -> RecognitionSensor:
    """The paper's face-recognition sensor (90% accurate)."""
    return RecognitionSensor("face", accuracy, stochastic=stochastic, seed=seed)


def voice_sensor(
    accuracy: float = 0.70, stochastic: bool = False, seed: int = 0
) -> RecognitionSensor:
    """The paper's voice-recognition sensor (70% accurate)."""
    return RecognitionSensor("voice", accuracy, stochastic=stochastic, seed=seed)
