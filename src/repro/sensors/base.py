"""Sensor framework — simulated identification hardware.

The Aware Home identifies residents implicitly through sensors (§3,
§5.2).  No such hardware exists here, so each sensor is a *model*: it
receives the simulation's ground truth (who is actually present, with
which physical features) through an
:class:`~repro.auth.authenticator.Presence` and emits the evidence a
real sensor plausibly would — noisy, partial, and quantified with a
confidence.

Design rules every sensor follows:

* deterministic by default (seeded RNG) so scenarios replay exactly;
* never raises on an unrecognizable presence — empty evidence is the
  normal "I didn't see anything I know" outcome;
* confidence is capped by the sensor's ``reliability`` — a sensor that
  is wrong 10% of the time must never report 0.99.
"""

from __future__ import annotations

import math
import random

from repro.auth.authenticator import Authenticator
from repro.exceptions import AuthenticationError


def gaussian_cdf(x: float) -> float:
    """Standard normal CDF via the error function."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def interval_probability(
    value: float, low: float, high: float, sigma: float
) -> float:
    """P(true quantity in [low, high] | measured ``value``) under a
    Gaussian measurement-error model with standard deviation ``sigma``."""
    if sigma <= 0:
        return 1.0 if low <= value <= high else 0.0
    return gaussian_cdf((high - value) / sigma) - gaussian_cdf((low - value) / sigma)


class SimulatedSensor(Authenticator):
    """Base class for seeded, reliability-bounded sensors.

    :param reliability: upper bound on any confidence this sensor
        reports; models intrinsic hardware/algorithm error.
    :param seed: RNG seed for the sensor's noise.
    """

    name = "sensor"

    def __init__(self, reliability: float = 0.99, seed: int = 0) -> None:
        if not 0.0 < reliability <= 1.0:
            raise AuthenticationError("reliability must be in (0, 1]")
        self.reliability = reliability
        self._rng = random.Random(seed)

    def bound(self, confidence: float) -> float:
        """Clamp a raw confidence into [0, reliability]."""
        return max(0.0, min(self.reliability, confidence))

    def gaussian_noise(self, sigma: float) -> float:
        """One sample of the sensor's measurement noise."""
        if sigma <= 0:
            return 0.0
        return self._rng.gauss(0.0, sigma)

    def reseed(self, seed: int) -> None:
        """Reset the noise stream (used between benchmark repetitions)."""
        self._rng = random.Random(seed)
