"""Simulated sensing hardware for the Aware Home.

Substitutes for the paper's physical sensors (DESIGN.md §2): the Smart
Floor, face and voice recognition, and motion/occupancy sensing.  All
sensors are deterministic (seeded) models that plug into the
authentication pipeline as :class:`~repro.auth.Authenticator`\\ s.
"""

from repro.sensors.base import (
    SimulatedSensor,
    gaussian_cdf,
    interval_probability,
)
from repro.sensors.motion import OccupancyProvider
from repro.sensors.recognition import (
    RecognitionSensor,
    face_sensor,
    voice_sensor,
)
from repro.sensors.smart_floor import WEIGHT_FEATURE, SmartFloor

__all__ = [
    "WEIGHT_FEATURE",
    "OccupancyProvider",
    "RecognitionSensor",
    "SimulatedSensor",
    "SmartFloor",
    "face_sensor",
    "gaussian_cdf",
    "interval_probability",
    "voice_sensor",
]
