"""The staged decision pipeline — one mediation path for every mode.

GRBAC's access mediation rule (§4.2.4) is a fixed sequence; this
module makes that sequence explicit.  Every decision — ``decide``,
``decide_batch``, ``check``, any mode — runs the same seven stages
over one shared :class:`DecisionContext`:

1. :class:`ResolveSubjectRoles` — which subject roles (with what
   authentication confidence) can the requester use, after the §4.1.2
   session restriction;
2. :class:`SnapshotEnvironment` — which environment roles are
   directly active right now (explicit override, or the engine's
   environment source, request-aware when available);
3. :class:`ExpandClosures` — close possession/activation over the
   three role hierarchies (§4.1.2 "Role Hierarchies");
4. :class:`MatchPermissions` — collect the permissions whose
   (subject role, object role, environment role, transaction) tests
   all hold, confidence-gated per §5.2;
5. :class:`ResolvePrecedence` — feed grants and denies to the
   policy's precedence strategy (§4.1.2 "Role Precedence");
6. :class:`ApplyConstraints` — run engine-registered decision
   constraints, each of which may veto a grant (an extension point;
   none are registered by default);
7. :class:`EmitDecision` — build the immutable
   :class:`~repro.core.decision.Decision` and publish it to any
   subscribed observers.

The naive / indexed / compiled decision paths that used to be three
parallel ``_decide_*`` functions are now *strategies*
(:class:`NaiveStrategy`, :class:`IndexedStrategy`,
:class:`CompiledStrategy`) plugged into stages 1, 3, and 4.  A
strategy may fuse work across its stages for speed — the compiled
strategy serves subject resolution and expansion from one memoized
profile — but stage *outputs* (role sets, confidences, matches) are
identical across strategies, which is what the 3-way equivalence
property pins down.

Tracing: ``execute(..., trace=True)`` wraps every stage in a timed
:class:`~repro.obs.trace.StageSpan` and feeds per-stage latency
histograms in the engine's metrics registry.  The untraced path runs
the same stage objects with no timing calls at all, which is what
keeps instrumentation overhead inside the E11 budget.
"""

from __future__ import annotations

import itertools
import time
import weakref
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.activation import Session
from repro.core.compiled import CompiledPolicy
from repro.core.vectorized import VectorTable
from repro.core.decision import WILDCARD_DISTANCE, AccessRequest, Decision
from repro.core.permissions import Permission, Sign
from repro.core.precedence import Match, Resolution, resolve
from repro.core.roles import ANY_ENVIRONMENT, ANY_OBJECT
from repro.exceptions import PolicyError
from repro.obs.trace import DecisionTrace

#: The expansion/match strategies an engine can run.
MODES = ("compiled", "vectorized", "indexed", "naive")

#: Stage names in execution order (the trace vocabulary).
STAGE_ORDER = (
    "resolve-subject-roles",
    "snapshot-environment",
    "expand-closures",
    "match-permissions",
    "resolve-precedence",
    "apply-constraints",
    "emit-decision",
)


# ----------------------------------------------------------------------
# Shared role-resolution helpers (used by every strategy + diagnose)
# ----------------------------------------------------------------------
def restricted_assigned_roles(
    policy, request: AccessRequest, session: Optional[Session]
) -> Set[str]:
    """The subject's directly assigned role names usable by ``request``.

    This is the single implementation of the §4.1.2 activation
    restriction — *only roles in the active role set can be used to
    execute transactions* — that every strategy shares: resolve the
    subject (raising for unknown names exactly once, in one place),
    then intersect the assigned set with the session's active roles
    when a session accompanies the request.
    """
    policy.subject(request.subject)
    assigned = policy.authorized_subject_role_names(request.subject)
    if session is not None:
        if session.subject != request.subject:
            raise PolicyError(
                f"session belongs to {session.subject!r}, "
                f"request is for {request.subject!r}"
            )
        assigned &= session.active_roles
    return assigned


def direct_subject_confidences(
    policy, request: AccessRequest, session: Optional[Session]
) -> Dict[str, float]:
    """Direct (pre-expansion) subject-role -> confidence for a request.

    Identity-derived roles carry ``identity_confidence``; explicit
    role claims carry their own confidence; where several sources
    support the same role, the maximum wins.
    """
    direct: Dict[str, float] = {}
    if request.subject is not None:
        for role_name in restricted_assigned_roles(policy, request, session):
            direct[role_name] = max(
                direct.get(role_name, 0.0), request.identity_confidence
            )
    for role_name, confidence in request.role_claims.items():
        policy.subject_roles.role(role_name)  # claims must name real roles
        direct[role_name] = max(direct.get(role_name, 0.0), confidence)
    return direct


def expand_subject_confidences(
    policy, direct: Dict[str, float]
) -> Dict[str, float]:
    """Expanded subject-role -> confidence map.

    Expansion propagates a role's confidence to all its
    generalizations (being *parent* at 0.9 implies being
    *family-member* at 0.9), max-merging where closures overlap.
    """
    hierarchy = policy.subject_roles
    effective: Dict[str, float] = {}
    for role_name, confidence in direct.items():
        for role in hierarchy.expand([role_name]):
            if confidence > effective.get(role.name, -1.0):
                effective[role.name] = confidence
    return effective


def object_role_names(policy, obj: str) -> Tuple[Set[str], Set[str]]:
    """(expanded role names incl. any-object, direct role names)."""
    expanded = {r.name for r in policy.effective_object_roles(obj)}
    direct = {r.name for r in policy.direct_object_roles(obj)}
    return expanded, direct


def environment_role_names(
    policy, active: FrozenSet[str]
) -> Tuple[Set[str], Set[str]]:
    """(expanded active role names incl. any-environment, direct)."""
    hierarchy = policy.environment_roles
    known = {name for name in active if name in hierarchy}
    expanded = {r.name for r in hierarchy.expand(known)}
    expanded.add(ANY_ENVIRONMENT.name)
    return expanded, known


def apply_confidence_gate(
    matches: List[Match], threshold: float
) -> List[Match]:
    """Drop GRANT matches whose confidence is insufficient.

    A rule that sets its own ``min_confidence`` governs itself — that
    is how §3's quality-tiered access works (stream at 90%, degraded
    snapshot at 60%, under a 90% house default).  Rules without one
    fall under the engine-wide threshold (§5.2's "90% accuracy before
    the system will grant rights").  Denies always survive:
    insufficient evidence must never *unlock* something a deny rule
    forbids.
    """
    kept: List[Match] = []
    for match in matches:
        if match.sign is Sign.DENY:
            kept.append(match)
            continue
        required = match.permission.min_confidence
        if required == 0.0:
            required = threshold
        if match.confidence >= required or required == 0.0:
            kept.append(match)
    return kept


def _dimension_distance(hierarchy, direct_roles: Set[str], target: str) -> int:
    distances = [
        d
        for d in (
            hierarchy.distance(name, target)
            for name in direct_roles
            if name in hierarchy
        )
        if d is not None
    ]
    return min(distances) if distances else WILDCARD_DISTANCE


def rule_specificity(
    policy,
    permission: Permission,
    directs: Tuple[Set[str], Set[str], Set[str]],
) -> int:
    """Total hierarchy distance of the rule from the request.

    Per dimension: the minimum specialization-path length from any
    role the request holds *directly* up to the role the rule was
    written against — 0 when the rule names a direct role, larger the
    more generally the rule was phrased.  The ``any-object`` /
    ``any-environment`` wildcards take a fixed large penalty: a
    wildcard is by definition the least specific way to match.
    """
    direct_subjects, direct_objects, direct_envs = directs
    subject_component = _dimension_distance(
        policy.subject_roles, direct_subjects, permission.subject_role.name
    )
    if permission.object_role == ANY_OBJECT:
        object_component = WILDCARD_DISTANCE
    else:
        object_component = _dimension_distance(
            policy.object_roles, direct_objects, permission.object_role.name
        )
    if permission.environment_role == ANY_ENVIRONMENT:
        environment_component = WILDCARD_DISTANCE
    else:
        environment_component = _dimension_distance(
            policy.environment_roles,
            direct_envs,
            permission.environment_role.name,
        )
    return subject_component + object_component + environment_component


# ----------------------------------------------------------------------
# Decision context
# ----------------------------------------------------------------------
class DecisionContext:
    """Shared state of one request's trip through the pipeline.

    Stages write their outputs here; later stages (and trace
    annotations) read them.  Only the request-identity slots are
    initialized eagerly — everything else is written by exactly one
    stage, so the untraced hot path pays for no speculative stores.
    """

    __slots__ = (
        # request identity (set at construction)
        "request",
        "session",
        "env_override",
        "active_env",
        "trace",
        # stage 1: resolve-subject-roles
        "direct_subject_confidences",  # string strategies only
        "subject_confidences",
        "subject_state",  # strategy-private (compiled masks/distances)
        # stage 3: expand-closures
        "object_roles",
        "direct_object_roles",
        "object_state",
        "environment_roles",
        "direct_environment_roles",
        "environment_state",
        # stages 4-7
        "matches",
        "resolution",
        "vetoes",
        "decision",
    )

    def __init__(
        self,
        request: AccessRequest,
        session: Optional[Session] = None,
        active_env: Optional[FrozenSet[str]] = None,
        env_override: Optional[Set[str]] = None,
        trace: Optional[DecisionTrace] = None,
    ) -> None:
        self.request = request
        self.session = session
        self.active_env = active_env
        self.env_override = env_override
        self.trace = trace


def _ctx_get(ctx: DecisionContext, name: str):
    """Read a context slot that may not have been written yet."""
    return getattr(ctx, name, None)


# ----------------------------------------------------------------------
# Strategies: how ResolveSubjectRoles / ExpandClosures / MatchPermissions
# compute their outputs
# ----------------------------------------------------------------------
class DecisionStrategy:
    """Computes the strategy-dependent stages of the pipeline.

    One instance per engine; strategies own whatever acceleration
    state their mode needs (tuple index, compiled snapshot, expansion
    memos) and report it through :meth:`stats`.
    """

    name = "abstract"

    def __init__(self, engine) -> None:
        self.engine = engine
        self.policy = engine.policy

    def resolve_subject(self, ctx: DecisionContext) -> None:
        raise NotImplementedError

    def expand(self, ctx: DecisionContext) -> None:
        raise NotImplementedError

    def match(self, ctx: DecisionContext) -> None:
        raise NotImplementedError

    def stats(self) -> Dict[str, object]:
        """Strategy-owned counters merged into ``engine.stats()``."""
        return {}


class _StringSetStrategy(DecisionStrategy):
    """Shared machinery for the naive and indexed strategies: role
    expansion over string sets, matches built permission-by-permission."""

    def resolve_subject(self, ctx: DecisionContext) -> None:
        ctx.direct_subject_confidences = direct_subject_confidences(
            self.policy, ctx.request, ctx.session
        )

    def expand(self, ctx: DecisionContext) -> None:
        policy = self.policy
        ctx.subject_confidences = expand_subject_confidences(
            policy, ctx.direct_subject_confidences
        )
        ctx.object_roles, ctx.direct_object_roles = object_role_names(
            policy, ctx.request.obj
        )
        ctx.environment_roles, ctx.direct_environment_roles = (
            environment_role_names(policy, ctx.active_env)
        )

    def _build_match(self, ctx: DecisionContext, permission: Permission) -> Match:
        directs = (
            set(ctx.direct_subject_confidences),
            ctx.direct_object_roles,
            ctx.direct_environment_roles,
        )
        return Match(
            permission=permission,
            subject_role=permission.subject_role,
            object_role=permission.object_role,
            environment_role=permission.environment_role,
            specificity=rule_specificity(self.policy, permission, directs),
            confidence=ctx.subject_confidences[permission.subject_role.name],
        )


class NaiveStrategy(_StringSetStrategy):
    """Literal transcription of the §4.2.4 quantifier rule — the
    ground truth the fast strategies are property-tested against."""

    name = "naive"

    def match(self, ctx: DecisionContext) -> None:
        policy = self.policy
        policy.transaction(ctx.request.transaction)
        confidences = ctx.subject_confidences
        object_roles = ctx.object_roles
        env_roles = ctx.environment_roles
        matches: List[Match] = []
        for permission in policy.permissions():
            if permission.transaction.name != ctx.request.transaction:
                continue
            if permission.subject_role.name not in confidences:
                continue
            if permission.object_role.name not in object_roles:
                continue
            if permission.environment_role.name not in env_roles:
                continue
            matches.append(self._build_match(ctx, permission))
        ctx.matches = apply_confidence_gate(
            matches, self.engine.confidence_threshold
        )


class IndexedStrategy(_StringSetStrategy):
    """Tuple-keyed permission index over the requester's effective
    (subject role x object role) pairs."""

    name = "indexed"

    def __init__(self, engine) -> None:
        super().__init__(engine)
        #: (transaction, subject_role, object_role) -> permissions
        self._index: Dict[Tuple[str, str, str], List[Permission]] = {}
        self._permission_order: Dict[tuple, int] = {}
        self._indexed_revision = -1  # force initial build

    def match(self, ctx: DecisionContext) -> None:
        self.policy.transaction(ctx.request.transaction)
        self._refresh_index()
        transaction = ctx.request.transaction
        matches: List[Match] = []
        for subject_role, object_role in itertools.product(
            ctx.subject_confidences, ctx.object_roles
        ):
            for permission in self._index.get(
                (transaction, subject_role, object_role), ()
            ):
                if permission.environment_role.name in ctx.environment_roles:
                    matches.append(self._build_match(ctx, permission))
        # Keep policy insertion order for deterministic resolution.
        matches.sort(key=lambda m: self._permission_order[m.permission.key])
        ctx.matches = apply_confidence_gate(
            matches, self.engine.confidence_threshold
        )

    def _refresh_index(self) -> None:
        if self.policy.permission_revision == self._indexed_revision:
            return
        permissions = self.policy.permissions()
        self._index = {}
        self._permission_order = {}
        for position, permission in enumerate(permissions):
            key = (
                permission.transaction.name,
                permission.subject_role.name,
                permission.object_role.name,
            )
            self._index.setdefault(key, []).append(permission)
            self._permission_order[permission.key] = position
        self._indexed_revision = self.policy.permission_revision


class CompiledStrategy(DecisionStrategy):
    """Interned-ID bitset mediation served from an immutable
    :class:`~repro.core.compiled.CompiledPolicy` snapshot (see
    :mod:`repro.core.compiled` and ``docs/PERFORMANCE.md``).

    Stage fusion: the memoized subject profile already carries the
    hierarchy-expanded closure, so for this strategy subject expansion
    happens inside :meth:`resolve_subject`; :meth:`expand` covers the
    object and environment dimensions.  Stage *outputs* remain
    identical to the string strategies — that is property-tested.
    """

    name = "compiled"

    def __init__(self, engine) -> None:
        super().__init__(engine)
        #: Snapshot this engine currently serves.
        self._snapshot: Optional[CompiledPolicy] = None
        #: Snapshot (re)loads observed, and the time spent waiting on
        #: them (compilation is shared per policy, so a load can be a
        #: cheap cache hit on the policy side).
        self.compile_count = 0
        self.compile_time_s = 0.0
        #: subject name -> (effective ids, names, mask, distance table);
        #: valid for one snapshot revision (cleared on reload).
        self._subject_memo: Dict[str, tuple] = {}
        #: Session -> (epoch, profile); weak so ended sessions drop out.
        self._session_memo: "weakref.WeakKeyDictionary[Session, tuple]" = (
            weakref.WeakKeyDictionary()
        )
        #: object name -> (mask, expanded names, distance table).
        self._object_memo: Dict[str, tuple] = {}
        #: frozenset of direct env roles -> (mask, names, distances).
        self._env_memo: Dict[FrozenSet[str], tuple] = {}

    # -- snapshot lifecycle -------------------------------------------
    def snapshot(self) -> CompiledPolicy:
        """The compiled snapshot for the current decision revision.

        Reloads (and drops every expansion memo) whenever the policy's
        ``decision_revision`` has moved past the held snapshot — the
        revision-based invalidation the property tests pin down.
        """
        snapshot = self._snapshot
        if snapshot is None or snapshot.revision != self.policy.decision_revision:
            started = time.perf_counter()
            snapshot = self.policy.compiled()
            self.compile_time_s += time.perf_counter() - started
            self.compile_count += 1
            self._snapshot = snapshot
            self._subject_memo.clear()
            self._session_memo = weakref.WeakKeyDictionary()
            self._object_memo.clear()
            self._env_memo.clear()
        return snapshot

    def stats(self) -> Dict[str, object]:
        snapshot = self._snapshot
        return {
            "compile_count": self.compile_count,
            "compile_time_s": self.compile_time_s,
            "snapshot_revision": None if snapshot is None else snapshot.revision,
            "compiled_rules": 0 if snapshot is None else snapshot.rule_count,
            "subject_profiles": len(self._subject_memo),
            "object_profiles": len(self._object_memo),
            "environment_profiles": len(self._env_memo),
        }

    # -- stage 1 -------------------------------------------------------
    def resolve_subject(self, ctx: DecisionContext) -> None:
        snapshot = self.snapshot()
        request = ctx.request
        if not request.role_claims and request.subject is not None:
            if ctx.session is None:
                profile = self._subject_memo.get(request.subject)
                if profile is None:
                    profile = snapshot.subject_profile(
                        restricted_assigned_roles(self.policy, request, None)
                    )
                    self._subject_memo[request.subject] = profile
            else:
                profile = self._session_profile(snapshot, request, ctx.session)
            _effective_ids, effective_names, mask, distances = profile
            uniform = request.identity_confidence
            ctx.subject_confidences = dict.fromkeys(effective_names, uniform)
            # (mask, distance table, per-id confidences or None, uniform)
            ctx.subject_state = (mask, distances, None, uniform)
        else:
            (
                mask,
                distances,
                confidence_by_id,
                confidences,
            ) = self._claims_profile(snapshot, request, ctx.session)
            ctx.subject_confidences = confidences
            ctx.subject_state = (mask, distances, confidence_by_id, None)

    def _session_profile(
        self, snapshot: CompiledPolicy, request: AccessRequest, session: Session
    ) -> tuple:
        """Expansion profile for a session-restricted subject.

        Memoized per session object, keyed on the session's activation
        epoch (and implicitly on the snapshot revision — the memo is
        cleared on reload), so repeated decisions inside one session
        state expand roles once.
        """
        if session.subject != request.subject:
            raise PolicyError(
                f"session belongs to {session.subject!r}, "
                f"request is for {request.subject!r}"
            )
        entry = self._session_memo.get(session)
        if entry is not None and entry[0] == session.epoch:
            return entry[1]
        assigned = restricted_assigned_roles(self.policy, request, session)
        profile = snapshot.subject_profile(assigned)
        self._session_memo[session] = (session.epoch, profile)
        return profile

    def _claims_profile(
        self,
        snapshot: CompiledPolicy,
        request: AccessRequest,
        session: Optional[Session],
    ) -> Tuple[int, Dict[int, int], Dict[int, float], Dict[str, float]]:
        """Subject profile when role claims are in play (§5.2).

        Claims carry per-role confidences, so the uniform-confidence
        fast path does not apply; expansion still runs over closure
        bitsets, propagating each direct role's confidence to its
        generalizations with max-merge.
        """
        direct = direct_subject_confidences(self.policy, request, session)
        interned = snapshot.subjects
        ids = interned.ids
        up_masks = interned.up_masks
        confidence_by_id: Dict[int, float] = {}
        subject_mask = 0
        direct_ids: List[int] = []
        for role_name, confidence in direct.items():
            role_id = ids[role_name]
            direct_ids.append(role_id)
            mask = up_masks[role_id]
            subject_mask |= mask
            while mask:
                bit = mask & -mask
                mask ^= bit
                effective_id = bit.bit_length() - 1
                if confidence > confidence_by_id.get(effective_id, -1.0):
                    confidence_by_id[effective_id] = confidence
        names = interned.names
        confidences = {
            names[role_id]: confidence
            for role_id, confidence in confidence_by_id.items()
        }
        return (
            subject_mask,
            interned.merged_distances(direct_ids),
            confidence_by_id,
            confidences,
        )

    # -- stage 3 -------------------------------------------------------
    def expand(self, ctx: DecisionContext) -> None:
        snapshot = self._snapshot  # fresh: resolve_subject ran first
        obj = ctx.request.obj
        object_profile = self._object_memo.get(obj)
        if object_profile is None:
            self.policy.object(obj)
            object_profile = snapshot.object_profile(
                r.name for r in self.policy.direct_object_roles(obj)
            )
            self._object_memo[obj] = object_profile
        object_mask, object_names, object_distances = object_profile
        ctx.object_roles = object_names
        ctx.object_state = (object_mask, object_distances)

        active_env = ctx.active_env
        env_profile = self._env_memo.get(active_env)
        if env_profile is None:
            env_profile = snapshot.environment_profile(active_env)
            if len(self._env_memo) >= 4096:  # defensive bound
                self._env_memo.clear()
            self._env_memo[active_env] = env_profile
        env_mask, env_names, env_distances = env_profile
        ctx.environment_roles = env_names
        ctx.environment_state = (env_mask, env_distances)

    # -- stage 4 -------------------------------------------------------
    def match(self, ctx: DecisionContext) -> None:
        snapshot = self._snapshot
        transaction = ctx.request.transaction
        if transaction in snapshot.transactions:
            bucket = snapshot.rules.get(transaction)
        else:
            # Registered after the snapshot was compiled (transactions
            # carry no revision) or simply unknown — the live lookup
            # raises exactly like the other strategies for the latter.
            self.policy.transaction(transaction)
            bucket = None

        subject_mask, subject_distances, confidence_by_id, uniform = (
            ctx.subject_state
        )
        object_mask, object_distances = ctx.object_state
        env_mask, env_distances = ctx.environment_state

        # Match loop: pure int tests.
        raw: List = []
        if bucket is not None:
            remaining = subject_mask
            while remaining:
                bit = remaining & -remaining
                remaining ^= bit
                rules = bucket.get(bit.bit_length() - 1)
                if rules:
                    for rule in rules:
                        # rule[3]=object_bit, rule[4]=environment_bit
                        if rule[3] & object_mask and rule[4] & env_mask:
                            raw.append(rule)
            if len(raw) > 1:
                raw.sort()  # CompiledRule sorts by its order field
        self._finish_matches(ctx, raw)

    def _finish_matches(self, ctx: DecisionContext, raw: List) -> None:
        """Confidence-gate ``raw`` compiled rules and build the Matches.

        Shared tail of the compiled and vectorized match stages: the
        strategies differ only in how they *collect* candidate rules.
        """
        subject_distances = ctx.subject_state[1]
        confidence_by_id = ctx.subject_state[2]
        uniform = ctx.subject_state[3]
        object_distances = ctx.object_state[1]
        env_distances = ctx.environment_state[1]
        threshold = self.engine.confidence_threshold
        matches: List[Match] = []
        for rule in raw:
            (
                _order,
                permission,
                subject_id,
                _obit,
                _ebit,
                is_deny,
                min_confidence,
                object_is_wildcard,
                environment_is_wildcard,
                object_id,
                environment_id,
            ) = rule
            if uniform is not None:
                confidence = uniform
            else:
                confidence = confidence_by_id[subject_id]
            if not is_deny:
                required = min_confidence or threshold
                if required != 0.0 and confidence < required:
                    continue
            specificity = (
                subject_distances.get(subject_id, WILDCARD_DISTANCE)
                + (
                    WILDCARD_DISTANCE
                    if object_is_wildcard
                    else object_distances.get(object_id, WILDCARD_DISTANCE)
                )
                + (
                    WILDCARD_DISTANCE
                    if environment_is_wildcard
                    else env_distances.get(environment_id, WILDCARD_DISTANCE)
                )
            )
            matches.append(
                Match(
                    permission,
                    permission.subject_role,
                    permission.object_role,
                    permission.environment_role,
                    specificity,
                    confidence,
                )
            )
        ctx.matches = matches


class VectorizedStrategy(CompiledStrategy):
    """Struct-of-arrays mediation over :class:`~repro.core.vectorized.VectorTable`.

    Subject/object/environment resolution is inherited from the
    compiled strategy (same memoized profiles, same snapshot
    lifecycle); what changes is the match stage and the batch lane:

    * :meth:`match` collects candidates from environment-pre-pruned,
      object-grouped rule columns instead of walking per-rule tuples —
      the active-environment membership is applied to each bucket once
      per environment profile and memoized for the snapshot's
      lifetime;
    * :meth:`decide_batch` (reached through
      :meth:`MediationEngine.decide_batch` in ``vectorized`` mode)
      additionally serves repeated uniform-confidence requests from
      revision-scoped decision templates, skipping the pipeline
      entirely on a template hit.

    Decision outputs are identical to the compiled path — property-
    tested in ``tests/core/test_vectorized.py``.
    """

    name = "vectorized"

    #: Defensive bounds: distinct environment profiles and decision
    #: templates seen per snapshot revision before the memo resets.
    MAX_ENV_PROFILES = 1024
    MAX_TEMPLATES = 65536

    def __init__(self, engine) -> None:
        super().__init__(engine)
        self._tables: Optional[VectorTable] = None
        #: env frozenset -> (membership bytes, {(transaction,
        #: subject_id): pruned object-grouped rules}).
        self._pruned: Dict[FrozenSet[str], tuple] = {}
        #: (subject, transaction, object, env, confidence) -> Decision,
        #: valid for one snapshot revision + one knob guard.
        self._templates: Dict[tuple, Decision] = {}
        #: (threshold, precedence, default_sign) the templates were
        #: rendered under — these knobs can move without a revision
        #: bump, so the batch lane re-checks them per batch.
        self._template_guard: Optional[tuple] = None

    def snapshot(self) -> CompiledPolicy:
        before = self._snapshot
        snap = super().snapshot()
        if snap is not before:
            self._tables = VectorTable(snap)
            self._pruned.clear()
            self._templates.clear()
        return snap

    def stats(self) -> Dict[str, object]:
        data = super().stats()
        data["decision_templates"] = len(self._templates)
        data["environment_prunes"] = len(self._pruned)
        if self._tables is not None:
            data.update(self._tables.stats())
        return data

    # -- stage 4 (columnar) --------------------------------------------
    def match(self, ctx: DecisionContext) -> None:
        snapshot = self._snapshot
        transaction = ctx.request.transaction
        if transaction in snapshot.transactions:
            has_rules = transaction in snapshot.rules
        else:
            # Same fallback as the compiled path: raise for unknown
            # transactions, no rules for post-snapshot registrations.
            self.policy.transaction(transaction)
            has_rules = False

        subject_mask = ctx.subject_state[0]
        object_mask = ctx.object_state[0]
        env_mask = ctx.environment_state[0]

        raw: List = []
        if has_rules:
            env_member, pruned = self._env_entry(ctx.active_env, env_mask)
            tables = self._tables
            remaining = subject_mask
            while remaining:
                bit = remaining & -remaining
                remaining ^= bit
                key = (transaction, bit.bit_length() - 1)
                groups = pruned.get(key)
                if groups is None:
                    columns = tables.bucket(*key)
                    groups = () if columns is None else columns.prune(env_member)
                    pruned[key] = groups
                for object_id, rules in groups:
                    if (object_mask >> object_id) & 1:
                        raw.extend(rules)
            if len(raw) > 1:
                raw.sort()
        self._finish_matches(ctx, raw)

    def _env_entry(
        self, active_env: Optional[FrozenSet[str]], env_mask: int
    ) -> tuple:
        """(membership bytes, pruned-bucket memo) for one env profile.

        This is the per-flush environment work: the membership vector
        is decoded from the closure bitset once, and every bucket
        visited under it is pruned once — both reused for the
        snapshot's lifetime.
        """
        entry = self._pruned.get(active_env)
        if entry is None:
            if len(self._pruned) >= self.MAX_ENV_PROFILES:
                self._pruned.clear()
            entry = (self._tables.environment_membership(env_mask), {})
            self._pruned[active_env] = entry
        return entry

    # -- batch lane ----------------------------------------------------
    def decide_batch(
        self,
        batch: List[AccessRequest],
        active_envs: List[FrozenSet[str]],
    ) -> List[Decision]:
        """Render a batch, serving repeats from decision templates.

        Uniform-confidence requests (no role claims) key a template on
        ``(subject, transaction, object, environment profile, identity
        confidence)``; within one snapshot revision and one knob guard
        that key determines the full decision, so repeats return the
        memoized :class:`Decision` without re-entering the pipeline —
        the same reuse the engine's LRU provides, but revision-scoped
        and free of capacity tuning.  Requests carrying role claims
        run the (vectorized) pipeline per request.
        """
        engine = self.engine
        policy = self.policy
        snap = self.snapshot()
        revision = snap.revision
        guard = (
            engine.confidence_threshold,
            policy.precedence,
            policy.default_sign,
        )
        if guard != self._template_guard:
            self._templates.clear()
            self._template_guard = guard
        templates = self._templates
        execute = engine.pipeline.execute
        hub = engine.observers
        emit = hub.emit_decision if hub else None
        decisions: List[Decision] = []
        rendered = 0
        grants = 0
        try:
            for request, active_env in zip(batch, active_envs):
                if policy.decision_revision != revision:
                    # A mid-batch mutation (observer side effects);
                    # refresh the snapshot and drop stale templates.
                    snap = self.snapshot()
                    revision = snap.revision
                    templates = self._templates
                if request.role_claims:
                    decision = execute(request, active_env=active_env)
                else:
                    key = (
                        request.subject,
                        request.transaction,
                        request.obj,
                        active_env,
                        request.identity_confidence,
                    )
                    decision = templates.get(key)
                    if decision is None:
                        decision = execute(request, active_env=active_env)
                        if len(templates) >= self.MAX_TEMPLATES:
                            templates.clear()
                        templates[key] = decision
                    elif emit is not None:
                        emit(decision, None)
                decisions.append(decision)
                rendered += 1
                if decision.granted:
                    grants += 1
        finally:
            engine.decisions += rendered
            engine.grants += grants
            engine.denies += rendered - grants
        return decisions


def build_strategy(mode: str, engine) -> DecisionStrategy:
    """Construct the strategy implementing ``mode`` for ``engine``."""
    if mode == "compiled":
        return CompiledStrategy(engine)
    if mode == "vectorized":
        return VectorizedStrategy(engine)
    if mode == "indexed":
        return IndexedStrategy(engine)
    if mode == "naive":
        return NaiveStrategy(engine)
    raise PolicyError(f"unknown mediation mode {mode!r}; expected one of {MODES}")


# ----------------------------------------------------------------------
# Stages
# ----------------------------------------------------------------------
class Stage:
    """One pipeline stage: a ``run`` mutation of the context plus an
    ``annotate`` summary used when the decision is traced."""

    name = "abstract"

    def __init__(self, engine, strategy: DecisionStrategy) -> None:
        self.engine = engine
        self.strategy = strategy

    def run(self, ctx: DecisionContext) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def annotate(self, ctx: DecisionContext) -> Dict[str, object]:
        return {}


class ResolveSubjectRoles(Stage):
    name = "resolve-subject-roles"

    def __init__(self, engine, strategy: DecisionStrategy) -> None:
        super().__init__(engine, strategy)
        # Bind straight to the strategy: saves a call frame per
        # decision on the untraced hot path, with identical semantics.
        self.run = strategy.resolve_subject

    def annotate(self, ctx: DecisionContext) -> Dict[str, object]:
        direct = _ctx_get(ctx, "direct_subject_confidences")
        if direct is not None:
            return {"direct": ",".join(sorted(direct)) or "-"}
        confidences = _ctx_get(ctx, "subject_confidences") or {}
        return {"effective": len(confidences)}


class SnapshotEnvironment(Stage):
    name = "snapshot-environment"

    def run(self, ctx: DecisionContext) -> None:
        if ctx.active_env is None:
            ctx.active_env = self.engine._resolve_active_env(
                ctx.request, ctx.env_override
            )

    def annotate(self, ctx: DecisionContext) -> Dict[str, object]:
        return {"active": ",".join(sorted(ctx.active_env or ())) or "-"}


class ExpandClosures(Stage):
    name = "expand-closures"

    def __init__(self, engine, strategy: DecisionStrategy) -> None:
        super().__init__(engine, strategy)
        self.run = strategy.expand

    def annotate(self, ctx: DecisionContext) -> Dict[str, object]:
        return {
            "subject": len(_ctx_get(ctx, "subject_confidences") or ()),
            "object": len(_ctx_get(ctx, "object_roles") or ()),
            "environment": len(_ctx_get(ctx, "environment_roles") or ()),
        }


class MatchPermissions(Stage):
    name = "match-permissions"

    def __init__(self, engine, strategy: DecisionStrategy) -> None:
        super().__init__(engine, strategy)
        self.run = strategy.match

    def annotate(self, ctx: DecisionContext) -> Dict[str, object]:
        matches = _ctx_get(ctx, "matches") or ()
        denies = sum(1 for m in matches if m.sign is Sign.DENY)
        return {"matches": len(matches), "denies": denies}


class ResolvePrecedence(Stage):
    name = "resolve-precedence"

    def run(self, ctx: DecisionContext) -> None:
        policy = self.engine.policy
        ctx.resolution = resolve(
            ctx.matches, policy.precedence, policy.default_sign
        )

    def annotate(self, ctx: DecisionContext) -> Dict[str, object]:
        return {
            "strategy": self.engine.policy.precedence.value,
            "sign": ctx.resolution.sign.value,
        }


class ApplyConstraints(Stage):
    """Run engine-registered decision constraints.

    A decision constraint is a callable ``(ctx) -> Optional[str]``; a
    non-empty return is a veto reason.  Vetoes only ever *narrow* a
    decision — they can turn a grant into a deny, never the reverse —
    so the stage preserves the fail-closed invariant.  No constraints
    are registered by default, making this stage a no-op.
    """

    name = "apply-constraints"

    def run(self, ctx: DecisionContext) -> None:
        constraints = self.engine.decision_constraints
        if not constraints:
            return
        vetoes = [
            reason
            for reason in (constraint(ctx) for constraint in constraints)
            if reason
        ]
        ctx.vetoes = vetoes
        if vetoes and ctx.resolution.sign is Sign.GRANT:
            ctx.resolution = Resolution(
                Sign.DENY,
                ctx.resolution.winner,
                "constraint veto: " + "; ".join(vetoes),
            )

    def annotate(self, ctx: DecisionContext) -> Dict[str, object]:
        return {
            "checks": len(self.engine.decision_constraints),
            "vetoes": len(_ctx_get(ctx, "vetoes") or ()),
        }


class EmitDecision(Stage):
    name = "emit-decision"

    def run(self, ctx: DecisionContext) -> None:
        resolution = ctx.resolution
        granted = resolution.sign is Sign.GRANT
        trace = ctx.trace
        if trace is not None:
            trace.granted = granted
            trace.rationale = resolution.rationale
            trace.subject_roles = dict(ctx.subject_confidences)
            trace.object_roles = sorted(ctx.object_roles)
            trace.environment_roles = sorted(ctx.environment_roles)
            trace.matched_rules = [
                m.permission.describe() for m in ctx.matches
            ]
        ctx.decision = decision = Decision(
            request=ctx.request,
            granted=granted,
            resolution=resolution,
            matches=tuple(ctx.matches),
            subject_role_confidence=dict(ctx.subject_confidences),
            object_roles=frozenset(ctx.object_roles),
            environment_roles=frozenset(ctx.environment_roles),
            trace=trace,
        )
        hub = self.engine.observers
        if hub:
            hub.emit_decision(decision, trace)

    def annotate(self, ctx: DecisionContext) -> Dict[str, object]:
        return {"granted": ctx.decision.granted}


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------
class DecisionPipeline:
    """Runs the seven stages over a context, untraced or traced.

    Both paths execute the *same* stage objects in the same order; the
    traced path additionally times each stage, records a
    :class:`~repro.obs.trace.StageSpan` with the stage's annotation,
    and feeds the per-stage latency histograms of the engine's metrics
    registry.
    """

    def __init__(self, engine, strategy: DecisionStrategy) -> None:
        self.engine = engine
        self.strategy = strategy
        self.stages: Tuple[Stage, ...] = (
            ResolveSubjectRoles(engine, strategy),
            SnapshotEnvironment(engine, strategy),
            ExpandClosures(engine, strategy),
            MatchPermissions(engine, strategy),
            ResolvePrecedence(engine, strategy),
            ApplyConstraints(engine, strategy),
            EmitDecision(engine, strategy),
        )
        #: Pre-extracted runners: the untraced per-decision loop costs
        #: seven calls and nothing else.
        self._runners: Tuple[Callable[[DecisionContext], None], ...] = tuple(
            stage.run for stage in self.stages
        )

    def execute(
        self,
        request: AccessRequest,
        session: Optional[Session] = None,
        active_env: Optional[FrozenSet[str]] = None,
        env_override: Optional[Set[str]] = None,
        trace: bool = False,
    ) -> Decision:
        """Mediate one request through every stage.

        ``active_env`` short-circuits :class:`SnapshotEnvironment`
        when the engine already resolved the environment (it needs it
        for the decision-cache key); otherwise the stage resolves
        ``env_override`` / the engine's environment source itself.
        """
        if not trace:
            ctx = DecisionContext(request, session, active_env, env_override)
            for run in self._runners:
                run(ctx)
            return ctx.decision
        return self._execute_traced(
            DecisionContext(
                request,
                session,
                active_env,
                env_override,
                trace=DecisionTrace(
                    subject=request.subject,
                    transaction=request.transaction,
                    obj=request.obj,
                    mode=self.strategy.name,
                ),
            )
        )

    def _execute_traced(self, ctx: DecisionContext) -> Decision:
        trace = ctx.trace
        metrics = self.engine.metrics
        perf_counter = time.perf_counter
        total = 0.0
        for stage in self.stages:
            started = perf_counter()
            stage.run(ctx)
            duration = perf_counter() - started
            total += duration
            trace.add_span(stage.name, duration, stage.annotate(ctx))
            metrics.observe(f"pipeline.{stage.name}", duration)
        metrics.observe("pipeline.total", total)
        return ctx.decision
