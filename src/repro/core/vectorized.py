"""Struct-of-arrays mediation kernel — the vectorized batch substrate.

The compiled path (:mod:`repro.core.compiled`) already reduces one
decision to a handful of integer mask tests, but ``decide_batch``
still walks per-rule :class:`~repro.core.compiled.CompiledRule`
tuples, unpacking eleven fields per candidate.  This module re-packs
each ``(transaction, subject-role)`` rule bucket into contiguous
parallel *columns* — object-role id, environment-role id, insertion
order — held in :mod:`array` arrays (numpy views of the same buffers
when the optional accelerator is available), so the batch path tests
whole columns instead of tuples:

* **Environment pre-pruning.**  The active-environment membership is
  computed once per batch flush (environment state changes far less
  often than requests arrive) and applied to each visited bucket's
  ``environment_id`` column *before* the per-request loop, leaving a
  pruned bucket in which only the object test remains.  Pruned buckets
  are memoized per environment profile for the snapshot's lifetime.
* **Object-grouped survivors.**  The surviving rows are grouped by
  ``object_id``, so a request pays one possession-mask test per
  distinct object role in the bucket rather than one per rule.
* **Decision templates.**  Within one snapshot revision, a
  uniform-confidence request's full decision is a pure function of
  ``(subject, transaction, object, environment)``; the batch path
  memoizes the rendered :class:`~repro.core.decision.Decision` under
  that key (plus the engine/policy knobs that can move without a
  revision bump) and serves repeats without re-matching — the same
  move the engine's LRU makes, but revision-scoped and always on for
  the vectorized batch lane.

Role closures are Python bigints (role counts exceed machine words),
which numpy cannot shift; the columns therefore carry role *ids* and
the kernel tests membership byte-vectors indexed by id —
``member[id_column]`` is one fancy-index gather on the numpy path and
a tight ``(mask >> id) & 1`` loop on the pure-Python path.  numpy is
strictly optional: the feature check below prefers it for buckets of
at least :data:`NUMPY_MIN_ROWS` rows and can be disabled outright
with the ``REPRO_NO_NUMPY`` environment variable (the no-numpy CI leg
runs the :mod:`array` path end to end).

Equivalence of the vectorized path with the compiled / indexed /
naive paths is property-tested in ``tests/core/test_vectorized.py``
and asserted point-by-point by benchmark E11 before timing.
"""

from __future__ import annotations

import os
from array import array
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.compiled import CompiledPolicy, CompiledRule

#: Minimum pruned-column length before the numpy gather beats the
#: pure-Python loop (fancy indexing has fixed per-call overhead that
#: only amortizes over enough rows).
NUMPY_MIN_ROWS = 32

_np = None
if not os.environ.get("REPRO_NO_NUMPY"):
    try:  # pragma: no cover - exercised via the CI numpy matrix leg
        import numpy as _np  # type: ignore[no-redef]
    except ImportError:  # pragma: no cover - numpy-less environments
        _np = None

#: True when the numpy accelerator is active for this process.
HAVE_NUMPY = _np is not None


def numpy_enabled() -> bool:
    """Whether column tests may use the numpy gather path."""
    return HAVE_NUMPY


def mask_membership(mask: int, size: int) -> bytearray:
    """Decode a closure bitset into a byte-per-role membership vector.

    ``member[role_id]`` is 1 when ``role_id`` is set in ``mask`` —
    the indexable form of the bigint that column-wise tests (and the
    numpy gather) need, built in O(popcount).
    """
    member = bytearray(size)
    while mask:
        low = mask & -mask
        member[low.bit_length() - 1] = 1
        mask ^= low
    return member


class RuleColumns:
    """One ``(transaction, subject-role)`` bucket, struct-of-arrays.

    Parallel columns over the bucket's rules, in policy insertion
    order: ``environment_ids[i]`` / ``object_ids[i]`` / ``orders[i]``
    describe ``rules[i]``.  Sign, confidence, and wildcard flags stay
    on the :class:`~repro.core.compiled.CompiledRule` rows — they are
    only read for the (few) rules that survive both mask tests.
    """

    __slots__ = ("rules", "environment_ids", "object_ids", "orders", "env_np")

    def __init__(self, rules: List["CompiledRule"]) -> None:
        self.rules: Tuple["CompiledRule", ...] = tuple(rules)
        self.environment_ids = array("q", (r.environment_id for r in rules))
        self.object_ids = array("q", (r.object_id for r in rules))
        self.orders = array("q", (r.order for r in rules))
        #: numpy view over the environment column (shares the buffer);
        #: built once, used when the bucket is big enough to gather.
        self.env_np = (
            _np.frombuffer(self.environment_ids, dtype=_np.int64)
            if HAVE_NUMPY and len(rules) >= NUMPY_MIN_ROWS
            else None
        )

    def __len__(self) -> int:
        return len(self.rules)

    def prune(
        self, env_member: bytearray
    ) -> Tuple[Tuple[int, Tuple["CompiledRule", ...]], ...]:
        """Environment-filter this bucket, grouped by object role.

        Returns ``((object_id, surviving rules), ...)`` with rule
        order preserved inside each group — the per-request loop then
        pays one object-mask test per *group*, not per rule.
        """
        rules = self.rules
        env_np = self.env_np
        if env_np is not None:
            member = _np.frombuffer(env_member, dtype=_np.uint8)
            surviving = _np.flatnonzero(member[env_np])
            rows = surviving.tolist()
        else:
            environment_ids = self.environment_ids
            rows = [
                i
                for i in range(len(rules))
                if env_member[environment_ids[i]]
            ]
        groups: Dict[int, List["CompiledRule"]] = {}
        for i in rows:
            rule = rules[i]
            groups.setdefault(rule.object_id, []).append(rule)
        return tuple(
            (object_id, tuple(bucket_rules))
            for object_id, bucket_rules in groups.items()
        )


class VectorTable:
    """Columnar view of one :class:`~repro.core.compiled.CompiledPolicy`.

    Buckets mirror the snapshot's ``(transaction, subject-role id)``
    layout; each is a :class:`RuleColumns`.  Built lazily per bucket —
    a transaction never requested never pays the packing cost — and
    discarded with the snapshot on every revision bump.
    """

    __slots__ = ("snapshot", "_buckets", "environment_size", "object_size")

    def __init__(self, snapshot: "CompiledPolicy") -> None:
        self.snapshot = snapshot
        self._buckets: Dict[Tuple[str, int], Optional[RuleColumns]] = {}
        self.environment_size = len(snapshot.environments.names)
        self.object_size = len(snapshot.objects.names)

    def bucket(self, transaction: str, subject_id: int) -> Optional[RuleColumns]:
        key = (transaction, subject_id)
        found = self._buckets.get(key, _MISSING)
        if found is not _MISSING:
            return found  # type: ignore[return-value]
        rules = self.snapshot.rules.get(transaction, _EMPTY).get(subject_id)
        columns = RuleColumns(rules) if rules else None
        self._buckets[key] = columns
        return columns

    def environment_membership(self, env_mask: int) -> bytearray:
        return mask_membership(env_mask, self.environment_size)

    def stats(self) -> Dict[str, int]:
        packed = [c for c in self._buckets.values() if c is not None]
        return {
            "vector_buckets": len(packed),
            "vector_rows": sum(len(c) for c in packed),
        }


_MISSING = object()
_EMPTY: Dict[int, List["CompiledRule"]] = {}
