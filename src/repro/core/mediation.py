"""Access mediation — the GRBAC decision procedure (§4.2.4).

The paper's rule: for subject *s* to perform transaction *t* on object
*o*, *s* must possess some subject role ``rs`` such that

1. there exists some object role ``ro`` possessed by *o*;
2. there exists some environment role ``re`` that is currently active;
3. there exists some permission that allows ``rs`` to perform *t* on
   ``ro`` when ``re`` is active.

:class:`MediationEngine` implements this rule over a
:class:`~repro.core.policy.GrbacPolicy`, with the practical extensions
the paper discusses around it:

* **hierarchy expansion** — possession and activation close over the
  role hierarchies (§4.1.2 "Role Hierarchies");
* **negative rights** — matching DENY rules are fed, together with the
  grants, to the configured precedence strategy (§3, §4.1.2 "Role
  Precedence");
* **sessions** — when a request carries a session, only the session's
  *active* roles can produce matches (§4.1.2 "Role Activation");
* **partial authentication** (§5.2) — requests may carry role-level
  confidence claims instead of (or alongside) an identity; GRANT rules
  only match when the claim confidence clears both the rule's own
  ``min_confidence`` and the engine-wide ``confidence_threshold``.
  DENY rules match at any confidence: weak evidence must never weaken
  a prohibition.

Three decision paths are provided: the default *compiled* path (served
from an interned-ID bitset snapshot, see :mod:`repro.core.compiled`),
the *indexed* path (tuple-keyed permission index over string role
sets), and a *naive* path that is a literal transcription of the
quantifier rule.  They are verified equivalent by property-based tests
and ablated against each other in benchmark E11.
"""

from __future__ import annotations

import itertools
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.activation import Session
from repro.core.compiled import CompiledPolicy
from repro.core.permissions import Permission, Sign
from repro.core.policy import GrbacPolicy
from repro.core.precedence import Match, PrecedenceStrategy, Resolution, resolve
from repro.core.roles import ANY_ENVIRONMENT, ANY_OBJECT, Role
from repro.exceptions import PolicyError

#: Hierarchy distance assigned to a match through one of the wildcard
#: roles (``any-object`` / ``any-environment``) when computing rule
#: specificity — wildcards are by definition the least specific match.
WILDCARD_DISTANCE = 1_000


@dataclass(frozen=True)
class AccessRequest:
    """One access attempt: who, what transaction, which object.

    ``subject`` may be ``None`` for purely sensor-driven requests in
    which the requester was never identified but was authenticated
    directly into roles via ``role_claims`` (the §5.2 mechanism).

    ``role_claims`` maps subject-role names to authentication
    confidence in ``[0, 1]`` — "the Smart Floor can authenticate her
    into the Child role with 98% accuracy" becomes
    ``{"child": 0.98}``.
    """

    transaction: str
    obj: str
    subject: Optional[str] = None
    role_claims: Mapping[str, float] = field(default_factory=dict)
    #: Confidence of the identity claim itself; the subject's assigned
    #: roles inherit this confidence (identifying Alice at 75% means
    #: every role derived from "this is Alice" carries 75%).
    identity_confidence: float = 1.0

    def __post_init__(self) -> None:
        if self.subject is None and not self.role_claims:
            raise PolicyError(
                "an access request needs a subject, role claims, or both"
            )
        if not 0.0 <= self.identity_confidence <= 1.0:
            raise PolicyError("identity_confidence must be in [0, 1]")
        claims = dict(self.role_claims)
        for role_name, confidence in claims.items():
            if not 0.0 <= confidence <= 1.0:
                raise PolicyError(
                    f"confidence for role {role_name!r} must be in [0, 1], "
                    f"got {confidence}"
                )
        object.__setattr__(self, "role_claims", claims)


@dataclass(frozen=True)
class Decision:
    """The outcome of mediating one request."""

    request: AccessRequest
    granted: bool
    resolution: Resolution
    matches: Tuple[Match, ...]
    #: Effective (expanded) subject-role confidences used for matching.
    subject_role_confidence: Mapping[str, float]
    object_roles: FrozenSet[str]
    environment_roles: FrozenSet[str]

    @property
    def sign(self) -> Sign:
        return self.resolution.sign

    @property
    def rationale(self) -> str:
        """Why the decision came out the way it did."""
        return self.resolution.rationale

    def explain(self) -> str:
        """Multi-line human-readable explanation for audit output."""
        lines = [
            f"request: {self.request.subject or '<unidentified>'} -> "
            f"{self.request.transaction} on {self.request.obj}",
            f"decision: {'GRANT' if self.granted else 'DENY'}",
            f"rationale: {self.rationale}",
            "subject roles: "
            + ", ".join(
                f"{name}@{conf:.2f}"
                for name, conf in sorted(self.subject_role_confidence.items())
            ),
            "object roles: " + ", ".join(sorted(self.object_roles)),
            "environment roles: " + ", ".join(sorted(self.environment_roles)),
        ]
        if self.matches:
            lines.append("matched rules:")
            lines.extend(f"  - {m.permission.describe()}" for m in self.matches)
        return "\n".join(lines)


@dataclass(frozen=True)
class RuleDiagnosis:
    """Why one candidate rule did / did not apply to a request."""

    permission: Permission
    subject_role_ok: bool
    object_role_ok: bool
    environment_role_ok: bool
    confidence_ok: bool

    @property
    def matched(self) -> bool:
        """All four gates held — this rule participated in resolution."""
        return (
            self.subject_role_ok
            and self.object_role_ok
            and self.environment_role_ok
            and self.confidence_ok
        )

    @property
    def conditions_met(self) -> int:
        """How many of the four gates held (for nearest-miss sorting)."""
        return sum(
            (
                self.subject_role_ok,
                self.object_role_ok,
                self.environment_role_ok,
                self.confidence_ok,
            )
        )

    def describe(self) -> str:
        if self.matched:
            return f"MATCHED  {self.permission.describe()}"
        missing = []
        if not self.subject_role_ok:
            missing.append(
                f"requester lacks role {self.permission.subject_role.name!r}"
            )
        if not self.object_role_ok:
            missing.append(
                f"object lacks role {self.permission.object_role.name!r}"
            )
        if not self.environment_role_ok:
            missing.append(
                f"environment role {self.permission.environment_role.name!r} "
                "not active"
            )
        if not self.confidence_ok:
            missing.append("authentication confidence too low")
        return f"missed   {self.permission.describe()} — " + "; ".join(missing)


class EnvironmentSource:
    """Protocol-ish base: supplies the currently active environment roles.

    The env substrate (:mod:`repro.env.activation`) provides the real
    implementation; :class:`StaticEnvironment` below serves tests and
    pure-model usage.

    A source may additionally implement
    :meth:`active_environment_roles_for` to contribute
    *requester-relative* roles — state that depends on who is asking,
    like §4.2.2's "children may only use the videophone while they are
    in the kitchen" (the kitchen-ness is a property of the requester's
    location, not of the house).  The engine prefers the request-aware
    hook when present.
    """

    def active_environment_roles(self) -> Set[str]:  # pragma: no cover - interface
        raise NotImplementedError

    def active_environment_roles_for(self, request: "AccessRequest") -> Set[str]:
        """Request-aware variant; defaults to the global set."""
        return self.active_environment_roles()


class StaticEnvironment(EnvironmentSource):
    """A fixed active environment-role set, settable by hand."""

    def __init__(self, active: Optional[Set[str]] = None) -> None:
        self._active: Set[str] = set(active or ())

    def activate(self, *role_names: str) -> None:
        self._active.update(role_names)

    def deactivate(self, *role_names: str) -> None:
        self._active.difference_update(role_names)

    def set_active(self, role_names: Set[str]) -> None:
        self._active = set(role_names)

    def active_environment_roles(self) -> Set[str]:
        return set(self._active)


#: The decision paths an engine can run (see module docstring).
MODES = ("compiled", "indexed", "naive")


class MediationEngine:
    """Evaluates access requests against a policy (§4.2.4).

    :param policy: the policy to mediate.
    :param environment: source of active environment roles; when
        ``None`` only the always-active ``any-environment`` role is
        active.
    :param confidence_threshold: policy-wide minimum authentication
        confidence for GRANT matches (the "90% accuracy before the
        system will grant rights" of §5.2).
    :param use_index: legacy path selector kept for callers predating
        the compiled engine: ``True`` forces the indexed path,
        ``False`` the naive quantifier transcription.  Leave unset to
        get the default compiled path (or pass ``mode``).
    :param mode: decision path — ``"compiled"`` (default), ``"indexed"``,
        or ``"naive"``.  All three are decision-equivalent
        (property-tested); they differ only in speed.
    """

    def __init__(
        self,
        policy: GrbacPolicy,
        environment: Optional[EnvironmentSource] = None,
        confidence_threshold: float = 0.0,
        use_index: Optional[bool] = None,
        cache_size: int = 0,
        mode: Optional[str] = None,
    ) -> None:
        if not 0.0 <= confidence_threshold <= 1.0:
            raise PolicyError("confidence_threshold must be in [0, 1]")
        if cache_size < 0:
            raise PolicyError("cache_size must be >= 0")
        if mode is None:
            if use_index is None:
                mode = "compiled"
            else:
                mode = "indexed" if use_index else "naive"
        if mode not in MODES:
            raise PolicyError(
                f"unknown mediation mode {mode!r}; expected one of {MODES}"
            )
        self.policy = policy
        self.environment = environment
        self.confidence_threshold = confidence_threshold
        self.mode = mode
        #: Back-compat view of :attr:`mode` (the pre-compiled API).
        self.use_index = mode == "indexed"
        #: LRU decision cache capacity (0 disables caching).  Entries
        #: key on the full request *and* the active environment set
        #: *and* the policy's decision revision, so cached decisions
        #: can never go stale (verified property-based).
        self.cache_size = cache_size
        self._cache: "OrderedDict[tuple, Decision]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        #: Total decisions rendered (all paths, cache hits included).
        self.decisions = 0
        #: (transaction, subject_role, object_role) -> permissions
        self._index: Dict[Tuple[str, str, str], List[Permission]] = {}
        self._permission_order: Dict[tuple, int] = {}
        self._indexed_revision = -1  # force initial build
        # --- compiled-path state ------------------------------------
        #: Snapshot this engine currently serves (compiled mode).
        self._snapshot: Optional[CompiledPolicy] = None
        #: Snapshot (re)loads observed by this engine, and the time
        #: spent waiting on them (compilation is shared per policy, so
        #: a load can be a cheap cache hit on the policy side).
        self.compile_count = 0
        self.compile_time_s = 0.0
        #: subject name -> (effective ids, names, mask, distance table);
        #: valid for one snapshot revision (cleared on reload).
        self._subject_memo: Dict[str, tuple] = {}
        #: Session -> (epoch, profile); weak so ended sessions drop out.
        self._session_memo: "weakref.WeakKeyDictionary[Session, tuple]" = (
            weakref.WeakKeyDictionary()
        )
        #: object name -> (mask, expanded names, distance table).
        self._object_memo: Dict[str, tuple] = {}
        #: frozenset of direct env roles -> (mask, names, distances).
        self._env_memo: Dict[FrozenSet[str], tuple] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def decide(
        self,
        request: AccessRequest,
        session: Optional[Session] = None,
        environment_roles: Optional[Set[str]] = None,
    ) -> Decision:
        """Mediate ``request`` and return a full :class:`Decision`.

        :param session: when given, the subject's identity-derived
            roles are restricted to the session's active role set
            before hierarchy expansion (§4.1.2 "Role Activation").
        :param environment_roles: explicit directly-active environment
            role names, overriding the engine's environment source —
            useful for what-if queries and policy analysis.
        """
        active_env = self._resolve_active_env(request, environment_roles)
        return self._decide_one(request, session, active_env)

    def decide_batch(
        self,
        requests: Iterable[AccessRequest],
        session: Optional[Session] = None,
        environment_roles: Union[
            None, Set[str], FrozenSet[str], Sequence[Optional[Set[str]]]
        ] = None,
    ) -> List[Decision]:
        """Mediate many requests, amortizing per-request setup.

        The batch path shares one snapshot lookup per request stream
        and reuses the engine's expansion memos (subject profiles,
        object profiles, environment closures) across the whole batch —
        with Zipf-shaped traffic most requests hit a memoized profile
        and skip role expansion entirely.

        :param requests: the access requests, in order.
        :param session: optional session applied to *every* request
            (requests in one batch belong to one principal stream).
        :param environment_roles: either ``None`` (resolve each request
            against the engine's environment source), one role-name set
            shared by the whole batch, or a per-request sequence of
            sets (``None`` entries fall back to the environment
            source).  A per-request sequence must match ``requests`` in
            length.
        :returns: one :class:`Decision` per request, in request order.
        """
        batch = list(requests)
        decide_one = self._decide_one
        if environment_roles is None:
            resolve_env = self._resolve_active_env
            return [decide_one(r, session, resolve_env(r, None)) for r in batch]
        if isinstance(environment_roles, (set, frozenset)):
            shared = frozenset(environment_roles)
            return [decide_one(r, session, shared) for r in batch]
        overrides = list(environment_roles)
        if len(overrides) != len(batch):
            raise PolicyError(
                f"environment_roles sequence has {len(overrides)} entries "
                f"for {len(batch)} requests"
            )
        resolve_env = self._resolve_active_env
        return [
            decide_one(r, session, resolve_env(r, override))
            for r, override in zip(batch, overrides)
        ]

    def check(
        self,
        subject: str,
        transaction: str,
        obj: str,
        session: Optional[Session] = None,
        environment_roles: Optional[Set[str]] = None,
    ) -> bool:
        """Boolean convenience wrapper around :meth:`decide`.

        ``environment_roles`` passes straight through to
        :meth:`decide`, so what-if checks ("could Bobby watch TV on a
        weekday evening?") do not need a hand-built
        :class:`AccessRequest`.
        """
        request = AccessRequest(transaction=transaction, obj=obj, subject=subject)
        return self.decide(
            request, session=session, environment_roles=environment_roles
        ).granted

    def stats(self) -> Dict[str, object]:
        """Engine-level cache and compile statistics.

        Complements :meth:`GrbacPolicy.stats` (policy sizes) with the
        runtime counters operators watch: decision volume, decision-
        cache effectiveness, and compiled-snapshot churn.
        """
        snapshot = self._snapshot
        return {
            "mode": self.mode,
            "decisions": self.decisions,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_entries": len(self._cache),
            "compile_count": self.compile_count,
            "compile_time_s": self.compile_time_s,
            "snapshot_revision": None if snapshot is None else snapshot.revision,
            "compiled_rules": 0 if snapshot is None else snapshot.rule_count,
            "subject_profiles": len(self._subject_memo),
            "object_profiles": len(self._object_memo),
            "environment_profiles": len(self._env_memo),
        }

    # ------------------------------------------------------------------
    # Decision internals
    # ------------------------------------------------------------------
    def _decide_one(
        self,
        request: AccessRequest,
        session: Optional[Session],
        active_env: FrozenSet[str],
    ) -> Decision:
        """Render one decision for an already-resolved environment."""
        self.decisions += 1
        cache_key = None
        if self.cache_size > 0 and session is None:
            cache_key = (
                request.subject,
                request.transaction,
                request.obj,
                request.identity_confidence,
                frozenset(request.role_claims.items()),
                active_env,
                self.policy.decision_revision,
                self.confidence_threshold,
                self.policy.precedence,
                self.policy.default_sign,
            )
            cached = self._cache.get(cache_key)
            if cached is not None:
                self._cache.move_to_end(cache_key)
                self.cache_hits += 1
                return cached
            self.cache_misses += 1

        if self.mode == "compiled":
            matches, confidences, object_roles, env_roles = self._evaluate_compiled(
                request, session, active_env
            )
        else:
            confidences, direct_subject_roles = self._subject_role_confidences(
                request, session
            )
            object_roles, direct_object_roles = self._object_role_names(request.obj)
            env_roles, direct_env_roles = self._environment_role_names(active_env)
            self.policy.transaction(request.transaction)
            directs = (direct_subject_roles, direct_object_roles, direct_env_roles)

            if self.mode == "indexed":
                matches = self._matches_indexed(
                    request.transaction, confidences, object_roles, env_roles, directs
                )
            else:
                matches = self._matches_naive(
                    request.transaction, confidences, object_roles, env_roles, directs
                )
            matches = self._apply_confidence_gate(matches)
        resolution = resolve(matches, self.policy.precedence, self.policy.default_sign)
        decision = Decision(
            request=request,
            granted=resolution.sign is Sign.GRANT,
            resolution=resolution,
            matches=tuple(matches),
            subject_role_confidence=dict(confidences),
            object_roles=frozenset(object_roles),
            environment_roles=frozenset(env_roles),
        )
        if cache_key is not None:
            self._cache[cache_key] = decision
            if len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return decision

    def diagnose(
        self,
        request: AccessRequest,
        session: Optional[Session] = None,
        environment_roles: Optional[Set[str]] = None,
    ) -> List["RuleDiagnosis"]:
        """Explain, per candidate rule, why the request did or did not
        match it — the "why can't I watch TV?" answer a homeowner needs
        (§3's usability requirement).

        Every permission whose *transaction* matches the request is a
        candidate; for each, the diagnosis reports which of the three
        §4.2.4 conditions held (subject role possessed, object role
        possessed, environment role active) plus the confidence gate.
        Sorted with the nearest misses first.
        """
        active_env = self._resolve_active_env(request, environment_roles)
        confidences, _ = self._subject_role_confidences(request, session)
        object_roles, _ = self._object_role_names(request.obj)
        env_roles, _ = self._environment_role_names(active_env)
        self.policy.transaction(request.transaction)

        diagnoses: List[RuleDiagnosis] = []
        for permission in self.policy.permissions():
            if permission.transaction.name != request.transaction:
                continue
            subject_ok = permission.subject_role.name in confidences
            object_ok = permission.object_role.name in object_roles
            environment_ok = permission.environment_role.name in env_roles
            required = permission.min_confidence or self.confidence_threshold
            if permission.sign is Sign.DENY or required == 0.0:
                confidence_ok = True
            else:
                confidence_ok = (
                    subject_ok
                    and confidences[permission.subject_role.name] >= required
                )
            diagnoses.append(
                RuleDiagnosis(
                    permission=permission,
                    subject_role_ok=subject_ok,
                    object_role_ok=object_ok,
                    environment_role_ok=environment_ok,
                    confidence_ok=confidence_ok,
                )
            )
        diagnoses.sort(key=lambda d: -d.conditions_met)
        return diagnoses

    # ------------------------------------------------------------------
    # Compiled decision path
    # ------------------------------------------------------------------
    def _ensure_snapshot(self) -> CompiledPolicy:
        """The compiled snapshot for the current decision revision.

        Reloads (and drops every expansion memo) whenever the policy's
        ``decision_revision`` has moved past the held snapshot — the
        revision-based invalidation the property tests pin down.
        """
        snapshot = self._snapshot
        if snapshot is None or snapshot.revision != self.policy.decision_revision:
            started = time.perf_counter()
            snapshot = self.policy.compiled()
            self.compile_time_s += time.perf_counter() - started
            self.compile_count += 1
            self._snapshot = snapshot
            self._subject_memo.clear()
            self._session_memo = weakref.WeakKeyDictionary()
            self._object_memo.clear()
            self._env_memo.clear()
        return snapshot

    def _evaluate_compiled(
        self,
        request: AccessRequest,
        session: Optional[Session],
        active_env: FrozenSet[str],
    ) -> Tuple[List[Match], Dict[str, float], FrozenSet[str], FrozenSet[str]]:
        """Match + gate a request against the compiled snapshot.

        Returns ``(gated matches, effective subject-role confidences,
        expanded object-role names, expanded environment-role names)``
        — the same values the string-set paths compute, derived from
        bitset tests instead of set intersections and dict probes.
        """
        snapshot = self._ensure_snapshot()
        subject = request.subject

        # --- subject side: memoized profile or claims slow path ------
        uniform_confidence: Optional[float] = None
        confidence_by_id: Dict[int, float] = {}
        if not request.role_claims and subject is not None:
            if session is None:
                profile = self._subject_memo.get(subject)
                if profile is None:
                    self.policy.subject(subject)
                    profile = snapshot.subject_profile(
                        self.policy.authorized_subject_role_names(subject)
                    )
                    self._subject_memo[subject] = profile
            else:
                profile = self._session_profile(snapshot, request, session)
            effective_ids, effective_names, subject_mask, subject_distances = profile
            uniform_confidence = request.identity_confidence
            confidences = dict.fromkeys(effective_names, uniform_confidence)
        else:
            (
                effective_names,
                subject_mask,
                subject_distances,
                confidence_by_id,
                confidences,
            ) = self._claims_profile(snapshot, request, session)

        # --- object / environment side: memoized closures ------------
        obj = request.obj
        object_profile = self._object_memo.get(obj)
        if object_profile is None:
            self.policy.object(obj)
            object_profile = snapshot.object_profile(
                r.name for r in self.policy.direct_object_roles(obj)
            )
            self._object_memo[obj] = object_profile
        object_mask, object_names, object_distances = object_profile

        env_profile = self._env_memo.get(active_env)
        if env_profile is None:
            env_profile = snapshot.environment_profile(active_env)
            if len(self._env_memo) >= 4096:  # defensive bound
                self._env_memo.clear()
            self._env_memo[active_env] = env_profile
        env_mask, env_names, env_distances = env_profile

        # --- transaction bucket --------------------------------------
        transaction = request.transaction
        if transaction in snapshot.transactions:
            bucket = snapshot.rules.get(transaction)
        else:
            # Registered after the snapshot was compiled (transactions
            # carry no revision) or simply unknown — the live lookup
            # raises exactly like the other paths for the latter.
            self.policy.transaction(transaction)
            bucket = None

        # --- match loop: pure int tests ------------------------------
        raw: List = []
        if bucket is not None:
            remaining = subject_mask
            while remaining:
                bit = remaining & -remaining
                remaining ^= bit
                rules = bucket.get(bit.bit_length() - 1)
                if rules:
                    for rule in rules:
                        # rule[3]=object_bit, rule[4]=environment_bit
                        if rule[3] & object_mask and rule[4] & env_mask:
                            raw.append(rule)
            if len(raw) > 1:
                raw.sort()  # CompiledRule sorts by its order field

        # --- confidence gate + Match construction --------------------
        threshold = self.confidence_threshold
        matches: List[Match] = []
        for rule in raw:
            (
                _order,
                permission,
                subject_id,
                _obit,
                _ebit,
                is_deny,
                min_confidence,
                object_is_wildcard,
                environment_is_wildcard,
                object_id,
                environment_id,
            ) = rule
            if uniform_confidence is not None:
                confidence = uniform_confidence
            else:
                confidence = confidence_by_id[subject_id]
            if not is_deny:
                required = min_confidence or threshold
                if required != 0.0 and confidence < required:
                    continue
            specificity = (
                subject_distances.get(subject_id, WILDCARD_DISTANCE)
                + (
                    WILDCARD_DISTANCE
                    if object_is_wildcard
                    else object_distances.get(object_id, WILDCARD_DISTANCE)
                )
                + (
                    WILDCARD_DISTANCE
                    if environment_is_wildcard
                    else env_distances.get(environment_id, WILDCARD_DISTANCE)
                )
            )
            matches.append(
                Match(
                    permission,
                    permission.subject_role,
                    permission.object_role,
                    permission.environment_role,
                    specificity,
                    confidence,
                )
            )
        return matches, confidences, object_names, env_names

    def _session_profile(
        self, snapshot: CompiledPolicy, request: AccessRequest, session: Session
    ) -> tuple:
        """Expansion profile for a session-restricted subject.

        Memoized per session object, keyed on the session's activation
        epoch (and implicitly on the snapshot revision — the memo is
        cleared on reload), so repeated decisions inside one session
        state expand roles once.
        """
        if session.subject != request.subject:
            raise PolicyError(
                f"session belongs to {session.subject!r}, "
                f"request is for {request.subject!r}"
            )
        entry = self._session_memo.get(session)
        if entry is not None and entry[0] == session.epoch:
            return entry[1]
        self.policy.subject(request.subject)
        assigned = self.policy.authorized_subject_role_names(request.subject)
        assigned &= session.active_roles
        profile = snapshot.subject_profile(assigned)
        self._session_memo[session] = (session.epoch, profile)
        return profile

    def _claims_profile(
        self,
        snapshot: CompiledPolicy,
        request: AccessRequest,
        session: Optional[Session],
    ) -> Tuple[Tuple[str, ...], int, Dict[int, int], Dict[int, float], Dict[str, float]]:
        """Subject profile when role claims are in play (§5.2).

        Claims carry per-role confidences, so the uniform-confidence
        fast path does not apply; expansion still runs over closure
        bitsets, propagating each direct role's confidence to its
        generalizations with max-merge.
        """
        interned = snapshot.subjects
        ids = interned.ids
        up_masks = interned.up_masks
        direct: Dict[str, float] = {}
        if request.subject is not None:
            self.policy.subject(request.subject)
            assigned = self.policy.authorized_subject_role_names(request.subject)
            if session is not None:
                if session.subject != request.subject:
                    raise PolicyError(
                        f"session belongs to {session.subject!r}, "
                        f"request is for {request.subject!r}"
                    )
                assigned &= session.active_roles
            for role_name in assigned:
                direct[role_name] = max(
                    direct.get(role_name, 0.0), request.identity_confidence
                )
        for role_name, confidence in request.role_claims.items():
            if role_name not in ids:
                # Same error as the string-set paths for unknown roles.
                self.policy.subject_roles.role(role_name)
            direct[role_name] = max(direct.get(role_name, 0.0), confidence)

        confidence_by_id: Dict[int, float] = {}
        subject_mask = 0
        direct_ids: List[int] = []
        for role_name, confidence in direct.items():
            role_id = ids[role_name]
            direct_ids.append(role_id)
            mask = up_masks[role_id]
            subject_mask |= mask
            while mask:
                bit = mask & -mask
                mask ^= bit
                effective_id = bit.bit_length() - 1
                if confidence > confidence_by_id.get(effective_id, -1.0):
                    confidence_by_id[effective_id] = confidence
        names = interned.names
        confidences = {
            names[role_id]: confidence
            for role_id, confidence in confidence_by_id.items()
        }
        return (
            tuple(confidences),
            subject_mask,
            interned.merged_distances(direct_ids),
            confidence_by_id,
            confidences,
        )

    # ------------------------------------------------------------------
    # Effective role computation
    # ------------------------------------------------------------------
    def _subject_role_confidences(
        self, request: AccessRequest, session: Optional[Session]
    ) -> Tuple[Dict[str, float], Set[str]]:
        """Expanded subject-role -> confidence map, plus direct roles.

        Identity-derived roles carry ``identity_confidence``; explicit
        role claims carry their own confidence.  Expansion propagates a
        role's confidence to all its generalizations (being *parent* at
        0.9 implies being *family-member* at 0.9).  Where several
        sources support the same role, the maximum confidence wins.

        The returned direct-role set (pre-expansion) feeds rule
        specificity: a rule naming a direct role is maximally specific.
        """
        hierarchy = self.policy.subject_roles
        direct: Dict[str, float] = {}
        if request.subject is not None:
            self.policy.subject(request.subject)
            assigned = self.policy.authorized_subject_role_names(request.subject)
            if session is not None:
                if session.subject != request.subject:
                    raise PolicyError(
                        f"session belongs to {session.subject!r}, "
                        f"request is for {request.subject!r}"
                    )
                assigned &= session.active_roles
            for role_name in assigned:
                direct[role_name] = max(
                    direct.get(role_name, 0.0), request.identity_confidence
                )
        for role_name, confidence in request.role_claims.items():
            hierarchy.role(role_name)  # claims must name real roles
            direct[role_name] = max(direct.get(role_name, 0.0), confidence)

        effective: Dict[str, float] = {}
        for role_name, confidence in direct.items():
            for role in hierarchy.expand([role_name]):
                if confidence > effective.get(role.name, -1.0):
                    effective[role.name] = confidence
        return effective, set(direct)

    def _object_role_names(self, obj: str) -> Tuple[Set[str], Set[str]]:
        """(expanded role names incl. any-object, direct role names)."""
        expanded = {r.name for r in self.policy.effective_object_roles(obj)}
        direct = {r.name for r in self.policy.direct_object_roles(obj)}
        return expanded, direct

    def _resolve_active_env(
        self, request: AccessRequest, override: Optional[Set[str]]
    ) -> FrozenSet[str]:
        """The directly-active environment role names for this request.

        Precedence: an explicit override beats the environment source;
        a request-aware source contributes requester-relative roles.
        """
        if override is not None:
            return frozenset(override)
        if self.environment is None:
            return frozenset()
        return frozenset(self.environment.active_environment_roles_for(request))

    def _environment_role_names(
        self, active: FrozenSet[str]
    ) -> Tuple[Set[str], Set[str]]:
        """(expanded active role names incl. any-environment, direct)."""
        hierarchy = self.policy.environment_roles
        known = {name for name in active if name in hierarchy}
        expanded = {r.name for r in hierarchy.expand(known)}
        expanded.add(ANY_ENVIRONMENT.name)
        return expanded, known

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def _matches_indexed(
        self,
        transaction: str,
        confidences: Dict[str, float],
        object_roles: Set[str],
        env_roles: Set[str],
        directs: Tuple[Set[str], Set[str], Set[str]],
    ) -> List[Match]:
        self._refresh_index()
        matches: List[Match] = []
        for subject_role, object_role in itertools.product(
            confidences, object_roles
        ):
            for permission in self._index.get(
                (transaction, subject_role, object_role), ()
            ):
                if permission.environment_role.name in env_roles:
                    matches.append(
                        self._build_match(permission, confidences, directs)
                    )
        # Keep policy insertion order for deterministic resolution.
        matches.sort(key=lambda m: self._permission_order[m.permission.key])
        return matches

    def _matches_naive(
        self,
        transaction: str,
        confidences: Dict[str, float],
        object_roles: Set[str],
        env_roles: Set[str],
        directs: Tuple[Set[str], Set[str], Set[str]],
    ) -> List[Match]:
        """Literal transcription of the §4.2.4 quantifier rule."""
        matches: List[Match] = []
        for permission in self.policy.permissions():
            if permission.transaction.name != transaction:
                continue
            if permission.subject_role.name not in confidences:
                continue
            if permission.object_role.name not in object_roles:
                continue
            if permission.environment_role.name not in env_roles:
                continue
            matches.append(self._build_match(permission, confidences, directs))
        return matches

    def _apply_confidence_gate(self, matches: List[Match]) -> List[Match]:
        """Drop GRANT matches whose confidence is insufficient.

        A rule that sets its own ``min_confidence`` governs itself —
        that is how §3's quality-tiered access works (stream at 90%,
        degraded snapshot at 60%, under a 90% house default).  Rules
        without one fall under the engine-wide ``confidence_threshold``
        (§5.2's "90% accuracy before the system will grant rights").
        Denies always survive: insufficient evidence must never
        *unlock* something a deny rule forbids.
        """
        kept: List[Match] = []
        for match in matches:
            if match.sign is Sign.DENY:
                kept.append(match)
                continue
            required = match.permission.min_confidence
            if required == 0.0:
                required = self.confidence_threshold
            if match.confidence >= required or required == 0.0:
                kept.append(match)
        return kept

    def _build_match(
        self,
        permission: Permission,
        confidences: Dict[str, float],
        directs: Tuple[Set[str], Set[str], Set[str]],
    ) -> Match:
        confidence = confidences[permission.subject_role.name]
        specificity = self._specificity(permission, directs)
        return Match(
            permission=permission,
            subject_role=permission.subject_role,
            object_role=permission.object_role,
            environment_role=permission.environment_role,
            specificity=specificity,
            confidence=confidence,
        )

    def _specificity(
        self, permission: Permission, directs: Tuple[Set[str], Set[str], Set[str]]
    ) -> int:
        """Total hierarchy distance of the rule from the request.

        Per dimension: the minimum specialization-path length from any
        role the request holds *directly* up to the role the rule was
        written against — 0 when the rule names a direct role, larger
        the more generally the rule was phrased.  The ``any-object`` /
        ``any-environment`` wildcards take a fixed large penalty: a
        wildcard is by definition the least specific way to match.
        """
        direct_subjects, direct_objects, direct_envs = directs
        subject_component = self._dimension_distance(
            self.policy.subject_roles, direct_subjects, permission.subject_role.name
        )
        if permission.object_role == ANY_OBJECT:
            object_component = WILDCARD_DISTANCE
        else:
            object_component = self._dimension_distance(
                self.policy.object_roles, direct_objects, permission.object_role.name
            )
        if permission.environment_role == ANY_ENVIRONMENT:
            environment_component = WILDCARD_DISTANCE
        else:
            environment_component = self._dimension_distance(
                self.policy.environment_roles,
                direct_envs,
                permission.environment_role.name,
            )
        return subject_component + object_component + environment_component

    @staticmethod
    def _dimension_distance(hierarchy, direct_roles: Set[str], target: str) -> int:
        distances = [
            d
            for d in (
                hierarchy.distance(name, target)
                for name in direct_roles
                if name in hierarchy
            )
            if d is not None
        ]
        return min(distances) if distances else WILDCARD_DISTANCE

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _refresh_index(self) -> None:
        if self.policy.permission_revision == self._indexed_revision:
            return
        permissions = self.policy.permissions()
        self._index = {}
        self._permission_order = {}
        for position, permission in enumerate(permissions):
            key = (
                permission.transaction.name,
                permission.subject_role.name,
                permission.object_role.name,
            )
            self._index.setdefault(key, []).append(permission)
            self._permission_order[permission.key] = position
        self._indexed_revision = self.policy.permission_revision
