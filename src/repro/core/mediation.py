"""Access mediation — the GRBAC decision procedure (§4.2.4).

The paper's rule: for subject *s* to perform transaction *t* on object
*o*, *s* must possess some subject role ``rs`` such that

1. there exists some object role ``ro`` possessed by *o*;
2. there exists some environment role ``re`` that is currently active;
3. there exists some permission that allows ``rs`` to perform *t* on
   ``ro`` when ``re`` is active.

:class:`MediationEngine` implements this rule over a
:class:`~repro.core.policy.GrbacPolicy`, with the practical extensions
the paper discusses around it:

* **hierarchy expansion** — possession and activation close over the
  role hierarchies (§4.1.2 "Role Hierarchies");
* **negative rights** — matching DENY rules are fed, together with the
  grants, to the configured precedence strategy (§3, §4.1.2 "Role
  Precedence");
* **sessions** — when a request carries a session, only the session's
  *active* roles can produce matches (§4.1.2 "Role Activation");
* **partial authentication** (§5.2) — requests may carry role-level
  confidence claims instead of (or alongside) an identity; GRANT rules
  only match when the claim confidence clears both the rule's own
  ``min_confidence`` and the engine-wide ``confidence_threshold``.
  DENY rules match at any confidence: weak evidence must never weaken
  a prohibition.

Two decision paths are provided: the default *indexed* path and a
*naive* path that is a literal transcription of the quantifier rule.
They are verified equivalent by property-based tests and ablated
against each other in benchmark E11.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.core.activation import Session
from repro.core.permissions import Permission, Sign
from repro.core.policy import GrbacPolicy
from repro.core.precedence import Match, PrecedenceStrategy, Resolution, resolve
from repro.core.roles import ANY_ENVIRONMENT, ANY_OBJECT, Role
from repro.exceptions import PolicyError

#: Hierarchy distance assigned to a match through one of the wildcard
#: roles (``any-object`` / ``any-environment``) when computing rule
#: specificity — wildcards are by definition the least specific match.
WILDCARD_DISTANCE = 1_000


@dataclass(frozen=True)
class AccessRequest:
    """One access attempt: who, what transaction, which object.

    ``subject`` may be ``None`` for purely sensor-driven requests in
    which the requester was never identified but was authenticated
    directly into roles via ``role_claims`` (the §5.2 mechanism).

    ``role_claims`` maps subject-role names to authentication
    confidence in ``[0, 1]`` — "the Smart Floor can authenticate her
    into the Child role with 98% accuracy" becomes
    ``{"child": 0.98}``.
    """

    transaction: str
    obj: str
    subject: Optional[str] = None
    role_claims: Mapping[str, float] = field(default_factory=dict)
    #: Confidence of the identity claim itself; the subject's assigned
    #: roles inherit this confidence (identifying Alice at 75% means
    #: every role derived from "this is Alice" carries 75%).
    identity_confidence: float = 1.0

    def __post_init__(self) -> None:
        if self.subject is None and not self.role_claims:
            raise PolicyError(
                "an access request needs a subject, role claims, or both"
            )
        if not 0.0 <= self.identity_confidence <= 1.0:
            raise PolicyError("identity_confidence must be in [0, 1]")
        claims = dict(self.role_claims)
        for role_name, confidence in claims.items():
            if not 0.0 <= confidence <= 1.0:
                raise PolicyError(
                    f"confidence for role {role_name!r} must be in [0, 1], "
                    f"got {confidence}"
                )
        object.__setattr__(self, "role_claims", claims)


@dataclass(frozen=True)
class Decision:
    """The outcome of mediating one request."""

    request: AccessRequest
    granted: bool
    resolution: Resolution
    matches: Tuple[Match, ...]
    #: Effective (expanded) subject-role confidences used for matching.
    subject_role_confidence: Mapping[str, float]
    object_roles: FrozenSet[str]
    environment_roles: FrozenSet[str]

    @property
    def sign(self) -> Sign:
        return self.resolution.sign

    @property
    def rationale(self) -> str:
        """Why the decision came out the way it did."""
        return self.resolution.rationale

    def explain(self) -> str:
        """Multi-line human-readable explanation for audit output."""
        lines = [
            f"request: {self.request.subject or '<unidentified>'} -> "
            f"{self.request.transaction} on {self.request.obj}",
            f"decision: {'GRANT' if self.granted else 'DENY'}",
            f"rationale: {self.rationale}",
            "subject roles: "
            + ", ".join(
                f"{name}@{conf:.2f}"
                for name, conf in sorted(self.subject_role_confidence.items())
            ),
            "object roles: " + ", ".join(sorted(self.object_roles)),
            "environment roles: " + ", ".join(sorted(self.environment_roles)),
        ]
        if self.matches:
            lines.append("matched rules:")
            lines.extend(f"  - {m.permission.describe()}" for m in self.matches)
        return "\n".join(lines)


@dataclass(frozen=True)
class RuleDiagnosis:
    """Why one candidate rule did / did not apply to a request."""

    permission: Permission
    subject_role_ok: bool
    object_role_ok: bool
    environment_role_ok: bool
    confidence_ok: bool

    @property
    def matched(self) -> bool:
        """All four gates held — this rule participated in resolution."""
        return (
            self.subject_role_ok
            and self.object_role_ok
            and self.environment_role_ok
            and self.confidence_ok
        )

    @property
    def conditions_met(self) -> int:
        """How many of the four gates held (for nearest-miss sorting)."""
        return sum(
            (
                self.subject_role_ok,
                self.object_role_ok,
                self.environment_role_ok,
                self.confidence_ok,
            )
        )

    def describe(self) -> str:
        if self.matched:
            return f"MATCHED  {self.permission.describe()}"
        missing = []
        if not self.subject_role_ok:
            missing.append(
                f"requester lacks role {self.permission.subject_role.name!r}"
            )
        if not self.object_role_ok:
            missing.append(
                f"object lacks role {self.permission.object_role.name!r}"
            )
        if not self.environment_role_ok:
            missing.append(
                f"environment role {self.permission.environment_role.name!r} "
                "not active"
            )
        if not self.confidence_ok:
            missing.append("authentication confidence too low")
        return f"missed   {self.permission.describe()} — " + "; ".join(missing)


class EnvironmentSource:
    """Protocol-ish base: supplies the currently active environment roles.

    The env substrate (:mod:`repro.env.activation`) provides the real
    implementation; :class:`StaticEnvironment` below serves tests and
    pure-model usage.

    A source may additionally implement
    :meth:`active_environment_roles_for` to contribute
    *requester-relative* roles — state that depends on who is asking,
    like §4.2.2's "children may only use the videophone while they are
    in the kitchen" (the kitchen-ness is a property of the requester's
    location, not of the house).  The engine prefers the request-aware
    hook when present.
    """

    def active_environment_roles(self) -> Set[str]:  # pragma: no cover - interface
        raise NotImplementedError

    def active_environment_roles_for(self, request: "AccessRequest") -> Set[str]:
        """Request-aware variant; defaults to the global set."""
        return self.active_environment_roles()


class StaticEnvironment(EnvironmentSource):
    """A fixed active environment-role set, settable by hand."""

    def __init__(self, active: Optional[Set[str]] = None) -> None:
        self._active: Set[str] = set(active or ())

    def activate(self, *role_names: str) -> None:
        self._active.update(role_names)

    def deactivate(self, *role_names: str) -> None:
        self._active.difference_update(role_names)

    def set_active(self, role_names: Set[str]) -> None:
        self._active = set(role_names)

    def active_environment_roles(self) -> Set[str]:
        return set(self._active)


class MediationEngine:
    """Evaluates access requests against a policy (§4.2.4).

    :param policy: the policy to mediate.
    :param environment: source of active environment roles; when
        ``None`` only the always-active ``any-environment`` role is
        active.
    :param confidence_threshold: policy-wide minimum authentication
        confidence for GRANT matches (the "90% accuracy before the
        system will grant rights" of §5.2).
    :param use_index: select the indexed decision path (default) or
        the naive quantifier transcription (for the E11 ablation).
    """

    def __init__(
        self,
        policy: GrbacPolicy,
        environment: Optional[EnvironmentSource] = None,
        confidence_threshold: float = 0.0,
        use_index: bool = True,
        cache_size: int = 0,
    ) -> None:
        if not 0.0 <= confidence_threshold <= 1.0:
            raise PolicyError("confidence_threshold must be in [0, 1]")
        if cache_size < 0:
            raise PolicyError("cache_size must be >= 0")
        self.policy = policy
        self.environment = environment
        self.confidence_threshold = confidence_threshold
        self.use_index = use_index
        #: LRU decision cache capacity (0 disables caching).  Entries
        #: key on the full request *and* the active environment set
        #: *and* the policy's decision revision, so cached decisions
        #: can never go stale (verified property-based).
        self.cache_size = cache_size
        self._cache: "OrderedDict[tuple, Decision]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        #: (transaction, subject_role, object_role) -> permissions
        self._index: Dict[Tuple[str, str, str], List[Permission]] = {}
        self._permission_order: Dict[tuple, int] = {}
        self._indexed_revision = -1  # force initial build

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def decide(
        self,
        request: AccessRequest,
        session: Optional[Session] = None,
        environment_roles: Optional[Set[str]] = None,
    ) -> Decision:
        """Mediate ``request`` and return a full :class:`Decision`.

        :param session: when given, the subject's identity-derived
            roles are restricted to the session's active role set
            before hierarchy expansion (§4.1.2 "Role Activation").
        :param environment_roles: explicit directly-active environment
            role names, overriding the engine's environment source —
            useful for what-if queries and policy analysis.
        """
        active_env = self._resolve_active_env(request, environment_roles)
        cache_key = None
        if self.cache_size > 0 and session is None:
            cache_key = (
                request.subject,
                request.transaction,
                request.obj,
                request.identity_confidence,
                frozenset(request.role_claims.items()),
                active_env,
                self.policy.decision_revision,
                self.confidence_threshold,
                self.policy.precedence,
                self.policy.default_sign,
            )
            cached = self._cache.get(cache_key)
            if cached is not None:
                self._cache.move_to_end(cache_key)
                self.cache_hits += 1
                return cached
            self.cache_misses += 1

        confidences, direct_subject_roles = self._subject_role_confidences(
            request, session
        )
        object_roles, direct_object_roles = self._object_role_names(request.obj)
        env_roles, direct_env_roles = self._environment_role_names(active_env)
        self.policy.transaction(request.transaction)
        directs = (direct_subject_roles, direct_object_roles, direct_env_roles)

        if self.use_index:
            matches = self._matches_indexed(
                request.transaction, confidences, object_roles, env_roles, directs
            )
        else:
            matches = self._matches_naive(
                request.transaction, confidences, object_roles, env_roles, directs
            )
        matches = self._apply_confidence_gate(matches)
        resolution = resolve(matches, self.policy.precedence, self.policy.default_sign)
        decision = Decision(
            request=request,
            granted=resolution.sign is Sign.GRANT,
            resolution=resolution,
            matches=tuple(matches),
            subject_role_confidence=dict(confidences),
            object_roles=frozenset(object_roles),
            environment_roles=frozenset(env_roles),
        )
        if cache_key is not None:
            self._cache[cache_key] = decision
            if len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return decision

    def check(
        self,
        subject: str,
        transaction: str,
        obj: str,
        session: Optional[Session] = None,
    ) -> bool:
        """Boolean convenience wrapper around :meth:`decide`."""
        request = AccessRequest(transaction=transaction, obj=obj, subject=subject)
        return self.decide(request, session=session).granted

    def diagnose(
        self,
        request: AccessRequest,
        session: Optional[Session] = None,
        environment_roles: Optional[Set[str]] = None,
    ) -> List["RuleDiagnosis"]:
        """Explain, per candidate rule, why the request did or did not
        match it — the "why can't I watch TV?" answer a homeowner needs
        (§3's usability requirement).

        Every permission whose *transaction* matches the request is a
        candidate; for each, the diagnosis reports which of the three
        §4.2.4 conditions held (subject role possessed, object role
        possessed, environment role active) plus the confidence gate.
        Sorted with the nearest misses first.
        """
        active_env = self._resolve_active_env(request, environment_roles)
        confidences, _ = self._subject_role_confidences(request, session)
        object_roles, _ = self._object_role_names(request.obj)
        env_roles, _ = self._environment_role_names(active_env)
        self.policy.transaction(request.transaction)

        diagnoses: List[RuleDiagnosis] = []
        for permission in self.policy.permissions():
            if permission.transaction.name != request.transaction:
                continue
            subject_ok = permission.subject_role.name in confidences
            object_ok = permission.object_role.name in object_roles
            environment_ok = permission.environment_role.name in env_roles
            required = permission.min_confidence or self.confidence_threshold
            if permission.sign is Sign.DENY or required == 0.0:
                confidence_ok = True
            else:
                confidence_ok = (
                    subject_ok
                    and confidences[permission.subject_role.name] >= required
                )
            diagnoses.append(
                RuleDiagnosis(
                    permission=permission,
                    subject_role_ok=subject_ok,
                    object_role_ok=object_ok,
                    environment_role_ok=environment_ok,
                    confidence_ok=confidence_ok,
                )
            )
        diagnoses.sort(key=lambda d: -d.conditions_met)
        return diagnoses

    # ------------------------------------------------------------------
    # Effective role computation
    # ------------------------------------------------------------------
    def _subject_role_confidences(
        self, request: AccessRequest, session: Optional[Session]
    ) -> Tuple[Dict[str, float], Set[str]]:
        """Expanded subject-role -> confidence map, plus direct roles.

        Identity-derived roles carry ``identity_confidence``; explicit
        role claims carry their own confidence.  Expansion propagates a
        role's confidence to all its generalizations (being *parent* at
        0.9 implies being *family-member* at 0.9).  Where several
        sources support the same role, the maximum confidence wins.

        The returned direct-role set (pre-expansion) feeds rule
        specificity: a rule naming a direct role is maximally specific.
        """
        hierarchy = self.policy.subject_roles
        direct: Dict[str, float] = {}
        if request.subject is not None:
            self.policy.subject(request.subject)
            assigned = self.policy.authorized_subject_role_names(request.subject)
            if session is not None:
                if session.subject != request.subject:
                    raise PolicyError(
                        f"session belongs to {session.subject!r}, "
                        f"request is for {request.subject!r}"
                    )
                assigned &= session.active_roles
            for role_name in assigned:
                direct[role_name] = max(
                    direct.get(role_name, 0.0), request.identity_confidence
                )
        for role_name, confidence in request.role_claims.items():
            hierarchy.role(role_name)  # claims must name real roles
            direct[role_name] = max(direct.get(role_name, 0.0), confidence)

        effective: Dict[str, float] = {}
        for role_name, confidence in direct.items():
            for role in hierarchy.expand([role_name]):
                if confidence > effective.get(role.name, -1.0):
                    effective[role.name] = confidence
        return effective, set(direct)

    def _object_role_names(self, obj: str) -> Tuple[Set[str], Set[str]]:
        """(expanded role names incl. any-object, direct role names)."""
        expanded = {r.name for r in self.policy.effective_object_roles(obj)}
        direct = {r.name for r in self.policy.direct_object_roles(obj)}
        return expanded, direct

    def _resolve_active_env(
        self, request: AccessRequest, override: Optional[Set[str]]
    ) -> FrozenSet[str]:
        """The directly-active environment role names for this request.

        Precedence: an explicit override beats the environment source;
        a request-aware source contributes requester-relative roles.
        """
        if override is not None:
            return frozenset(override)
        if self.environment is None:
            return frozenset()
        return frozenset(self.environment.active_environment_roles_for(request))

    def _environment_role_names(
        self, active: FrozenSet[str]
    ) -> Tuple[Set[str], Set[str]]:
        """(expanded active role names incl. any-environment, direct)."""
        hierarchy = self.policy.environment_roles
        known = {name for name in active if name in hierarchy}
        expanded = {r.name for r in hierarchy.expand(known)}
        expanded.add(ANY_ENVIRONMENT.name)
        return expanded, known

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def _matches_indexed(
        self,
        transaction: str,
        confidences: Dict[str, float],
        object_roles: Set[str],
        env_roles: Set[str],
        directs: Tuple[Set[str], Set[str], Set[str]],
    ) -> List[Match]:
        self._refresh_index()
        matches: List[Match] = []
        for subject_role, object_role in itertools.product(
            confidences, object_roles
        ):
            for permission in self._index.get(
                (transaction, subject_role, object_role), ()
            ):
                if permission.environment_role.name in env_roles:
                    matches.append(
                        self._build_match(permission, confidences, directs)
                    )
        # Keep policy insertion order for deterministic resolution.
        matches.sort(key=lambda m: self._permission_order[m.permission.key])
        return matches

    def _matches_naive(
        self,
        transaction: str,
        confidences: Dict[str, float],
        object_roles: Set[str],
        env_roles: Set[str],
        directs: Tuple[Set[str], Set[str], Set[str]],
    ) -> List[Match]:
        """Literal transcription of the §4.2.4 quantifier rule."""
        matches: List[Match] = []
        for permission in self.policy.permissions():
            if permission.transaction.name != transaction:
                continue
            if permission.subject_role.name not in confidences:
                continue
            if permission.object_role.name not in object_roles:
                continue
            if permission.environment_role.name not in env_roles:
                continue
            matches.append(self._build_match(permission, confidences, directs))
        return matches

    def _apply_confidence_gate(self, matches: List[Match]) -> List[Match]:
        """Drop GRANT matches whose confidence is insufficient.

        A rule that sets its own ``min_confidence`` governs itself —
        that is how §3's quality-tiered access works (stream at 90%,
        degraded snapshot at 60%, under a 90% house default).  Rules
        without one fall under the engine-wide ``confidence_threshold``
        (§5.2's "90% accuracy before the system will grant rights").
        Denies always survive: insufficient evidence must never
        *unlock* something a deny rule forbids.
        """
        kept: List[Match] = []
        for match in matches:
            if match.sign is Sign.DENY:
                kept.append(match)
                continue
            required = match.permission.min_confidence
            if required == 0.0:
                required = self.confidence_threshold
            if match.confidence >= required or required == 0.0:
                kept.append(match)
        return kept

    def _build_match(
        self,
        permission: Permission,
        confidences: Dict[str, float],
        directs: Tuple[Set[str], Set[str], Set[str]],
    ) -> Match:
        confidence = confidences[permission.subject_role.name]
        specificity = self._specificity(permission, directs)
        return Match(
            permission=permission,
            subject_role=permission.subject_role,
            object_role=permission.object_role,
            environment_role=permission.environment_role,
            specificity=specificity,
            confidence=confidence,
        )

    def _specificity(
        self, permission: Permission, directs: Tuple[Set[str], Set[str], Set[str]]
    ) -> int:
        """Total hierarchy distance of the rule from the request.

        Per dimension: the minimum specialization-path length from any
        role the request holds *directly* up to the role the rule was
        written against — 0 when the rule names a direct role, larger
        the more generally the rule was phrased.  The ``any-object`` /
        ``any-environment`` wildcards take a fixed large penalty: a
        wildcard is by definition the least specific way to match.
        """
        direct_subjects, direct_objects, direct_envs = directs
        subject_component = self._dimension_distance(
            self.policy.subject_roles, direct_subjects, permission.subject_role.name
        )
        if permission.object_role == ANY_OBJECT:
            object_component = WILDCARD_DISTANCE
        else:
            object_component = self._dimension_distance(
                self.policy.object_roles, direct_objects, permission.object_role.name
            )
        if permission.environment_role == ANY_ENVIRONMENT:
            environment_component = WILDCARD_DISTANCE
        else:
            environment_component = self._dimension_distance(
                self.policy.environment_roles,
                direct_envs,
                permission.environment_role.name,
            )
        return subject_component + object_component + environment_component

    @staticmethod
    def _dimension_distance(hierarchy, direct_roles: Set[str], target: str) -> int:
        distances = [
            d
            for d in (
                hierarchy.distance(name, target)
                for name in direct_roles
                if name in hierarchy
            )
            if d is not None
        ]
        return min(distances) if distances else WILDCARD_DISTANCE

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _refresh_index(self) -> None:
        if self.policy.permission_revision == self._indexed_revision:
            return
        permissions = self.policy.permissions()
        self._index = {}
        self._permission_order = {}
        for position, permission in enumerate(permissions):
            key = (
                permission.transaction.name,
                permission.subject_role.name,
                permission.object_role.name,
            )
            self._index.setdefault(key, []).append(permission)
            self._permission_order[permission.key] = position
        self._indexed_revision = self.policy.permission_revision
