"""Access mediation — the GRBAC decision procedure (§4.2.4).

The paper's rule: for subject *s* to perform transaction *t* on object
*o*, *s* must possess some subject role ``rs`` such that

1. there exists some object role ``ro`` possessed by *o*;
2. there exists some environment role ``re`` that is currently active;
3. there exists some permission that allows ``rs`` to perform *t* on
   ``ro`` when ``re`` is active.

:class:`MediationEngine` implements this rule over a
:class:`~repro.core.policy.GrbacPolicy`, with the practical extensions
the paper discusses around it:

* **hierarchy expansion** — possession and activation close over the
  role hierarchies (§4.1.2 "Role Hierarchies");
* **negative rights** — matching DENY rules are fed, together with the
  grants, to the configured precedence strategy (§3, §4.1.2 "Role
  Precedence");
* **sessions** — when a request carries a session, only the session's
  *active* roles can produce matches (§4.1.2 "Role Activation");
* **partial authentication** (§5.2) — requests may carry role-level
  confidence claims instead of (or alongside) an identity; GRANT rules
  only match when the claim confidence clears both the rule's own
  ``min_confidence`` and the engine-wide ``confidence_threshold``.
  DENY rules match at any confidence: weak evidence must never weaken
  a prohibition.

Every decision runs through the staged pipeline of
:mod:`repro.core.pipeline` — resolve subject roles, snapshot the
environment, expand hierarchy closures, match permissions, resolve
precedence, apply constraints, emit.  The *compiled* (default,
interned-ID bitsets — see :mod:`repro.core.compiled`), *vectorized*
(compiled plus the struct-of-arrays batch kernel of
:mod:`repro.core.vectorized`), *indexed* (tuple-keyed permission
index), and *naive* (literal quantifier transcription) paths are
strategy plug-ins for the expansion/match stages of that one
pipeline.  They are verified equivalent by property-based tests and
ablated against each other in benchmark E11.

The request/decision value types live in :mod:`repro.core.decision`
and are re-exported here for compatibility.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Union,
)

from repro.core.activation import Session
from repro.core.decision import (  # noqa: F401  (re-exported API)
    WILDCARD_DISTANCE,
    AccessRequest,
    Decision,
    EnvironmentSource,
    RuleDiagnosis,
    StaticEnvironment,
)
from repro.core.permissions import Sign
from repro.core.pipeline import (
    MODES,
    DecisionPipeline,
    build_strategy,
    direct_subject_confidences,
    environment_role_names,
    expand_subject_confidences,
    object_role_names,
)
from repro.core.policy import GrbacPolicy
from repro.exceptions import PolicyError
from repro.obs.metrics import MetricsRegistry
from repro.obs.observers import ObserverHub


class MediationEngine:
    """Evaluates access requests against a policy (§4.2.4).

    :param policy: the policy to mediate.
    :param environment: source of active environment roles; when
        ``None`` only the always-active ``any-environment`` role is
        active.
    :param confidence_threshold: policy-wide minimum authentication
        confidence for GRANT matches (the "90% accuracy before the
        system will grant rights" of §5.2).
    :param use_index: legacy path selector kept for callers predating
        the compiled engine: ``True`` forces the indexed strategy,
        ``False`` the naive quantifier transcription.  Leave unset to
        get the default compiled strategy (or pass ``mode``).
    :param mode: expansion/match strategy — ``"compiled"`` (default),
        ``"vectorized"`` (compiled plus the struct-of-arrays batch
        kernel of :mod:`repro.core.vectorized`), ``"indexed"``, or
        ``"naive"``.  All four are decision-equivalent
        (property-tested); they differ only in speed.
    :param metrics: metrics registry to publish into; a private one is
        created when not supplied, so ``engine.metrics`` always works.
    :param observers: observer hub decisions are published to; a
        private (empty) hub is created when not supplied.
    """

    def __init__(
        self,
        policy: GrbacPolicy,
        environment: Optional[EnvironmentSource] = None,
        confidence_threshold: float = 0.0,
        use_index: Optional[bool] = None,
        cache_size: int = 0,
        mode: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        observers: Optional[ObserverHub] = None,
    ) -> None:
        if not 0.0 <= confidence_threshold <= 1.0:
            raise PolicyError("confidence_threshold must be in [0, 1]")
        if cache_size < 0:
            raise PolicyError("cache_size must be >= 0")
        if mode is None:
            if use_index is None:
                mode = "compiled"
            else:
                mode = "indexed" if use_index else "naive"
        if mode not in MODES:
            raise PolicyError(
                f"unknown mediation mode {mode!r}; expected one of {MODES}"
            )
        self.policy = policy
        self.environment = environment
        self.confidence_threshold = confidence_threshold
        self.mode = mode
        #: Back-compat view of :attr:`mode` (the pre-compiled API).
        self.use_index = mode == "indexed"
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.observers = observers if observers is not None else ObserverHub()
        #: Decision constraints (pipeline stage 6): callables
        #: ``(ctx) -> Optional[str]`` whose non-empty return vetoes a
        #: grant.  Empty by default.  Engines with constraints skip the
        #: decision cache — a constraint may consult state outside the
        #: cache key.
        self.decision_constraints: List = []
        #: LRU decision cache capacity (0 disables caching).  Entries
        #: key on the full request *and* the active environment set
        #: *and* the policy's decision revision, so cached decisions
        #: can never go stale (verified property-based).
        self.cache_size = cache_size
        self._cache: "OrderedDict[tuple, Decision]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        #: Total decisions rendered (all strategies, cache hits
        #: included), split into grants/denies.  Plain attributes —
        #: not registry counters — on purpose: the decision path pays
        #: one integer add, and :meth:`stats` syncs them into the
        #: registry when anyone looks.
        self.decisions = 0
        self.grants = 0
        self.denies = 0
        self.strategy = build_strategy(mode, self)
        self.pipeline = DecisionPipeline(self, self.strategy)
        #: Strategy-owned batch fast lane (the vectorized struct-of-
        #: arrays kernel); ``None`` for strategies without one.
        self._batch_kernel = (
            self.strategy.decide_batch if mode == "vectorized" else None
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def decide(
        self,
        request: AccessRequest,
        session: Optional[Session] = None,
        environment_roles: Optional[Set[str]] = None,
        trace: bool = False,
    ) -> Decision:
        """Mediate ``request`` and return a full :class:`Decision`.

        :param session: when given, the subject's identity-derived
            roles are restricted to the session's active role set
            before hierarchy expansion (§4.1.2 "Role Activation").
        :param environment_roles: explicit directly-active environment
            role names, overriding the engine's environment source —
            useful for what-if queries and policy analysis.
        :param trace: record a timed per-stage pipeline trace on the
            returned decision (``decision.trace``) and feed the
            per-stage latency histograms.  Traced decisions bypass the
            decision cache — a cached decision has no live stages to
            time.
        """
        active_env = self._resolve_active_env(request, environment_roles)
        return self._decide_one(request, session, active_env, trace)

    def decide_batch(
        self,
        requests: Iterable[AccessRequest],
        session: Optional[Session] = None,
        environment_roles: Union[
            None, Set[str], FrozenSet[str], Sequence[Optional[Set[str]]]
        ] = None,
    ) -> List[Decision]:
        """Mediate many requests, amortizing per-request setup.

        The batch path shares one snapshot lookup per request stream
        and reuses the strategy's expansion memos (subject profiles,
        object profiles, environment closures) across the whole batch —
        with Zipf-shaped traffic most requests hit a memoized profile
        and skip role expansion entirely.

        :param requests: the access requests, in order.
        :param session: optional session applied to *every* request
            (requests in one batch belong to one principal stream).
        :param environment_roles: either ``None`` (resolve each request
            against the engine's environment source), one role-name set
            shared by the whole batch, or a per-request sequence of
            sets (``None`` entries fall back to the environment
            source).  A per-request sequence must match ``requests`` in
            length.
        :returns: one :class:`Decision` per request, in request order.
        """
        batch = list(requests)
        resolve_env = self._resolve_active_env
        if environment_roles is None:
            envs = [resolve_env(r, None) for r in batch]
        elif isinstance(environment_roles, (set, frozenset)):
            envs = [frozenset(environment_roles)] * len(batch)
        else:
            overrides = list(environment_roles)
            if len(overrides) != len(batch):
                raise PolicyError(
                    f"environment_roles sequence has {len(overrides)} entries "
                    f"for {len(batch)} requests"
                )
            envs = [
                resolve_env(r, override)
                for r, override in zip(batch, overrides)
            ]
        if (
            self._batch_kernel is not None
            and session is None
            and not self.decision_constraints
        ):
            # Vectorized mode: hand the whole batch to the struct-of-
            # arrays kernel (environment pre-pruning + decision
            # templates).  The kernel's templates supersede the LRU —
            # sessions and constraints fall back to the scalar loop
            # because both can carry state outside the template key.
            return self._batch_kernel(batch, envs)
        decide_one = self._decide_one
        return [
            decide_one(r, session, env) for r, env in zip(batch, envs)
        ]

    def check(
        self,
        subject: str,
        transaction: str,
        obj: str,
        session: Optional[Session] = None,
        environment_roles: Optional[Set[str]] = None,
    ) -> bool:
        """Boolean convenience wrapper around :meth:`decide`.

        ``environment_roles`` passes straight through to
        :meth:`decide`, so what-if checks ("could Bobby watch TV on a
        weekday evening?") do not need a hand-built
        :class:`AccessRequest`.
        """
        request = AccessRequest(transaction=transaction, obj=obj, subject=subject)
        return self.decide(
            request, session=session, environment_roles=environment_roles
        ).granted

    def stats(self) -> Dict[str, object]:
        """Engine-level cache and compile statistics.

        Complements :meth:`GrbacPolicy.stats` (policy sizes) with the
        runtime counters operators watch: decision volume, decision-
        cache effectiveness, and compiled-snapshot churn.  Calling it
        also syncs the engine tallies into the metrics registry, so a
        registry snapshot taken afterwards is consistent with the
        returned dict.
        """
        data: Dict[str, object] = {
            "mode": self.mode,
            "decisions": self.decisions,
            "grants": self.grants,
            "denies": self.denies,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_entries": len(self._cache),
            # Strategy-owned counters; overridden below when the
            # strategy tracks them (the compiled one does).
            "compile_count": 0,
            "compile_time_s": 0.0,
            "snapshot_revision": None,
            "compiled_rules": 0,
            "subject_profiles": 0,
            "object_profiles": 0,
            "environment_profiles": 0,
        }
        data.update(self.strategy.stats())
        metrics = self.metrics
        for key in (
            "decisions",
            "grants",
            "denies",
            "cache_hits",
            "cache_misses",
            "compile_count",
        ):
            metrics.counter(f"engine.{key}").set(int(data[key]))  # type: ignore[arg-type]
        return data

    # ------------------------------------------------------------------
    # Decision internals
    # ------------------------------------------------------------------
    def _decide_one(
        self,
        request: AccessRequest,
        session: Optional[Session],
        active_env: FrozenSet[str],
        trace: bool = False,
    ) -> Decision:
        """Render one decision for an already-resolved environment."""
        self.decisions += 1
        cache_key = None
        if (
            self.cache_size > 0
            and session is None
            and not trace
            and not self.decision_constraints
        ):
            cache_key = (
                request.subject,
                request.transaction,
                request.obj,
                request.identity_confidence,
                frozenset(request.role_claims.items()),
                active_env,
                self.policy.decision_revision,
                self.confidence_threshold,
                self.policy.precedence,
                self.policy.default_sign,
            )
            cached = self._cache.get(cache_key)
            if cached is not None:
                self._cache.move_to_end(cache_key)
                self.cache_hits += 1
                self._tally(cached)
                return cached
            self.cache_misses += 1

        decision = self.pipeline.execute(
            request, session=session, active_env=active_env, trace=trace
        )
        self._tally(decision)
        if cache_key is not None:
            self._cache[cache_key] = decision
            if len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return decision

    def _tally(self, decision: Decision) -> None:
        if decision.granted:
            self.grants += 1
        else:
            self.denies += 1

    def diagnose(
        self,
        request: AccessRequest,
        session: Optional[Session] = None,
        environment_roles: Optional[Set[str]] = None,
    ) -> List[RuleDiagnosis]:
        """Explain, per candidate rule, why the request did or did not
        match it — the "why can't I watch TV?" answer a homeowner needs
        (§3's usability requirement).

        Every permission whose *transaction* matches the request is a
        candidate; for each, the diagnosis reports which of the three
        §4.2.4 conditions held (subject role possessed, object role
        possessed, environment role active) plus the confidence gate.
        Sorted with the nearest misses first.
        """
        policy = self.policy
        active_env = self._resolve_active_env(request, environment_roles)
        confidences = expand_subject_confidences(
            policy, direct_subject_confidences(policy, request, session)
        )
        object_roles, _ = object_role_names(policy, request.obj)
        env_roles, _ = environment_role_names(policy, active_env)
        policy.transaction(request.transaction)

        diagnoses: List[RuleDiagnosis] = []
        for permission in policy.permissions():
            if permission.transaction.name != request.transaction:
                continue
            subject_ok = permission.subject_role.name in confidences
            object_ok = permission.object_role.name in object_roles
            environment_ok = permission.environment_role.name in env_roles
            required = permission.min_confidence or self.confidence_threshold
            if permission.sign is Sign.DENY or required == 0.0:
                confidence_ok = True
            else:
                confidence_ok = (
                    subject_ok
                    and confidences[permission.subject_role.name] >= required
                )
            diagnoses.append(
                RuleDiagnosis(
                    permission=permission,
                    subject_role_ok=subject_ok,
                    object_role_ok=object_ok,
                    environment_role_ok=environment_ok,
                    confidence_ok=confidence_ok,
                )
            )
        diagnoses.sort(key=lambda d: -d.conditions_met)
        return diagnoses

    # ------------------------------------------------------------------
    # Environment resolution
    # ------------------------------------------------------------------
    def _resolve_active_env(
        self, request: AccessRequest, override: Optional[Set[str]]
    ) -> FrozenSet[str]:
        """The directly-active environment role names for this request.

        Precedence: an explicit override beats the environment source;
        a request-aware source contributes requester-relative roles.
        """
        if override is not None:
            return frozenset(override)
        if self.environment is None:
            return frozenset()
        return frozenset(self.environment.active_environment_roles_for(request))
