"""Compiled policy snapshots — the fast mediation substrate.

The GRBAC mediation rule (§4.2.4) is an existential match over three
role sets.  The policy changes rarely (every mutation bumps
:attr:`~repro.core.policy.GrbacPolicy.decision_revision`) while
decisions happen constantly, so we compile the policy into an
immutable :class:`CompiledPolicy` once per revision and serve every
decision from it:

* role names are interned to dense integer IDs per role kind
  (:class:`~repro.core.hierarchy.InternedHierarchy`);
* hierarchy closures are precomputed as Python ``int`` bitsets — the
  upward (generalization) closure of each role is one integer, so
  "does the requester possess role *r*" is a single ``&`` test;
* permissions are laid out as flat tuples bucketed by
  ``(transaction, subject role id)``, each carrying the object-role
  and environment-role closure test as a one-bit mask, plus the
  resolved sign / confidence / wildcard flags the decision loop needs.

The mediation engine keys its snapshot on ``decision_revision``;
entities and transactions registered *without* touching roles,
assignments, or permissions (which do not move the revision) are
resolved against the live policy on the miss path, so the snapshot can
never serve stale decisions.  Equivalence of the compiled path with
the indexed and naive paths is property-tested
(``tests/core/test_compiled.py``) and asserted point-by-point by
benchmark E11 before anything is timed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, NamedTuple, Tuple

from repro.core.hierarchy import InternedHierarchy
from repro.core.permissions import Permission, Sign
from repro.core.roles import ANY_ENVIRONMENT, ANY_OBJECT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.policy import GrbacPolicy


class CompiledRule(NamedTuple):
    """One permission, flattened for the compiled decision loop.

    The loop tests ``object_bit & object_mask`` and
    ``environment_bit & environment_mask`` — everything else here is
    payload for building the :class:`~repro.core.precedence.Match`
    once a rule survives those tests.
    """

    #: Policy insertion position (resolution is order-deterministic).
    order: int
    permission: Permission
    subject_id: int
    #: ``1 << object_role_id`` — a match requires this bit in the
    #: request's expanded object-role mask.
    object_bit: int
    #: ``1 << environment_role_id`` — ditto for environment roles.
    environment_bit: int
    is_deny: bool
    min_confidence: float
    #: Wildcard flags feed specificity: wildcards take the fixed
    #: :data:`~repro.core.mediation.WILDCARD_DISTANCE` penalty.
    object_is_wildcard: bool
    environment_is_wildcard: bool
    object_id: int
    environment_id: int


class CompiledPolicy:
    """An immutable, ID-interned snapshot of one policy revision."""

    __slots__ = (
        "revision",
        "subjects",
        "objects",
        "environments",
        "any_object_bit",
        "any_environment_bit",
        "any_environment_id",
        "rules",
        "transactions",
        "rule_count",
    )

    def __init__(self, policy: "GrbacPolicy") -> None:
        #: The ``decision_revision`` this snapshot serves.
        self.revision: int = policy.decision_revision
        #: Interned views of the three role hierarchies.
        self.subjects: InternedHierarchy = policy.subject_roles.interned()
        self.objects: InternedHierarchy = policy.object_roles.interned()
        self.environments: InternedHierarchy = policy.environment_roles.interned()
        self.any_object_bit: int = 1 << self.objects.ids[ANY_OBJECT.name]
        self.any_environment_id: int = self.environments.ids[ANY_ENVIRONMENT.name]
        self.any_environment_bit: int = 1 << self.any_environment_id
        #: transaction name -> subject role id -> compiled rules, in
        #: policy insertion order within each bucket.
        self.rules: Dict[str, Dict[int, List[CompiledRule]]] = {}
        #: Transaction names known at compile time.  A request naming a
        #: transaction outside this set falls back to the live policy
        #: lookup (transactions can be registered without bumping the
        #: decision revision).
        self.transactions = frozenset(t.name for t in policy.transactions())
        self.rule_count: int = 0
        for order, permission in enumerate(policy.permissions()):
            object_id = self.objects.ids[permission.object_role.name]
            environment_id = self.environments.ids[permission.environment_role.name]
            rule = CompiledRule(
                order=order,
                permission=permission,
                subject_id=self.subjects.ids[permission.subject_role.name],
                object_bit=1 << object_id,
                environment_bit=1 << environment_id,
                is_deny=permission.sign is Sign.DENY,
                min_confidence=permission.min_confidence,
                object_is_wildcard=permission.object_role.name == ANY_OBJECT.name,
                environment_is_wildcard=(
                    permission.environment_role.name == ANY_ENVIRONMENT.name
                ),
                object_id=object_id,
                environment_id=environment_id,
            )
            bucket = self.rules.setdefault(permission.transaction.name, {})
            bucket.setdefault(rule.subject_id, []).append(rule)
            self.rule_count += 1

    # ------------------------------------------------------------------
    # Request-side profiles
    # ------------------------------------------------------------------
    def subject_profile(
        self, direct_names
    ) -> Tuple[Tuple[int, ...], Tuple[str, ...], int, Dict[int, int]]:
        """Expand direct subject roles into the compiled request shape.

        Returns ``(effective ids, effective names, possession mask,
        merged distance table)``.  All four are derived from the baked
        closure bitsets — no per-request graph traversal.
        """
        interned = self.subjects
        ids = interned.ids
        direct_ids = [ids[name] for name in direct_names]
        mask = 0
        for role_id in direct_ids:
            mask |= interned.up_masks[role_id]
        effective_ids = _mask_ids(mask)
        effective_names = tuple(interned.names[i] for i in effective_ids)
        return (
            effective_ids,
            effective_names,
            mask,
            interned.merged_distances(direct_ids),
        )

    def object_profile(
        self, direct_names
    ) -> Tuple[int, FrozenSet[str], Dict[int, int]]:
        """(possession mask incl. ``any-object``, expanded names, distances).

        Names come back as a ``frozenset`` so the decision can embed
        them without another copy.
        """
        interned = self.objects
        ids = interned.ids
        direct_ids = [ids[name] for name in direct_names]
        mask = self.any_object_bit
        for role_id in direct_ids:
            mask |= interned.up_masks[role_id]
        names = frozenset(interned.names[i] for i in _mask_ids(mask))
        return mask, names, interned.merged_distances(direct_ids)

    def environment_profile(
        self, active_names
    ) -> Tuple[int, FrozenSet[str], Dict[int, int]]:
        """(active mask incl. ``any-environment``, expanded names, distances).

        Unregistered names in ``active_names`` are ignored, mirroring
        :meth:`MediationEngine._environment_role_names`.
        """
        interned = self.environments
        ids = interned.ids
        direct_ids = [
            role_id
            for role_id in (ids.get(name) for name in active_names)
            if role_id is not None
        ]
        mask = self.any_environment_bit
        for role_id in direct_ids:
            mask |= interned.up_masks[role_id]
        names = frozenset(interned.names[i] for i in _mask_ids(mask))
        return mask, names, interned.merged_distances(direct_ids)


def _mask_ids(mask: int) -> Tuple[int, ...]:
    """Decode a bitset into ascending role ids."""
    ids: List[int] = []
    while mask:
        bit = mask & -mask
        ids.append(bit.bit_length() - 1)
        mask ^= bit
    return tuple(ids)
