"""Role-precedence / conflict resolution (§4.1.2 "Role Precedence").

When a subject possesses multiple roles with inconsistent access rules
(the paper's example: Bobby is both *family-member*, which may read the
medical records, and *child*, which may not), "the system must decide
which access rule takes precedence".  The paper enumerates the design
space — always deny, always allow, a predefined rule or algorithm, or
active-over-inactive via role activation — and we implement all of
them as pluggable strategies:

* :attr:`PrecedenceStrategy.DENY_OVERRIDES` — a matching deny beats any
  grant (the paper's "always give precedence to the role that denies").
* :attr:`PrecedenceStrategy.ALLOW_OVERRIDES` — a matching grant beats
  any deny.
* :attr:`PrecedenceStrategy.PRIORITY` — highest :attr:`Permission.priority`
  wins; ties fall back to deny-overrides among the tied rules.
* :attr:`PrecedenceStrategy.MOST_SPECIFIC` — the rule whose matched
  roles are closest (in hierarchy distance) to the directly-possessed
  roles wins; ties fall back to deny-overrides.
* :attr:`PrecedenceStrategy.ACTIVE_OVER_INACTIVE` is realized
  structurally rather than as a resolver: when a session is supplied,
  only *active* roles produce matches at all (§4.1.2 "active roles
  take precedence over inactive roles").

The default throughout the library is deny-overrides — the
fail-closed choice appropriate for a home full of sensitive data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.permissions import Permission, Sign
from repro.core.roles import Role
from repro.exceptions import PolicyError


class PrecedenceStrategy(enum.Enum):
    """Selectable conflict-resolution strategies."""

    DENY_OVERRIDES = "deny-overrides"
    ALLOW_OVERRIDES = "allow-overrides"
    PRIORITY = "priority"
    MOST_SPECIFIC = "most-specific"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Match:
    """A permission that matched an access request.

    ``specificity`` is the total hierarchy distance between the
    request's direct roles and the roles the rule was written against
    (0 = the rule names the direct roles themselves); smaller is more
    specific.  ``confidence`` is the authentication confidence of the
    matched subject-role claim.
    """

    permission: Permission
    subject_role: Role
    object_role: Role
    environment_role: Role
    specificity: int = 0
    confidence: float = 1.0

    @property
    def sign(self) -> Sign:
        return self.permission.sign


@dataclass(frozen=True)
class Resolution:
    """The outcome of conflict resolution over a match set."""

    sign: Sign
    winner: Optional[Match]
    rationale: str


def resolve(
    matches: Sequence[Match],
    strategy: PrecedenceStrategy,
    default_sign: Sign = Sign.DENY,
) -> Resolution:
    """Resolve ``matches`` into a single signed decision.

    :param matches: all permissions that matched the request, in
        policy insertion order.  Every decision path (compiled,
        indexed, naive) normalizes to this same :class:`Match` shape,
        so resolution semantics are identical regardless of how the
        match set was computed.
    :param strategy: the conflict-resolution strategy to apply.
    :param default_sign: decision when *nothing* matched.  The library
        default is the closed-world :attr:`Sign.DENY`.
    """
    if not matches:
        return Resolution(
            default_sign, None, f"no matching rule; default is {default_sign.value}"
        )
    if strategy is PrecedenceStrategy.DENY_OVERRIDES:
        return _deny_overrides(matches)
    if strategy is PrecedenceStrategy.ALLOW_OVERRIDES:
        return _allow_overrides(matches)
    if strategy is PrecedenceStrategy.PRIORITY:
        return _priority(matches)
    if strategy is PrecedenceStrategy.MOST_SPECIFIC:
        return _most_specific(matches)
    raise PolicyError(f"unknown precedence strategy {strategy!r}")


def _first_with_sign(matches: Sequence[Match], sign: Sign) -> Optional[Match]:
    for match in matches:
        if match.sign is sign:
            return match
    return None


def _deny_overrides(matches: Sequence[Match]) -> Resolution:
    deny = _first_with_sign(matches, Sign.DENY)
    if deny is not None:
        return Resolution(
            Sign.DENY, deny, f"deny-overrides: {deny.permission.describe()}"
        )
    grant = matches[0]
    return Resolution(
        Sign.GRANT, grant, f"deny-overrides: no deny matched; {grant.permission.describe()}"
    )


def _allow_overrides(matches: Sequence[Match]) -> Resolution:
    grant = _first_with_sign(matches, Sign.GRANT)
    if grant is not None:
        return Resolution(
            Sign.GRANT, grant, f"allow-overrides: {grant.permission.describe()}"
        )
    deny = matches[0]
    return Resolution(
        Sign.DENY, deny, f"allow-overrides: no grant matched; {deny.permission.describe()}"
    )


def _priority(matches: Sequence[Match]) -> Resolution:
    # Single pass: track the top priority and its tied matches together
    # (resolve sits on the mediation hot path; the compiled engine
    # feeds it one Match list per decision).
    top: Optional[int] = None
    tied: List[Match] = []
    for match in matches:
        priority = match.permission.priority
        if top is None or priority > top:
            top = priority
            tied = [match]
        elif priority == top:
            tied.append(match)
    inner = _deny_overrides(tied)
    return Resolution(
        inner.sign,
        inner.winner,
        f"priority {top} rule(s) win; {inner.rationale}",
    )


def _most_specific(matches: Sequence[Match]) -> Resolution:
    # Single pass, mirroring _priority (smaller distance wins).
    best: Optional[int] = None
    tied: List[Match] = []
    for match in matches:
        specificity = match.specificity
        if best is None or specificity < best:
            best = specificity
            tied = [match]
        elif specificity == best:
            tied.append(match)
    inner = _deny_overrides(tied)
    return Resolution(
        inner.sign,
        inner.winner,
        f"most-specific (distance {best}) rule(s) win; {inner.rationale}",
    )
