"""Audit-evidence queries and signed evidence packs.

The governance question the ROADMAP poses — *"who accessed X during
window W, under which subject/object/environment roles, and why?"* —
is answered here, over the hash-chained audit JSONL that
:class:`~repro.core.audit.HashChainWriter` (or
``AuditLog.export_jsonl``) produced, optionally joined to exported
trace spans by ``request_id`` / ``trace_id``.

An **evidence pack** is the portable answer: the verified query
result, the window and filters that produced it, the chain anchor of
the source log (head hash + record count, so the pack pins the exact
log state it was drawn from), and a digest over the whole pack —
optionally HMAC-SHA256-signed with an operator key so a recipient can
check both integrity and origin.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from typing import Dict, Iterable, List, Optional

from repro.core.audit import ChainVerification, canonical_json, verify_audit_chain

#: Format marker for evidence packs, bumped on schema changes.
PACK_VERSION = 1


# ----------------------------------------------------------------------
# Window queries
# ----------------------------------------------------------------------
def query_audit_records(
    entries: Iterable[Dict[str, object]],
    subject: Optional[str] = None,
    obj: Optional[str] = None,
    transaction: Optional[str] = None,
    granted: Optional[bool] = None,
    tenant: Optional[str] = None,
    since: Optional[float] = None,
    until: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Conjunctive filter over parsed audit records.

    ``None`` means "don't filter"; time filters only apply to records
    that carry a ``timestamp``.  One linear pass, plain comparisons —
    a 4000-permission run's log filters in well under a second.
    """
    result: List[Dict[str, object]] = []
    for record in entries:
        if subject is not None and record.get("subject") != subject:
            continue
        if obj is not None and record.get("object") != obj:
            continue
        if transaction is not None and record.get("transaction") != transaction:
            continue
        if granted is not None and record.get("granted") != granted:
            continue
        if tenant is not None and record.get("tenant") != tenant:
            continue
        timestamp = record.get("timestamp")
        if since is not None and (
            not isinstance(timestamp, (int, float)) or timestamp < since
        ):
            continue
        if until is not None and (
            not isinstance(timestamp, (int, float)) or timestamp > until
        ):
            continue
        result.append(record)
    return result


def join_traces(
    records: List[Dict[str, object]],
    spans: Iterable[Dict[str, object]],
) -> Dict[str, List[Dict[str, object]]]:
    """Index exported spans by the audit records they explain.

    A span joins a record when their ``trace_id`` matches, or — for
    untraced-but-correlated exports — when the span's ``request_id``
    equals the record's.  Returns ``{record key: [span, ...]}`` keyed
    by ``trace_id`` when present, else ``request_id:<id>``.
    """
    by_trace: Dict[str, List[Dict[str, object]]] = {}
    by_request: Dict[str, List[Dict[str, object]]] = {}
    for span in spans:
        trace_id = span.get("trace_id")
        if isinstance(trace_id, str) and trace_id:
            by_trace.setdefault(trace_id, []).append(span)
        request_id = span.get("request_id")
        if request_id is not None:
            by_request.setdefault(str(request_id), []).append(span)
    joined: Dict[str, List[Dict[str, object]]] = {}
    for record in records:
        trace_id = record.get("trace_id")
        if isinstance(trace_id, str) and trace_id and trace_id in by_trace:
            joined[trace_id] = by_trace[trace_id]
            continue
        request_id = record.get("request_id")
        if request_id is not None and str(request_id) in by_request:
            joined[f"request_id:{request_id}"] = by_request[str(request_id)]
    return joined


# ----------------------------------------------------------------------
# Evidence packs
# ----------------------------------------------------------------------
def pack_digest(pack: Dict[str, object]) -> str:
    """SHA-256 over the canonical pack content, minus its own seals."""
    body = {
        key: value
        for key, value in pack.items()
        if key not in ("digest", "signature")
    }
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


def build_evidence_pack(
    verification: ChainVerification,
    records: List[Dict[str, object]],
    query: Dict[str, object],
    source: str = "",
    spans: Optional[Dict[str, List[Dict[str, object]]]] = None,
    generated_at: Optional[float] = None,
    key: Optional[bytes] = None,
    key_id: str = "",
) -> Dict[str, object]:
    """Assemble a self-verifying evidence pack.

    :param verification: the chain verification of the *source log*
        (the pack records its head hash and count as the anchor).
    :param records: the query's matching audit records.
    :param query: the filters that produced ``records``, verbatim.
    :param spans: optional joined trace spans (:func:`join_traces`).
    :param key: optional HMAC-SHA256 key; with it the pack carries a
        ``signature`` over its digest, so possession of the key is
        provable, not just integrity.
    """
    pack: Dict[str, object] = {
        "pack_version": PACK_VERSION,
        "source": source,
        "generated_at": generated_at,
        "query": dict(query),
        "chain": {
            "verified": verification.ok,
            "records": verification.records,
            "head_hash": verification.head_hash,
        },
        "matches": len(records),
        "records": records,
    }
    if spans:
        pack["traces"] = spans
    digest = pack_digest(pack)
    pack["digest"] = digest
    if key is not None:
        pack["signature"] = {
            "algorithm": "hmac-sha256",
            "key_id": key_id,
            "value": hmac.new(key, digest.encode("ascii"), hashlib.sha256)
            .hexdigest(),
        }
    return pack


def verify_evidence_pack(
    pack: Dict[str, object], key: Optional[bytes] = None
) -> "tuple[bool, str]":
    """Check a pack's digest (and signature, when ``key`` is given).

    :returns: ``(ok, reason)`` — ``reason`` is empty on success.
    """
    claimed = pack.get("digest")
    if not isinstance(claimed, str):
        return False, "pack carries no digest"
    if pack_digest(pack) != claimed:
        return False, "pack digest mismatch: pack content was altered"
    if key is not None:
        signature = pack.get("signature")
        if not isinstance(signature, dict):
            return False, "pack carries no signature"
        expected = hmac.new(
            key, claimed.encode("ascii"), hashlib.sha256
        ).hexdigest()
        value = signature.get("value")
        if not isinstance(value, str) or not hmac.compare_digest(
            value, expected
        ):
            return False, "pack signature mismatch: wrong key or altered pack"
    return True, ""


def load_jsonl(path: str) -> List[Dict[str, object]]:
    """Read a JSONL file into a list of dicts, skipping blank lines."""
    entries: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if isinstance(payload, dict):
                entries.append(payload)
    return entries


def verify_audit_file(
    path: str,
    expect_head: Optional[str] = None,
    use_anchor: bool = True,
) -> ChainVerification:
    """Verify an on-disk audit log, honoring its ``.head`` sidecar.

    An explicit ``expect_head`` wins over the sidecar; pass
    ``use_anchor=False`` to check link integrity only.
    """
    from repro.core.audit import read_head_anchor

    expect_records: Optional[int] = None
    if expect_head is None and use_anchor:
        anchor = read_head_anchor(path + ".head")
        if anchor is not None:
            head = anchor.get("head_hash")
            count = anchor.get("records")
            if isinstance(head, str):
                expect_head = head
            if isinstance(count, int):
                expect_records = count
    with open(path, "r", encoding="utf-8") as handle:
        return verify_audit_chain(
            handle, expect_head=expect_head, expect_records=expect_records
        )
