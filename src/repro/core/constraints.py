"""Separation of duty and related constraints (§4.1.2).

The paper describes two varieties of separation of duty:

* **Static** (SSD): two roles present a conflict of interest that
  cannot be resolved by activation discipline; the same subject may
  never possess both.  Enforced at *assignment* time.
* **Dynamic** (DSD): the conflict exists only when both roles are used
  simultaneously (the teller / account-holder example); the same
  subject may possess both but never have both *active* in a session.
  Enforced at *activation* time.

Beyond the paper's two, this module provides the standard companions
from the RBAC literature that the paper's references [4, 13] define —
cardinality and prerequisite-role constraints — because realistic home
policies use them ("at most two subjects may hold *administrator*").

Constraints apply to **subject roles**; each checks a proposed new
role against an existing role-name set and raises
:class:`ConstraintViolationError` to veto.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable, List, Set

from repro.core.roles import Role
from repro.exceptions import ConstraintViolationError, PolicyError


def _role_names(roles: Iterable["Role | str"]) -> FrozenSet[str]:
    return frozenset(r.name if isinstance(r, Role) else r for r in roles)


@dataclass(frozen=True)
class SeparationOfDuty:
    """A mutual-exclusion constraint over a set of roles.

    ``static=True`` gives SSD semantics (checked on assignment);
    ``static=False`` gives DSD semantics (checked on activation).
    ``limit`` generalizes pairwise exclusion: a subject may hold (or
    activate) at most ``limit`` of the conflicting roles.  The classic
    pairwise case is ``limit=1`` over two roles.
    """

    name: str
    roles: FrozenSet[str]
    static: bool = True
    limit: int = 1

    def __init__(
        self,
        name: str,
        roles: Iterable["Role | str"],
        static: bool = True,
        limit: int = 1,
    ) -> None:
        role_names = _role_names(roles)
        if len(role_names) < 2:
            raise PolicyError(
                f"separation-of-duty constraint {name!r} needs >= 2 roles"
            )
        if not 1 <= limit < len(role_names):
            raise PolicyError(
                f"separation-of-duty limit must be in [1, {len(role_names) - 1}], "
                f"got {limit}"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "roles", role_names)
        object.__setattr__(self, "static", static)
        object.__setattr__(self, "limit", limit)

    @property
    def kind_label(self) -> str:
        return "static" if self.static else "dynamic"

    def check(self, subject: str, new_role: str, held: Set[str]) -> None:
        """Veto adding ``new_role`` to ``held`` for ``subject``.

        ``held`` is the currently assigned (SSD) or currently active
        (DSD) role-name set *before* the addition.

        :raises ConstraintViolationError: when the addition would push
            the subject over ``limit`` conflicting roles.
        """
        if new_role not in self.roles:
            return
        conflicting = (held & self.roles) | {new_role}
        if len(conflicting) > self.limit:
            raise ConstraintViolationError(
                f"{self.kind_label} separation of duty {self.name!r}: "
                f"{subject!r} cannot hold {sorted(conflicting)} together "
                f"(limit {self.limit})",
                constraint_name=self.name,
            )

    def violated_by(self, role_names: Set[str]) -> bool:
        """True iff ``role_names`` already violates this constraint."""
        return len(role_names & self.roles) > self.limit


@dataclass(frozen=True)
class CardinalityConstraint:
    """At most ``max_members`` subjects may be assigned ``role``."""

    name: str
    role: str
    max_members: int

    def __init__(self, name: str, role: "Role | str", max_members: int) -> None:
        if max_members < 1:
            raise PolicyError(f"cardinality for {name!r} must be >= 1")
        object.__setattr__(self, "name", name)
        object.__setattr__(
            self, "role", role.name if isinstance(role, Role) else role
        )
        object.__setattr__(self, "max_members", max_members)

    def check(self, subject: str, new_role: str, current_members: int) -> None:
        """Veto assignment when the role is already at capacity."""
        if new_role != self.role:
            return
        if current_members >= self.max_members:
            raise ConstraintViolationError(
                f"cardinality {self.name!r}: role {self.role!r} already has "
                f"{current_members} member(s), max is {self.max_members}",
                constraint_name=self.name,
            )


@dataclass(frozen=True)
class PrerequisiteConstraint:
    """A subject must already hold ``required`` to be given ``role``.

    Example: only existing *family-member* subjects may be made
    *administrator*.
    """

    name: str
    role: str
    required: str

    def __init__(
        self, name: str, role: "Role | str", required: "Role | str"
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(
            self, "role", role.name if isinstance(role, Role) else role
        )
        object.__setattr__(
            self,
            "required",
            required.name if isinstance(required, Role) else required,
        )
        if self.role == self.required:
            raise PolicyError(
                f"prerequisite constraint {name!r} is self-referential"
            )

    def check(self, subject: str, new_role: str, held: Set[str]) -> None:
        """Veto assignment when the prerequisite role is missing.

        ``held`` should be the subject's *effective* (hierarchy-
        expanded) role names so that holding a specialization of the
        prerequisite satisfies it.
        """
        if new_role != self.role:
            return
        if self.required not in held:
            raise ConstraintViolationError(
                f"prerequisite {self.name!r}: {subject!r} must hold "
                f"{self.required!r} before being assigned {self.role!r}",
                constraint_name=self.name,
            )


class ConstraintSet:
    """The collection of constraints attached to a policy.

    Provides the two checkpoints the model needs:

    * :meth:`check_assignment` — SSD, cardinality, prerequisites;
    * :meth:`check_activation` — DSD.
    """

    def __init__(self) -> None:
        self._ssd: List[SeparationOfDuty] = []
        self._dsd: List[SeparationOfDuty] = []
        self._cardinality: List[CardinalityConstraint] = []
        self._prerequisite: List[PrerequisiteConstraint] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add(self, constraint) -> None:
        """Register any supported constraint object."""
        if isinstance(constraint, SeparationOfDuty):
            (self._ssd if constraint.static else self._dsd).append(constraint)
        elif isinstance(constraint, CardinalityConstraint):
            self._cardinality.append(constraint)
        elif isinstance(constraint, PrerequisiteConstraint):
            self._prerequisite.append(constraint)
        else:
            raise PolicyError(f"unsupported constraint type {type(constraint)!r}")

    @property
    def static_sod(self) -> List[SeparationOfDuty]:
        return list(self._ssd)

    @property
    def dynamic_sod(self) -> List[SeparationOfDuty]:
        return list(self._dsd)

    @property
    def cardinality(self) -> List[CardinalityConstraint]:
        return list(self._cardinality)

    @property
    def prerequisite(self) -> List[PrerequisiteConstraint]:
        return list(self._prerequisite)

    def __len__(self) -> int:
        return (
            len(self._ssd)
            + len(self._dsd)
            + len(self._cardinality)
            + len(self._prerequisite)
        )

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def check_assignment(
        self,
        subject: str,
        new_role: str,
        assigned: Set[str],
        effective: Set[str],
        member_count: Callable[[str], int],
    ) -> None:
        """Run all assignment-time checks.

        :param assigned: the subject's *directly* assigned role names.
        :param effective: the hierarchy-expanded role names (used for
            prerequisites).
        :param member_count: callable giving the current direct member
            count of a role (used for cardinality).
        :raises ConstraintViolationError: on the first violation.
        """
        for ssd in self._ssd:
            ssd.check(subject, new_role, assigned)
        for card in self._cardinality:
            card.check(subject, new_role, member_count(card.role))
        for prereq in self._prerequisite:
            prereq.check(subject, new_role, effective)

    def check_activation(self, subject: str, new_role: str, active: Set[str]) -> None:
        """Run all activation-time (DSD) checks.

        :param active: role names already active in the session.
        :raises ConstraintViolationError: on the first violation.
        """
        for dsd in self._dsd:
            dsd.check(subject, new_role, active)
