"""The GRBAC policy aggregate.

:class:`GrbacPolicy` collects everything the model defines — entity
registries, the three role hierarchies, role assignments, permissions,
constraints, and the precedence configuration — behind one object that
the mediation engine (and the policy DSL compiler, analysis passes,
benchmarks, …) consume.

Two distinguished roles are pre-registered in every policy:

* ``object:any-object`` — possessed implicitly by every object, for
  rules that do not discriminate on the resource;
* ``environment:any-environment`` — always active, for rules with no
  environmental condition.

With those two, "traditional RBAC is essentially GRBAC with subject
roles only" (§6) holds constructively: a plain RBAC rule is a GRBAC
permission against ``any-object``/``any-environment``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Union

from repro.core.activation import SessionManager
from repro.core.assignment import AssignmentTable
from repro.core.compiled import CompiledPolicy
from repro.core.constraints import ConstraintSet
from repro.core.hierarchy import RoleHierarchy
from repro.core.objects import Resource
from repro.core.permissions import Permission, Sign
from repro.core.precedence import PrecedenceStrategy
from repro.core.roles import (
    ANY_ENVIRONMENT,
    ANY_OBJECT,
    Role,
    RoleKind,
    environment_role,
    object_role,
    subject_role,
)
from repro.core.subjects import Subject
from repro.core.transactions import Transaction
from repro.exceptions import (
    DuplicateEntityError,
    PolicyError,
    UnknownEntityError,
)

RoleLike = Union[Role, str]


class GrbacPolicy:
    """A complete GRBAC policy instance.

    The class is intentionally a plain in-memory aggregate: persistence
    and distribution concerns belong to layers above the model, exactly
    as the paper separates the access *model* from the trusted system
    that hosts it (§7).
    """

    def __init__(
        self,
        name: str = "policy",
        precedence: PrecedenceStrategy = PrecedenceStrategy.DENY_OVERRIDES,
        default_sign: Sign = Sign.DENY,
    ) -> None:
        self.name = name
        #: Conflict-resolution strategy for mediation (§4.1.2).
        self.precedence = precedence
        #: Decision when no rule matches; DENY = closed world.
        self.default_sign = default_sign

        self._subjects: Dict[str, Subject] = {}
        self._objects: Dict[str, Resource] = {}
        self._transactions: Dict[str, Transaction] = {}

        self.subject_roles = RoleHierarchy(RoleKind.SUBJECT)
        self.object_roles = RoleHierarchy(RoleKind.OBJECT)
        self.environment_roles = RoleHierarchy(RoleKind.ENVIRONMENT)

        self.constraints = ConstraintSet()
        self._subject_assignments = AssignmentTable(
            RoleKind.SUBJECT, "subject", validator=self._validate_subject_assignment
        )
        self._object_assignments = AssignmentTable(RoleKind.OBJECT, "object")

        self._permissions: List[Permission] = []
        self._permission_keys: Set[tuple] = set()
        #: Monotonic counter bumped on every permission add/remove;
        #: consumers (the mediation index) use it as a staleness check.
        self.permission_revision = 0
        #: Counter bumped on every assignment change (subject or
        #: object); part of the decision-cache key.
        self.assignment_revision = 0

        self._sessions = SessionManager(
            authorized=self.authorized_subject_role_names,
            dsd_check=self.constraints.check_activation,
        )

        #: Cached compiled snapshot; rebuilt lazily when
        #: :attr:`decision_revision` moves (see :meth:`compiled`).
        self._compiled: Optional[CompiledPolicy] = None
        #: How many snapshot compiles this policy has performed.
        self.compile_count = 0

        # Distinguished wildcard roles (see module docstring).
        self.object_roles.add_role(ANY_OBJECT)
        self.environment_roles.add_role(ANY_ENVIRONMENT)

    # ------------------------------------------------------------------
    # Entity registration
    # ------------------------------------------------------------------
    def add_subject(self, subject: Union[Subject, str], **attributes) -> Subject:
        """Register a subject (by object or by name).

        Re-adding an identical subject is idempotent; re-adding a name
        with different attributes raises :class:`DuplicateEntityError`.
        """
        if isinstance(subject, str):
            subject = Subject(subject, attributes)
        existing = self._subjects.get(subject.name)
        if existing is not None:
            if existing.attributes == subject.attributes:
                return existing
            raise DuplicateEntityError(f"subject {subject.name!r} already exists")
        self._subjects[subject.name] = subject
        return subject

    def add_object(self, obj: Union[Resource, str], **attributes) -> Resource:
        """Register an object/resource (by object or by name)."""
        if isinstance(obj, str):
            obj = Resource(obj, attributes)
        existing = self._objects.get(obj.name)
        if existing is not None:
            if existing.attributes == obj.attributes:
                return existing
            raise DuplicateEntityError(f"object {obj.name!r} already exists")
        self._objects[obj.name] = obj
        return obj

    def add_transaction(self, transaction: Union[Transaction, str]) -> Transaction:
        """Register a transaction (a bare name builds a simple one)."""
        if isinstance(transaction, str):
            transaction = Transaction.simple(transaction)
        existing = self._transactions.get(transaction.name)
        if existing is not None:
            return existing
        self._transactions[transaction.name] = transaction
        return transaction

    def subject(self, name: str) -> Subject:
        """Look up a registered subject by name."""
        try:
            return self._subjects[name]
        except KeyError:
            raise UnknownEntityError(f"unknown subject {name!r}") from None

    def object(self, name: str) -> Resource:
        """Look up a registered object by name."""
        try:
            return self._objects[name]
        except KeyError:
            raise UnknownEntityError(f"unknown object {name!r}") from None

    def transaction(self, name: str) -> Transaction:
        """Look up a registered transaction by name."""
        try:
            return self._transactions[name]
        except KeyError:
            raise UnknownEntityError(f"unknown transaction {name!r}") from None

    def subjects(self) -> List[Subject]:
        """All registered subjects."""
        return list(self._subjects.values())

    def objects(self) -> List[Resource]:
        """All registered objects."""
        return list(self._objects.values())

    def transactions(self) -> List[Transaction]:
        """All registered transactions."""
        return list(self._transactions.values())

    # ------------------------------------------------------------------
    # Role registration
    # ------------------------------------------------------------------
    def add_subject_role(self, role: RoleLike, description: str = "") -> Role:
        """Register a subject role (by Role or by name)."""
        if isinstance(role, str):
            role = subject_role(role, description)
        return self.subject_roles.add_role(role)

    def add_object_role(self, role: RoleLike, description: str = "") -> Role:
        """Register an object role (by Role or by name)."""
        if isinstance(role, str):
            role = object_role(role, description)
        return self.object_roles.add_role(role)

    def add_environment_role(self, role: RoleLike, description: str = "") -> Role:
        """Register an environment role (by Role or by name)."""
        if isinstance(role, str):
            role = environment_role(role, description)
        return self.environment_roles.add_role(role)

    def hierarchy_for(self, kind: RoleKind) -> RoleHierarchy:
        """The hierarchy managing roles of ``kind``."""
        return {
            RoleKind.SUBJECT: self.subject_roles,
            RoleKind.OBJECT: self.object_roles,
            RoleKind.ENVIRONMENT: self.environment_roles,
        }[kind]

    # ------------------------------------------------------------------
    # Assignment
    # ------------------------------------------------------------------
    def assign_subject(self, subject: Union[Subject, str], role: RoleLike) -> None:
        """Add a subject role to a subject's authorized role set.

        Assignment-time constraints (SSD, cardinality, prerequisites)
        are enforced; a violation raises and leaves state unchanged.
        """
        name = subject.name if isinstance(subject, Subject) else subject
        self.subject(name)
        role_obj = self._resolve_role(role, self.subject_roles)
        self._subject_assignments.assign(name, role_obj)
        self.assignment_revision += 1

    def assign_object(self, obj: Union[Resource, str], role: RoleLike) -> None:
        """Classify an object into an object role (§4.2.3)."""
        name = obj.name if isinstance(obj, Resource) else obj
        self.object(name)
        role_obj = self._resolve_role(role, self.object_roles)
        self._object_assignments.assign(name, role_obj)
        self.assignment_revision += 1

    def revoke_subject(self, subject: str, role: RoleLike) -> None:
        """Remove a subject-role assignment."""
        self._subject_assignments.revoke(subject, self._role_name(role))
        self.assignment_revision += 1

    def revoke_object(self, obj: str, role: RoleLike) -> None:
        """Remove an object-role assignment."""
        self._object_assignments.revoke(obj, self._role_name(role))
        self.assignment_revision += 1

    # --- subject role queries -----------------------------------------
    def authorized_subject_roles(self, subject: str) -> Set[Role]:
        """Directly assigned subject roles (the authorized role set)."""
        return self._subject_assignments.roles_of(subject)

    def authorized_subject_role_names(self, subject: str) -> Set[str]:
        """Names of directly assigned subject roles."""
        return self._subject_assignments.role_names_of(subject)

    def effective_subject_roles(self, subject: str) -> Set[Role]:
        """Hierarchy-expanded subject roles (possession closure)."""
        direct = self._subject_assignments.roles_of(subject)
        return self.subject_roles.expand(direct)

    def subjects_in_role(self, role: RoleLike, transitive: bool = True) -> Set[str]:
        """Subjects possessing ``role``.

        With ``transitive=True`` (default), subjects assigned any
        specialization of ``role`` are included — Mom is "in"
        *family-member* because *parent* specializes it.
        """
        role_name = self._role_name(role)
        members = self._subject_assignments.members_of(role_name)
        if transitive and role_name in self.subject_roles:
            for spec in self.subject_roles.specializations(role_name):
                members |= self._subject_assignments.members_of(spec.name)
        return members

    # --- object role queries ------------------------------------------
    def direct_object_roles(self, obj: str) -> Set[Role]:
        """Directly assigned object roles (excludes ``any-object``)."""
        return self._object_assignments.roles_of(obj)

    def effective_object_roles(self, obj: str) -> Set[Role]:
        """Hierarchy-expanded object roles, always incl. ``any-object``.

        :raises UnknownEntityError: for unregistered objects — a
            request against a nonexistent resource is a caller bug,
            not a deniable access.
        """
        self.object(obj)
        direct = self._object_assignments.roles_of(obj)
        expanded = self.object_roles.expand(direct)
        expanded.add(ANY_OBJECT)
        return expanded

    def objects_in_role(self, role: RoleLike, transitive: bool = True) -> Set[str]:
        """Objects classified into ``role`` (transitively by default)."""
        role_name = self._role_name(role)
        if role_name == ANY_OBJECT.name:
            return set(self._objects)
        members = self._object_assignments.members_of(role_name)
        if transitive and role_name in self.object_roles:
            for spec in self.object_roles.specializations(role_name):
                members |= self._object_assignments.members_of(spec.name)
        return members

    # ------------------------------------------------------------------
    # Permissions
    # ------------------------------------------------------------------
    def add_permission(self, permission: Permission) -> Permission:
        """Register a permission; duplicate rule tuples are rejected.

        All referenced roles and the transaction are validated against
        the registries (auto-registering the transaction if needed, to
        keep simple policies terse).
        """
        self.subject_roles.role(permission.subject_role.name)
        self.object_roles.role(permission.object_role.name)
        self.environment_roles.role(permission.environment_role.name)
        self.add_transaction(permission.transaction)
        if permission.key in self._permission_keys:
            raise DuplicateEntityError(
                f"duplicate permission: {permission.describe()}"
            )
        self._permission_keys.add(permission.key)
        self._permissions.append(permission)
        self.permission_revision += 1
        return permission

    def grant(
        self,
        subject_role: RoleLike,
        transaction: Union[Transaction, str],
        object_role: RoleLike = ANY_OBJECT,
        environment_role: RoleLike = ANY_ENVIRONMENT,
        min_confidence: float = 0.0,
        priority: int = 0,
        name: str = "",
    ) -> Permission:
        """Convenience: add a GRANT permission by role names."""
        return self._add_rule(
            subject_role,
            transaction,
            object_role,
            environment_role,
            Sign.GRANT,
            min_confidence,
            priority,
            name,
        )

    def deny(
        self,
        subject_role: RoleLike,
        transaction: Union[Transaction, str],
        object_role: RoleLike = ANY_OBJECT,
        environment_role: RoleLike = ANY_ENVIRONMENT,
        min_confidence: float = 0.0,
        priority: int = 0,
        name: str = "",
    ) -> Permission:
        """Convenience: add a DENY permission by role names (§3)."""
        return self._add_rule(
            subject_role,
            transaction,
            object_role,
            environment_role,
            Sign.DENY,
            min_confidence,
            priority,
            name,
        )

    def permissions(self) -> List[Permission]:
        """All permissions, in insertion order."""
        return list(self._permissions)

    def permissions_for_transaction(self, transaction: str) -> List[Permission]:
        """Permissions whose transaction is ``transaction``."""
        return [p for p in self._permissions if p.transaction.name == transaction]

    def remove_permission(self, permission: Permission) -> None:
        """Remove a previously added permission.

        :raises UnknownEntityError: when not present.
        """
        if permission.key not in self._permission_keys:
            raise UnknownEntityError(
                f"permission not in policy: {permission.describe()}"
            )
        self._permission_keys.discard(permission.key)
        self._permissions = [
            p for p in self._permissions if p.key != permission.key
        ]
        self.permission_revision += 1

    # ------------------------------------------------------------------
    # Constraints & sessions
    # ------------------------------------------------------------------
    def add_constraint(self, constraint) -> None:
        """Attach an SoD / cardinality / prerequisite constraint.

        Existing assignments are re-validated for static constraints so
        a policy cannot silently hold a violating state.
        """
        self.constraints.add(constraint)
        # Re-validate current assignments against the new constraint.
        for subject_name in self._subject_assignments.entities():
            assigned = self._subject_assignments.role_names_of(subject_name)
            for constraint_obj in self.constraints.static_sod:
                if constraint_obj.violated_by(assigned):
                    raise PolicyError(
                        f"existing assignments of {subject_name!r} violate "
                        f"new constraint {constraint_obj.name!r}"
                    )

    @property
    def sessions(self) -> SessionManager:
        """The policy's session manager (role activation, §4.1.2)."""
        return self._sessions

    @property
    def decision_revision(self) -> int:
        """A counter that changes whenever any state affecting access
        decisions changes: permissions, assignments, or any of the
        three role hierarchies.  The mediation decision cache keys on
        it."""
        return (
            self.permission_revision
            + self.assignment_revision
            + self.subject_roles.revision
            + self.object_roles.revision
            + self.environment_roles.revision
        )

    def compiled(self) -> CompiledPolicy:
        """The compiled snapshot of the current decision revision.

        Compilation happens lazily, at most once per revision: any
        mutation of permissions, assignments, or hierarchies moves
        :attr:`decision_revision` and the next call rebuilds.  The
        returned snapshot is immutable and safe to hold for the
        lifetime of one revision; the mediation engine's compiled path
        is served entirely from it.
        """
        snapshot = self._compiled
        if snapshot is None or snapshot.revision != self.decision_revision:
            snapshot = CompiledPolicy(self)
            self._compiled = snapshot
            self.compile_count += 1
        return snapshot

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Size counters, used by benchmarks and analysis reports."""
        return {
            "subjects": len(self._subjects),
            "objects": len(self._objects),
            "transactions": len(self._transactions),
            "subject_roles": len(self.subject_roles),
            "object_roles": len(self.object_roles),
            "environment_roles": len(self.environment_roles),
            "subject_assignments": len(self._subject_assignments),
            "object_assignments": len(self._object_assignments),
            "permissions": len(self._permissions),
            "constraints": len(self.constraints),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"GrbacPolicy({self.name!r}, permissions={stats['permissions']}, "
            f"subject_roles={stats['subject_roles']})"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _role_name(role: RoleLike) -> str:
        return role.name if isinstance(role, Role) else role

    def _resolve_role(self, role: RoleLike, hierarchy: RoleHierarchy) -> Role:
        if isinstance(role, Role):
            hierarchy.role(role.name)  # must be registered
            return role
        return hierarchy.role(role)

    def _add_rule(
        self,
        subject_role: RoleLike,
        transaction: Union[Transaction, str],
        object_role: RoleLike,
        environment_role: RoleLike,
        sign: Sign,
        min_confidence: float,
        priority: int,
        name: str,
    ) -> Permission:
        transaction_obj = self.add_transaction(transaction)
        permission = Permission(
            subject_role=self._resolve_role(subject_role, self.subject_roles),
            object_role=self._resolve_role(object_role, self.object_roles),
            environment_role=self._resolve_role(
                environment_role, self.environment_roles
            ),
            transaction=transaction_obj,
            sign=sign,
            min_confidence=min_confidence,
            priority=priority,
            name=name,
        )
        return self.add_permission(permission)

    def _validate_subject_assignment(
        self, subject: str, role: Role, current: Set[str]
    ) -> None:
        effective = {r.name for r in self.subject_roles.expand(current)} if current else set()
        self.constraints.check_assignment(
            subject,
            role.name,
            current,
            effective,
            self._subject_assignments.member_count,
        )
