"""Audit trail for access decisions.

The home scenario makes auditability a first-class need: when a
homeowner asks "who looked at the bedroom camera last night?", the
answer must come from a queryable record of decisions, not from logs
scattered across devices.  :class:`AuditLog` records every
:class:`~repro.core.mediation.Decision` together with the environment
snapshot it was made under, and supports the queries the example
applications and benchmarks need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from repro.core.mediation import Decision
from repro.obs.observers import ObserverHub


@dataclass(frozen=True)
class AuditRecord:
    """One audited decision with its timestamp.

    ``timestamp`` is seconds since the simulation epoch (the env
    substrate's clock), or ``None`` when no clock was attached.
    """

    sequence: int
    decision: Decision
    timestamp: Optional[float] = None

    @property
    def granted(self) -> bool:
        return self.decision.granted

    @property
    def subject(self) -> Optional[str]:
        return self.decision.request.subject

    @property
    def obj(self) -> str:
        return self.decision.request.obj

    @property
    def transaction(self) -> str:
        return self.decision.request.transaction

    @property
    def request_id(self) -> Optional[object]:
        """The wire correlation id, when the decision carries a trace.

        This is the join key between the audit log and the obs export
        pipeline: an exported span, a flight-recorder entry, and an
        audit record for the same request all name the same id.
        """
        trace = self.decision.trace
        return trace.request_id if trace is not None else None

    def describe(self) -> str:
        """One-line rendering for reports."""
        stamp = f"t={self.timestamp:.0f} " if self.timestamp is not None else ""
        outcome = "GRANT" if self.granted else "DENY"
        return (
            f"{stamp}#{self.sequence} {outcome} "
            f"{self.subject or '<unidentified>'} "
            f"{self.transaction} {self.obj}"
        )


class AuditLog:
    """An append-only, queryable record of decisions.

    :param clock: optional zero-argument callable returning the current
        time (the env substrate passes ``clock.now``); decisions are
        stamped with its value at append time.
    :param capacity: optional bound; when exceeded the oldest records
        are dropped (a ring buffer), which keeps week-long simulated
        traces memory-safe.
    :param observers: optional hub; every appended record is published
        as an ``audit.record`` event (outcome, parties, sequence).
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        capacity: Optional[int] = None,
        observers: Optional[ObserverHub] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("audit capacity must be >= 1")
        self._clock = clock
        self._capacity = capacity
        self.observers = observers
        self._records: List[AuditRecord] = []
        self._sequence = 0
        self._grant_count = 0
        self._deny_count = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, decision: Decision) -> AuditRecord:
        """Append a decision and return its audit record."""
        self._sequence += 1
        timestamp = self._clock() if self._clock is not None else None
        record = AuditRecord(self._sequence, decision, timestamp)
        self._records.append(record)
        if decision.granted:
            self._grant_count += 1
        else:
            self._deny_count += 1
        if self._capacity is not None and len(self._records) > self._capacity:
            self._records = self._records[-self._capacity :]
        hub = self.observers
        if hub:
            hub.emit(
                "audit.record",
                sequence=record.sequence,
                granted=record.granted,
                subject=record.subject,
                transaction=record.transaction,
                object=record.obj,
                timestamp=record.timestamp,
            )
        return record

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(list(self._records))

    def records(
        self,
        subject: Optional[str] = None,
        obj: Optional[str] = None,
        transaction: Optional[str] = None,
        granted: Optional[bool] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[AuditRecord]:
        """Filtered view of the retained records.

        All filters are conjunctive; ``None`` means "don't filter".
        Time filters only apply to records that carry a timestamp.
        """
        result = []
        for record in self._records:
            if subject is not None and record.subject != subject:
                continue
            if obj is not None and record.obj != obj:
                continue
            if transaction is not None and record.transaction != transaction:
                continue
            if granted is not None and record.granted != granted:
                continue
            if since is not None and (
                record.timestamp is None or record.timestamp < since
            ):
                continue
            if until is not None and (
                record.timestamp is None or record.timestamp > until
            ):
                continue
            result.append(record)
        return result

    def denials(self, subject: Optional[str] = None) -> List[AuditRecord]:
        """All retained denials, optionally for one subject."""
        return self.records(subject=subject, granted=False)

    def grants(self, subject: Optional[str] = None) -> List[AuditRecord]:
        """All retained grants, optionally for one subject."""
        return self.records(subject=subject, granted=True)

    @property
    def grant_count(self) -> int:
        """Total grants recorded (including evicted records)."""
        return self._grant_count

    @property
    def deny_count(self) -> int:
        """Total denials recorded (including evicted records)."""
        return self._deny_count

    @property
    def total(self) -> int:
        """Total decisions recorded (including evicted records)."""
        return self._grant_count + self._deny_count

    def grant_rate(self) -> float:
        """Fraction of all recorded decisions that were grants."""
        if self.total == 0:
            return 0.0
        return self._grant_count / self.total

    def summary(self) -> str:
        """One-line traffic summary for reports."""
        return (
            f"{self.total} decision(s): {self._grant_count} granted, "
            f"{self._deny_count} denied ({self.grant_rate():.1%} grant rate)"
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_jsonl(self) -> str:
        """Render retained records as JSON Lines, one decision per line.

        The export carries what an external audit system needs —
        outcome, parties, matched-rule names, rationale, environment —
        not the full in-memory decision graph.  Decisions that carry a
        recorded pipeline trace additionally export their per-stage
        timings (microseconds), so latency outliers can be attributed
        to a stage after the fact.
        """
        import json

        lines = []
        for record in self._records:
            decision = record.decision
            payload = {
                "sequence": record.sequence,
                "timestamp": record.timestamp,
                "request_id": record.request_id,
                "granted": record.granted,
                "subject": record.subject,
                "transaction": record.transaction,
                "object": record.obj,
                "rationale": decision.rationale,
                "matched_rules": [
                    m.permission.describe() for m in decision.matches
                ],
                "environment_roles": sorted(decision.environment_roles),
                "subject_roles": {
                    name: round(confidence, 6)
                    for name, confidence in sorted(
                        decision.subject_role_confidence.items()
                    )
                },
            }
            trace = decision.trace
            if trace is not None:
                timings = trace.stage_timings_us()
                if timings:
                    payload["stage_timings_us"] = timings
            lines.append(json.dumps(payload, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")
