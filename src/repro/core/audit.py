"""Audit trail for access decisions, with a tamper-evident export.

The home scenario makes auditability a first-class need: when a
homeowner asks "who looked at the bedroom camera last night?", the
answer must come from a queryable record of decisions, not from logs
scattered across devices.  :class:`AuditLog` records every
:class:`~repro.core.mediation.Decision` together with the environment
snapshot it was made under, and supports the queries the example
applications and benchmarks need.

The JSONL export is a **hash chain**: every record carries
``prev_hash`` (the previous record's ``record_hash``, or the all-zeros
genesis value) and ``record_hash`` (SHA-256 over ``prev_hash`` plus
the canonical JSON of the record's own fields).  Editing, deleting, or
reordering any line breaks every hash downstream of it, which
:func:`verify_audit_chain` detects; truncation of the *tail* is caught
against a head anchor — the ``<path>.head`` sidecar that
:class:`HashChainWriter` maintains, or an explicit expected head hash
(an evidence pack records one).  :class:`HashChainWriter` is the
serving-path producer: a bounded queue and a daemon writer thread
append chained records without ever blocking a decision.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Union

from repro.core.mediation import Decision
from repro.obs.observers import ObserverHub

#: ``prev_hash`` of the first record in a chain.
GENESIS_HASH = "0" * 64


def canonical_json(payload: Dict[str, object]) -> str:
    """The byte-stable JSON form hashes are computed over."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def chain_record_hash(prev_hash: str, payload: Dict[str, object]) -> str:
    """SHA-256 hex digest binding ``payload`` to its predecessor.

    ``payload`` must not already contain ``prev_hash``/``record_hash``
    — the caller adds those to the emitted line afterwards.
    """
    digest = hashlib.sha256()
    digest.update(prev_hash.encode("ascii"))
    digest.update(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()


@dataclass(frozen=True)
class AuditRecord:
    """One audited decision with its timestamp.

    ``timestamp`` is seconds since the simulation epoch (the env
    substrate's clock), or ``None`` when no clock was attached.
    """

    sequence: int
    decision: Decision
    timestamp: Optional[float] = None

    @property
    def granted(self) -> bool:
        return self.decision.granted

    @property
    def subject(self) -> Optional[str]:
        return self.decision.request.subject

    @property
    def obj(self) -> str:
        return self.decision.request.obj

    @property
    def transaction(self) -> str:
        return self.decision.request.transaction

    @property
    def request_id(self) -> Optional[object]:
        """The wire correlation id, when the decision carries a trace.

        This is the join key between the audit log and the obs export
        pipeline: an exported span, a flight-recorder entry, and an
        audit record for the same request all name the same id.
        """
        trace = self.decision.trace
        return trace.request_id if trace is not None else None

    @property
    def trace_id(self) -> str:
        """The distributed trace id, when one was sampled (else ``""``)."""
        trace = self.decision.trace
        return trace.trace_id if trace is not None else ""

    def describe(self) -> str:
        """One-line rendering for reports."""
        stamp = f"t={self.timestamp:.0f} " if self.timestamp is not None else ""
        outcome = "GRANT" if self.granted else "DENY"
        return (
            f"{stamp}#{self.sequence} {outcome} "
            f"{self.subject or '<unidentified>'} "
            f"{self.transaction} {self.obj}"
        )


class AuditLog:
    """An append-only, queryable record of decisions.

    :param clock: optional zero-argument callable returning the current
        time (the env substrate passes ``clock.now``); decisions are
        stamped with its value at append time.
    :param capacity: optional bound; when exceeded the oldest records
        are dropped (a ring buffer), which keeps week-long simulated
        traces memory-safe.
    :param observers: optional hub; every appended record is published
        as an ``audit.record`` event (outcome, parties, sequence).
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        capacity: Optional[int] = None,
        observers: Optional[ObserverHub] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("audit capacity must be >= 1")
        self._clock = clock
        self._capacity = capacity
        self.observers = observers
        self._records: List[AuditRecord] = []
        self._sequence = 0
        self._grant_count = 0
        self._deny_count = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, decision: Decision) -> AuditRecord:
        """Append a decision and return its audit record."""
        self._sequence += 1
        timestamp = self._clock() if self._clock is not None else None
        record = AuditRecord(self._sequence, decision, timestamp)
        self._records.append(record)
        if decision.granted:
            self._grant_count += 1
        else:
            self._deny_count += 1
        if self._capacity is not None and len(self._records) > self._capacity:
            self._records = self._records[-self._capacity :]
        hub = self.observers
        if hub:
            hub.emit(
                "audit.record",
                sequence=record.sequence,
                granted=record.granted,
                subject=record.subject,
                transaction=record.transaction,
                object=record.obj,
                timestamp=record.timestamp,
            )
        return record

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(list(self._records))

    def records(
        self,
        subject: Optional[str] = None,
        obj: Optional[str] = None,
        transaction: Optional[str] = None,
        granted: Optional[bool] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[AuditRecord]:
        """Filtered view of the retained records.

        All filters are conjunctive; ``None`` means "don't filter".
        Time filters only apply to records that carry a timestamp.
        """
        result = []
        for record in self._records:
            if subject is not None and record.subject != subject:
                continue
            if obj is not None and record.obj != obj:
                continue
            if transaction is not None and record.transaction != transaction:
                continue
            if granted is not None and record.granted != granted:
                continue
            if since is not None and (
                record.timestamp is None or record.timestamp < since
            ):
                continue
            if until is not None and (
                record.timestamp is None or record.timestamp > until
            ):
                continue
            result.append(record)
        return result

    def denials(self, subject: Optional[str] = None) -> List[AuditRecord]:
        """All retained denials, optionally for one subject."""
        return self.records(subject=subject, granted=False)

    def grants(self, subject: Optional[str] = None) -> List[AuditRecord]:
        """All retained grants, optionally for one subject."""
        return self.records(subject=subject, granted=True)

    @property
    def grant_count(self) -> int:
        """Total grants recorded (including evicted records)."""
        return self._grant_count

    @property
    def deny_count(self) -> int:
        """Total denials recorded (including evicted records)."""
        return self._deny_count

    @property
    def total(self) -> int:
        """Total decisions recorded (including evicted records)."""
        return self._grant_count + self._deny_count

    def grant_rate(self) -> float:
        """Fraction of all recorded decisions that were grants."""
        if self.total == 0:
            return 0.0
        return self._grant_count / self.total

    def summary(self) -> str:
        """One-line traffic summary for reports."""
        return (
            f"{self.total} decision(s): {self._grant_count} granted, "
            f"{self._deny_count} denied ({self.grant_rate():.1%} grant rate)"
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_jsonl(self) -> str:
        """Render retained records as hash-chained JSON Lines.

        The export carries what an external audit system needs —
        outcome, parties, matched-rule names, rationale, environment —
        not the full in-memory decision graph.  Decisions that carry a
        recorded pipeline trace additionally export their per-stage
        timings (microseconds) and distributed-trace id, so latency
        outliers can be attributed and spans joined after the fact.

        Every line carries ``prev_hash``/``record_hash``
        (:func:`chain_record_hash`), so the exported file verifies with
        :func:`verify_audit_chain` / ``repro audit verify``.
        """
        lines = []
        prev_hash = GENESIS_HASH
        for record in self._records:
            decision = record.decision
            payload: Dict[str, object] = {
                "sequence": record.sequence,
                "timestamp": record.timestamp,
                "request_id": record.request_id,
                "granted": record.granted,
                "subject": record.subject,
                "transaction": record.transaction,
                "object": record.obj,
                "rationale": decision.rationale,
                "matched_rules": [
                    m.permission.describe() for m in decision.matches
                ],
                "environment_roles": sorted(decision.environment_roles),
                "subject_roles": {
                    name: round(confidence, 6)
                    for name, confidence in sorted(
                        decision.subject_role_confidence.items()
                    )
                },
            }
            trace = decision.trace
            if trace is not None:
                if trace.trace_id:
                    payload["trace_id"] = trace.trace_id
                timings = trace.stage_timings_us()
                if timings:
                    payload["stage_timings_us"] = timings
            record_hash = chain_record_hash(prev_hash, payload)
            payload["prev_hash"] = prev_hash
            payload["record_hash"] = record_hash
            prev_hash = record_hash
            lines.append(json.dumps(payload, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Chain verification
# ----------------------------------------------------------------------
@dataclass
class ChainVerification:
    """The outcome of verifying one audit JSONL chain."""

    ok: bool
    records: int
    head_hash: str
    error: str = ""
    error_line: Optional[int] = None
    #: Parsed record payloads (chain fields included), valid prefix
    #: only when ``ok`` is False.
    entries: List[Dict[str, object]] = field(default_factory=list)

    def describe(self) -> str:
        if self.ok:
            return (
                f"chain OK: {self.records} record(s), "
                f"head {self.head_hash[:16]}..."
            )
        where = f" (line {self.error_line})" if self.error_line else ""
        return f"chain BROKEN{where}: {self.error}"


def verify_audit_chain(
    source: Union[str, Iterable[str]],
    expect_head: Optional[str] = None,
    expect_records: Optional[int] = None,
) -> ChainVerification:
    """Walk a hash-chained audit JSONL stream and verify every link.

    Detects in-place tampering, deletion, insertion, and reordering
    anywhere in the file (any of them breaks a ``prev_hash`` /
    ``record_hash`` link).  Truncation of the *tail* leaves a valid
    shorter chain, so it is only detectable against an anchor: pass
    ``expect_head`` (and optionally ``expect_records``) from a trusted
    place — the writer's ``.head`` sidecar or an evidence pack.

    :param source: the JSONL text, or an iterable of lines.
    """
    lines = source.splitlines() if isinstance(source, str) else source
    prev_hash = GENESIS_HASH
    entries: List[Dict[str, object]] = []
    count = 0
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            return ChainVerification(
                False, count, prev_hash,
                f"line is not valid JSON: {error}", line_number, entries,
            )
        if not isinstance(payload, dict):
            return ChainVerification(
                False, count, prev_hash,
                "line is not a JSON object", line_number, entries,
            )
        claimed_prev = payload.get("prev_hash")
        claimed_hash = payload.get("record_hash")
        if not isinstance(claimed_prev, str) or not isinstance(claimed_hash, str):
            return ChainVerification(
                False, count, prev_hash,
                "record is missing prev_hash/record_hash", line_number, entries,
            )
        if claimed_prev != prev_hash:
            return ChainVerification(
                False, count, prev_hash,
                f"prev_hash mismatch: chain expected {prev_hash[:16]}..., "
                f"record claims {claimed_prev[:16]}... — a record was "
                "altered, removed, or reordered",
                line_number, entries,
            )
        body = {
            key: value
            for key, value in payload.items()
            if key not in ("prev_hash", "record_hash")
        }
        computed = chain_record_hash(claimed_prev, body)
        if computed != claimed_hash:
            return ChainVerification(
                False, count, prev_hash,
                "record_hash mismatch: record content was tampered with",
                line_number, entries,
            )
        prev_hash = claimed_hash
        count += 1
        entries.append(payload)
    if expect_records is not None and count != expect_records:
        return ChainVerification(
            False, count, prev_hash,
            f"chain holds {count} record(s) but the anchor expects "
            f"{expect_records} — the log was truncated", None, entries,
        )
    if expect_head is not None and prev_hash != expect_head:
        return ChainVerification(
            False, count, prev_hash,
            f"chain head {prev_hash[:16]}... does not match the anchor "
            f"{expect_head[:16]}... — the log tail was truncated or "
            "replaced", None, entries,
        )
    return ChainVerification(True, count, prev_hash, "", None, entries)


def read_head_anchor(path: str) -> Optional[Dict[str, object]]:
    """Load a writer's ``.head`` sidecar (``None`` when absent)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    return payload


# ----------------------------------------------------------------------
# Serving-path chained writer
# ----------------------------------------------------------------------
class HashChainWriter:
    """Append hash-chained audit records to a JSONL file, off-thread.

    The serving contract mirrors the trace sinks': :meth:`append`
    never blocks and never raises — a full queue drops the record and
    counts it (a drop leaves a ``sequence`` gap but an intact chain).
    The writer thread owns the file, computes the chain in arrival
    order, resumes an existing chain on open (by re-reading the last
    line), and maintains a ``<path>.head`` sidecar anchor
    (``{"records": N, "head_hash": ...}``) that ``repro audit verify``
    uses to detect tail truncation.  No rotation, deliberately — a
    rotated-away prefix would be indistinguishable from truncation.
    """

    def __init__(self, path: str, queue_size: int = 4096) -> None:
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.path = path
        self.head_path = path + ".head"
        self.accepted = 0
        self.dropped = 0
        self._queue: "queue.Queue[Optional[Dict[str, object]]]" = queue.Queue(
            maxsize=queue_size
        )
        self._closed = False
        self._sequence = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._prev_hash, self._records = self._resume()
        self._writer = threading.Thread(
            target=self._drain, name="grbac-audit-chain", daemon=True
        )
        self._writer.start()

    def _resume(self) -> "tuple[str, int]":
        """Pick the chain up from an existing file's last record.

        A crash (kill -9) can die mid-``write`` and leave a torn final
        line; appending after it would corrupt that record *and* the
        next one, so a torn tail — the last line unterminated or
        unparseable — is truncated away before the chain resumes.
        Interior damage is left in place for ``verify`` to report:
        only external tampering can produce it, and recovery must not
        destroy the evidence.
        """
        prev_hash = GENESIS_HASH
        records = 0
        good_end = 0  # byte offset just past the last intact line
        torn = False
        try:
            with open(self.path, "rb") as handle:
                offset = 0
                for raw in handle:
                    offset += len(raw)
                    parsed = None
                    if raw.endswith(b"\n"):
                        line = raw.strip()
                        if not line:
                            good_end = offset
                            continue
                        try:
                            parsed = json.loads(line.decode("utf-8"))
                        except (json.JSONDecodeError, UnicodeDecodeError):
                            parsed = None
                    if not isinstance(parsed, dict):
                        # Provisionally torn; a later intact line means
                        # this was interior damage, not a torn tail.
                        torn = True
                        continue
                    claimed = parsed.get("record_hash")
                    if isinstance(claimed, str):
                        prev_hash = claimed
                        records += 1
                    good_end = offset
                    torn = False
            if torn:
                with open(self.path, "r+b") as handle:
                    handle.truncate(good_end)
        except OSError:
            pass
        return prev_hash, records

    # -- producer side -------------------------------------------------
    def append(self, payload: Dict[str, object]) -> bool:
        """Queue one record (chain fields are added by the writer)."""
        if self._closed:
            self.dropped += 1
            return False
        self._sequence += 1
        record = dict(payload)
        record.setdefault("sequence", self._sequence)
        try:
            self._queue.put_nowait(record)
        except queue.Full:
            self.dropped += 1
            return False
        self.accepted += 1
        return True

    def close(self) -> None:
        """Stop the writer after it drains everything already queued."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._writer.join(timeout=5.0)

    # -- writer side ---------------------------------------------------
    def _drain(self) -> None:
        handle = open(self.path, "a", encoding="utf-8")
        try:
            while True:
                record = self._queue.get()
                if record is None:
                    break
                record_hash = chain_record_hash(self._prev_hash, record)
                record["prev_hash"] = self._prev_hash
                record["record_hash"] = record_hash
                self._prev_hash = record_hash
                self._records += 1
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
                self._write_head()
        finally:
            handle.close()

    def _write_head(self) -> None:
        try:
            with open(self.head_path, "w", encoding="utf-8") as head:
                json.dump(
                    {"records": self._records, "head_hash": self._prev_hash},
                    head,
                )
                head.write("\n")
        except OSError:  # a broken anchor must never kill the writer
            pass

    def stats(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "accepted": self.accepted,
            "dropped": self.dropped,
            "records": self._records,
        }
