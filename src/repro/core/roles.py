"""Roles — the single organizing concept of GRBAC.

The paper's thesis (§4.2) is that one concept, the *role*, can organize
all security-relevant state in a system:

* **subject roles** categorize users (Parent, Child, Authorized Guest);
* **object roles** categorize resources (entertainment devices, medical
  records);
* **environment roles** name system states (weekdays, free-time,
  kitchen-occupied) that are *active* or *inactive* over time.

All three kinds share one :class:`Role` value type distinguished by a
:class:`RoleKind` tag.  Keeping one type (rather than three classes)
mirrors the paper's "uniform application of the role concept" and lets
hierarchies, assignment tables, and the mediation engine treat role
kind as data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.core.ids import validate_identifier
from repro.exceptions import RoleKindError


class RoleKind(enum.Enum):
    """The three kinds of GRBAC role (§4.2.1–4.2.3)."""

    SUBJECT = "subject"
    OBJECT = "object"
    ENVIRONMENT = "environment"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Role:
    """A role of some :class:`RoleKind`.

    Roles compare by ``(kind, name)`` so that a subject role and an
    object role may share a name without colliding (e.g. a ``guest``
    subject role and a ``guest`` object role for the guest-room
    devices).
    """

    name: str
    kind: RoleKind
    description: str = field(default="", compare=False)
    #: Free-form metadata, e.g. a priority used by priority-based
    #: precedence, or the sensitivity level for MLS encodings.
    metadata: Mapping[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        validate_identifier(self.name, "role")
        if not isinstance(self.kind, RoleKind):
            raise RoleKindError(f"role kind must be a RoleKind, got {self.kind!r}")
        object.__setattr__(self, "metadata", dict(self.metadata))

    @property
    def qualified_name(self) -> str:
        """``kind:name`` — unambiguous across kinds, used in logs."""
        return f"{self.kind.value}:{self.name}"

    def meta(self, key: str, default: Optional[Any] = None) -> Any:
        """Return metadata ``key`` or ``default`` when absent."""
        return self.metadata.get(key, default)

    def require_kind(self, kind: RoleKind) -> "Role":
        """Assert this role has ``kind`` and return it (for call chains)."""
        if self.kind is not kind:
            raise RoleKindError(
                f"expected a {kind.value} role, got {self.qualified_name}"
            )
        return self

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.qualified_name


def subject_role(name: str, description: str = "", **metadata: Any) -> Role:
    """Convenience constructor for a subject role."""
    return Role(name, RoleKind.SUBJECT, description, metadata)


def object_role(name: str, description: str = "", **metadata: Any) -> Role:
    """Convenience constructor for an object role."""
    return Role(name, RoleKind.OBJECT, description, metadata)


def environment_role(name: str, description: str = "", **metadata: Any) -> Role:
    """Convenience constructor for an environment role."""
    return Role(name, RoleKind.ENVIRONMENT, description, metadata)


#: The distinguished environment role that is *always* active.  Policies
#: that do not care about environment state attach permissions to this
#: role; it makes plain-RBAC policies expressible without special cases
#: in the mediation rule (§6: "traditional RBAC is essentially GRBAC
#: with subject roles only").
ANY_ENVIRONMENT = environment_role(
    "any-environment", "Distinguished always-active environment role"
)

#: The distinguished object role possessed by *every* object, for rules
#: that do not discriminate on the resource.
ANY_OBJECT = object_role("any-object", "Distinguished role possessed by all objects")
