"""Objects (resources) — the things a GRBAC system protects.

Figure 1 of the paper defines an *object* as "a system resource".
Examples from the paper: appliances (dishwasher, stereo), media objects
(movies), and sensitive digital information (medical records, tax
returns).

The class is named :class:`Resource` to avoid clashing with Python's
``object`` builtin; the module keeps the paper's terminology in its
docstrings and the public API aliases ``Object = Resource``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.core.ids import validate_identifier


@dataclass(frozen=True)
class Resource:
    """A system resource (the paper's *object*).

    Like :class:`~repro.core.subjects.Subject`, a resource is an
    immutable value object identified by name.  Attributes describe
    classifiable properties that object roles may be based on — the
    paper lists creation date, object type, sensitivity level, and
    content descriptors (§4.2.3).
    """

    #: Unique identifier, e.g. ``"livingroom/tv"``.
    name: str
    #: Classifiable properties (``{"type": "streaming_video", "rating": "G"}``).
    attributes: Mapping[str, Any] = field(default_factory=dict, compare=False)
    #: Optional human-readable description.
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        validate_identifier(self.name, "object")
        object.__setattr__(self, "attributes", dict(self.attributes))

    def attribute(self, key: str, default: Optional[Any] = None) -> Any:
        """Return attribute ``key`` or ``default`` when absent."""
        return self.attributes.get(key, default)

    def with_attributes(self, **updates: Any) -> "Resource":
        """Return a copy of this resource with extra/overridden attributes."""
        merged: Dict[str, Any] = dict(self.attributes)
        merged.update(updates)
        return Resource(self.name, merged, self.description)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


#: Alias matching the paper's vocabulary.
Object = Resource
