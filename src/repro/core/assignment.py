"""Role assignment — authorized role sets (§4.1.1).

The paper: "Each subject has an *authorized role set*, which consists
of all the roles that the subject has been authorized to use.  We use
the term *role possession* to denote that a role is in the authorized
role set of a subject."

GRBAC extends possession to objects (§4.2.3): each object possesses a
set of object roles.  Environment roles are *not* assigned here — their
membership ("activation") is a function of system state and lives in
:mod:`repro.env.activation`.

:class:`AssignmentTable` is a kind-checked many-to-many mapping between
entity names and roles, used once for subject-role assignment and once
for object-role assignment inside :class:`~repro.core.policy.GrbacPolicy`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.core.roles import Role, RoleKind
from repro.exceptions import UnknownEntityError


class AssignmentTable:
    """A many-to-many mapping of entity names to roles of one kind.

    The table stores *direct* assignments only; hierarchy expansion is
    the mediation engine's job.  A validation hook lets the policy
    enforce constraints (static separation of duty, cardinality) at
    assignment time.
    """

    def __init__(
        self,
        kind: RoleKind,
        entity_label: str,
        validator: Optional[Callable[[str, Role, Set[str]], None]] = None,
    ) -> None:
        """
        :param kind: the role kind this table accepts.
        :param entity_label: ``"subject"`` or ``"object"``, for errors.
        :param validator: optional hook called as
            ``validator(entity, role, current_role_names)`` before each
            assignment; it should raise to veto.
        """
        self._kind = kind
        self._entity_label = entity_label
        self._validator = validator
        #: entity name -> set of directly assigned role names
        self._by_entity: Dict[str, Set[str]] = {}
        #: role name -> set of entity names
        self._by_role: Dict[str, Set[str]] = {}
        #: role name -> Role (to return Role objects from queries)
        self._roles: Dict[str, Role] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def assign(self, entity: str, role: Role) -> None:
        """Add ``role`` to the authorized role set of ``entity``.

        Idempotent.  Runs the validation hook (if any) first, so a
        vetoed assignment leaves the table unchanged.
        """
        role.require_kind(self._kind)
        current = self._by_entity.get(entity, set())
        if role.name in current:
            return
        if self._validator is not None:
            self._validator(entity, role, set(current))
        self._by_entity.setdefault(entity, set()).add(role.name)
        self._by_role.setdefault(role.name, set()).add(entity)
        self._roles[role.name] = role

    def revoke(self, entity: str, role: "Role | str") -> None:
        """Remove a direct assignment.

        :raises UnknownEntityError: if the assignment does not exist.
        """
        role_name = role.name if isinstance(role, Role) else role
        if role_name not in self._by_entity.get(entity, ()):
            raise UnknownEntityError(
                f"{self._entity_label} {entity!r} is not assigned "
                f"{self._kind.value} role {role_name!r}"
            )
        self._by_entity[entity].discard(role_name)
        self._by_role[role_name].discard(entity)

    def revoke_all(self, entity: str) -> None:
        """Remove every assignment of ``entity``. Safe when none exist."""
        for role_name in list(self._by_entity.get(entity, ())):
            self._by_role[role_name].discard(entity)
        self._by_entity.pop(entity, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def roles_of(self, entity: str) -> Set[Role]:
        """The directly assigned roles of ``entity`` (empty set if none)."""
        return {self._roles[name] for name in self._by_entity.get(entity, ())}

    def role_names_of(self, entity: str) -> Set[str]:
        """Names of directly assigned roles of ``entity``."""
        return set(self._by_entity.get(entity, ()))

    def members_of(self, role: "Role | str") -> Set[str]:
        """Entity names directly assigned to ``role``."""
        role_name = role.name if isinstance(role, Role) else role
        return set(self._by_role.get(role_name, ()))

    def possesses(self, entity: str, role: "Role | str") -> bool:
        """True iff ``entity`` is *directly* assigned ``role``."""
        role_name = role.name if isinstance(role, Role) else role
        return role_name in self._by_entity.get(entity, ())

    def entities(self) -> List[str]:
        """All entities with at least one assignment."""
        return [name for name, roles in self._by_entity.items() if roles]

    def assignments(self) -> Iterable[tuple]:
        """Yield ``(entity, role)`` pairs for every direct assignment."""
        for entity, role_names in self._by_entity.items():
            for role_name in sorted(role_names):
                yield entity, self._roles[role_name]

    def member_count(self, role: "Role | str") -> int:
        """Number of entities directly assigned to ``role``."""
        role_name = role.name if isinstance(role, Role) else role
        return len(self._by_role.get(role_name, ()))

    def __len__(self) -> int:
        return sum(len(roles) for roles in self._by_entity.values())
