"""Permissions — the GRBAC policy rules (§4.2.4).

A GRBAC permission authorizes (or, with a negative sign, forbids) a
transaction for the triple *(subject role, object role, environment
role)*.  The paper's access mediation rule quantifies existentially
over all three dimensions; attaching the rule to roles — never to
individual subjects or objects — is what makes policies small.

Positive **and** negative rights both "arise naturally in the context
of the home" (§3): adults are granted access to all appliances while
children are *denied* access to dangerous ones.  The :class:`Sign`
enum models this; conflicts between matching grant and deny rules are
resolved by a precedence strategy (:mod:`repro.core.precedence`).

The optional ``min_confidence`` field implements §5.2: a permission may
require that the subject was authenticated *into the matching subject
role* with at least the given confidence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.roles import Role, RoleKind
from repro.core.transactions import Transaction
from repro.exceptions import PolicyError


class Sign(enum.Enum):
    """Whether a permission grants or denies its transaction."""

    GRANT = "grant"
    DENY = "deny"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Permission:
    """One policy rule: ``sign transaction for (rs, ro, re)``.

    ``subject_role``, ``object_role`` and ``environment_role`` are the
    roles the rule is written against; hierarchy expansion at mediation
    time means a rule written for *entertainment-devices* also covers
    an object whose direct role is *television* when *television*
    specializes *entertainment-devices*.
    """

    subject_role: Role
    object_role: Role
    environment_role: Role
    transaction: Transaction
    sign: Sign = Sign.GRANT
    #: Minimum authentication confidence (0..1] required for the
    #: subject-role claim that matches this rule.  ``0.0`` means any
    #: confidence is acceptable.
    min_confidence: float = 0.0
    #: Priority for the PRIORITY precedence strategy; larger wins.
    priority: int = 0
    #: Optional human-readable name for audit output.
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        self.subject_role.require_kind(RoleKind.SUBJECT)
        self.object_role.require_kind(RoleKind.OBJECT)
        self.environment_role.require_kind(RoleKind.ENVIRONMENT)
        if not isinstance(self.sign, Sign):
            raise PolicyError(f"permission sign must be a Sign, got {self.sign!r}")
        if not 0.0 <= self.min_confidence <= 1.0:
            raise PolicyError(
                f"min_confidence must be in [0, 1], got {self.min_confidence}"
            )

    @property
    def key(self) -> tuple:
        """The rule tuple the policy deduplicates on."""
        return (
            self.subject_role.name,
            self.object_role.name,
            self.environment_role.name,
            self.transaction.name,
            self.sign,
        )

    def describe(self) -> str:
        """Human-readable one-line rendering, used by audit logs.

        Memoized on the instance: resolution rationales embed this
        string on every decision, and the fields it renders are frozen.
        """
        cached = self.__dict__.get("_described")
        if cached is not None:
            return cached
        label = f"[{self.name}] " if self.name else ""
        confidence = (
            f" (confidence >= {self.min_confidence:.0%})"
            if self.min_confidence > 0
            else ""
        )
        text = (
            f"{label}{self.sign.value} {self.transaction.name} to "
            f"{self.subject_role.name} on {self.object_role.name} "
            f"when {self.environment_role.name}{confidence}"
        )
        object.__setattr__(self, "_described", text)
        return text

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.describe()
