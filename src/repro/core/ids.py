"""Identifier discipline for GRBAC entities.

All model entities (subjects, objects, roles, transactions) are referred
to by short string identifiers.  Identifiers are case-sensitive,
non-empty, and may not contain whitespace; this keeps audit logs, DSL
text, and error messages unambiguous.

The helpers here are deliberately tiny — they exist so that every
constructor validates names the same way and produces the same error
messages.
"""

from __future__ import annotations

import re

from repro.exceptions import PolicyError

#: Pattern for a valid entity identifier: at least one character, no
#: whitespace.  Punctuation such as ``-``, ``_``, ``.``, ``:`` and ``/``
#: is allowed because device paths ("kitchen/tv") and dotted names make
#: natural identifiers in the home domain.
_IDENT_RE = re.compile(r"^\S+$")


def validate_identifier(name: str, kind: str = "identifier") -> str:
    """Validate ``name`` as an entity identifier and return it.

    :param name: proposed identifier.
    :param kind: human-readable description used in error messages
        (e.g. ``"subject"`` or ``"role"``).
    :raises PolicyError: if the identifier is empty, not a string, or
        contains whitespace.
    """
    if not isinstance(name, str):
        raise PolicyError(f"{kind} name must be a string, got {type(name).__name__}")
    if not name:
        raise PolicyError(f"{kind} name must be non-empty")
    if not _IDENT_RE.match(name):
        raise PolicyError(f"{kind} name {name!r} must not contain whitespace")
    return name


def qualify(namespace: str, name: str) -> str:
    """Join a namespace and a local name into one identifier.

    Used by the home registry to map devices into globally unique
    object identifiers, e.g. ``qualify("livingroom", "tv")`` →
    ``"livingroom/tv"``.
    """
    validate_identifier(namespace, "namespace")
    validate_identifier(name, "name")
    return f"{namespace}/{name}"
