"""Role activation and sessions (§4.1.2 "Role Activation").

The paper: "restrict a subject's role usage to a subset of his
authorized role set at all times, so that only those roles that are
necessary to perform his current duties are active... Only roles in
the *active role set* can be used to execute transactions."

A :class:`Session` records the active subject-role set of one subject.
Activation is checked against

* the subject's authorized role set (you can only activate a role you
  possess), and
* the policy's dynamic separation-of-duty constraints (two DSD-
  conflicting roles may never be simultaneously active).

The mediation engine accepts an optional session with each request;
when present, only active roles (hierarchy-expanded) produce matches —
this is how "active roles take precedence over inactive roles" is
realized.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional, Set

from repro.core.roles import Role, RoleKind
from repro.exceptions import ActivationError, SessionError
from repro.obs.observers import ObserverHub


class Session:
    """One subject's login/interaction session with an active role set.

    Sessions are created through :class:`SessionManager` (which wires
    in the policy's checks); they should not be constructed directly
    except in tests.
    """

    def __init__(
        self,
        session_id: str,
        subject: str,
        authorized: Callable[[str], Set[str]],
        dsd_check: Callable[[str, str, Set[str]], None],
    ) -> None:
        self.session_id = session_id
        self.subject = subject
        self._authorized = authorized
        self._dsd_check = dsd_check
        self._active: Set[str] = set()
        self._terminated = False
        #: Observer hub activation changes are published to (set by
        #: :class:`SessionManager` when it has one).
        self.observers: Optional[ObserverHub] = None
        #: Monotonic counter bumped on every change to the active role
        #: set.  The mediation engine's compiled path memoizes the
        #: session's expanded role profile keyed on this epoch, so the
        #: memo can never serve a stale activation state.
        self.epoch = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def active_roles(self) -> Set[str]:
        """Names of the currently active roles (a copy)."""
        return set(self._active)

    @property
    def terminated(self) -> bool:
        return self._terminated

    def is_active(self, role: "Role | str") -> bool:
        """True iff ``role`` is in the active role set."""
        name = role.name if isinstance(role, Role) else role
        return name in self._active

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------
    def activate(self, role: "Role | str") -> None:
        """Add ``role`` to the active role set.

        :raises SessionError: if the session has been terminated.
        :raises ActivationError: if the subject does not possess the
            role.
        :raises ConstraintViolationError: if activating it would
            violate a dynamic separation-of-duty constraint.
        """
        self._require_live()
        name = role.name if isinstance(role, Role) else role
        if isinstance(role, Role):
            role.require_kind(RoleKind.SUBJECT)
        if name in self._active:
            return
        if name not in self._authorized(self.subject):
            raise ActivationError(
                f"subject {self.subject!r} is not authorized for role {name!r}"
            )
        self._dsd_check(self.subject, name, self._active)
        self._active.add(name)
        self.epoch += 1
        hub = self.observers
        if hub:
            hub.emit(
                "session.activate",
                session=self.session_id,
                subject=self.subject,
                role=name,
            )

    def deactivate(self, role: "Role | str") -> None:
        """Remove ``role`` from the active role set.

        :raises ActivationError: if the role is not active.
        """
        self._require_live()
        name = role.name if isinstance(role, Role) else role
        if name not in self._active:
            raise ActivationError(
                f"role {name!r} is not active in session {self.session_id!r}"
            )
        self._active.discard(name)
        self.epoch += 1
        hub = self.observers
        if hub:
            hub.emit(
                "session.deactivate",
                session=self.session_id,
                subject=self.subject,
                role=name,
            )

    def activate_all_authorized(self) -> Set[str]:
        """Activate every authorized role that DSD allows.

        Roles are attempted in sorted order for determinism; roles
        whose activation a DSD constraint vetoes are skipped.  Returns
        the set of role names actually activated by this call.
        """
        self._require_live()
        activated: Set[str] = set()
        for name in sorted(self._authorized(self.subject)):
            if name in self._active:
                continue
            try:
                self.activate(name)
            except Exception:
                continue
            activated.add(name)
        return activated

    def drop_all(self) -> None:
        """Deactivate every role (the session stays alive)."""
        self._require_live()
        if self._active:
            self._active.clear()
            self.epoch += 1

    def _require_live(self) -> None:
        if self._terminated:
            raise SessionError(f"session {self.session_id!r} is terminated")


class SessionManager:
    """Creates and tracks sessions for a policy.

    The manager is handed the two policy hooks a session needs —
    the authorized-role-set lookup and the DSD activation check — so
    that :mod:`repro.core.policy` can own constraint data without a
    circular dependency.
    """

    def __init__(
        self,
        authorized: Callable[[str], Set[str]],
        dsd_check: Callable[[str, str, Set[str]], None],
        observers: Optional[ObserverHub] = None,
    ) -> None:
        self._authorized = authorized
        self._dsd_check = dsd_check
        self._sessions: Dict[str, Session] = {}
        self._counter = itertools.count(1)
        #: Hub that ``session.open`` / ``session.close`` (and, via the
        #: sessions themselves, activation changes) are published to.
        self.observers = observers

    def open(self, subject: str, activate: Optional[List[str]] = None) -> Session:
        """Open a session for ``subject``.

        :param activate: role names to activate immediately; activation
            errors propagate, leaving the session open with whatever
            activated before the failure.
        """
        session_id = f"session-{next(self._counter)}"
        session = Session(session_id, subject, self._authorized, self._dsd_check)
        session.observers = self.observers
        self._sessions[session_id] = session
        hub = self.observers
        if hub:
            hub.emit("session.open", session=session_id, subject=subject)
        if activate:
            for role_name in activate:
                session.activate(role_name)
        return session

    def get(self, session_id: str) -> Session:
        """Look up a live session by id.

        :raises SessionError: when unknown or already closed.
        """
        session = self._sessions.get(session_id)
        if session is None or session.terminated:
            raise SessionError(f"no live session {session_id!r}")
        return session

    def close(self, session: "Session | str") -> None:
        """Terminate a session; idempotent on already-closed sessions."""
        session_id = session.session_id if isinstance(session, Session) else session
        found = self._sessions.pop(session_id, None)
        if found is not None:
            found._terminated = True
            found._active.clear()
            found.epoch += 1
            hub = self.observers
            if hub:
                hub.emit(
                    "session.close", session=session_id, subject=found.subject
                )

    def sessions_of(self, subject: str) -> List[Session]:
        """All live sessions of ``subject``."""
        return [s for s in self._sessions.values() if s.subject == subject]

    def __iter__(self) -> Iterator[Session]:
        return iter(list(self._sessions.values()))

    def __len__(self) -> int:
        return len(self._sessions)
