"""Administrative control — who may change the policy itself.

The paper's homeowners "need to configure and manage information
security policies in their homes" (§3) — which makes *policy
administration* a security-relevant operation in its own right.  This
module provides an ARBAC-style administrative layer: administrative
rights are themselves attached to subject roles and scoped to a
subtree of the role hierarchy.

Example: the *parent* role may assign/revoke/delegate any role under
*authorized-guest* (so Mom can let the repairman in), but not *parent*
itself — children cannot be promoted by anyone but the household
administrator.

Every administrative action is checked against the actor's effective
roles and, when permitted, executed against the policy and published
on the event bus (``admin.<action>``) so the audit story covers policy
*changes*, not just accesses.
"""

from __future__ import annotations

import enum
from datetime import datetime
from typing import List, Optional, Set, Tuple

from repro.core.delegation import Delegation, DelegationManager
from repro.core.permissions import Permission
from repro.core.policy import GrbacPolicy
from repro.env.events import EventBus
from repro.exceptions import AccessDeniedError, PolicyError


class AdminAction(enum.Enum):
    """Administrable operations on the policy."""

    ASSIGN_ROLE = "assign-role"
    REVOKE_ROLE = "revoke-role"
    DELEGATE_ROLE = "delegate-role"
    ADD_RULE = "add-rule"
    REMOVE_RULE = "remove-rule"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class PolicyAdministrator:
    """Mediated administrative interface over a policy.

    :param policy: the policy being administered.
    :param delegations: optional delegation manager for
        :attr:`AdminAction.DELEGATE_ROLE`.
    :param bus: optional event bus for ``admin.*`` events.
    """

    def __init__(
        self,
        policy: GrbacPolicy,
        delegations: Optional[DelegationManager] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        self._policy = policy
        self._delegations = delegations
        self._bus = bus
        #: (admin role, action, scope role) triples.
        self._grants: Set[Tuple[str, AdminAction, str]] = set()

    # ------------------------------------------------------------------
    # Configuring administrative rights
    # ------------------------------------------------------------------
    def grant_admin(
        self, admin_role: str, action: AdminAction, scope_role: str
    ) -> None:
        """Let holders of ``admin_role`` perform ``action`` on roles at
        or below ``scope_role`` in the subject-role hierarchy."""
        self._policy.subject_roles.role(admin_role)
        self._policy.subject_roles.role(scope_role)
        if not isinstance(action, AdminAction):
            raise PolicyError(f"unknown administrative action {action!r}")
        self._grants.add((admin_role, action, scope_role))

    def admin_grants(self) -> List[Tuple[str, AdminAction, str]]:
        """All configured administrative rights."""
        return sorted(self._grants, key=lambda g: (g[0], g[1].value, g[2]))

    # ------------------------------------------------------------------
    # The administrative check
    # ------------------------------------------------------------------
    def may(self, actor: str, action: AdminAction, target_role: str) -> bool:
        """True iff ``actor`` may perform ``action`` on ``target_role``.

        The actor's *effective* roles are matched against admin grants;
        the target must be the scope role or one of its
        specializations.
        """
        hierarchy = self._policy.subject_roles
        hierarchy.role(target_role)
        actor_roles = {r.name for r in self._policy.effective_subject_roles(actor)}
        for admin_role, granted_action, scope_role in self._grants:
            if granted_action is not action:
                continue
            if admin_role not in actor_roles:
                continue
            if hierarchy.is_specialization_of(target_role, scope_role):
                return True
        return False

    def _require(self, actor: str, action: AdminAction, target_role: str) -> None:
        if not self.may(actor, action, target_role):
            raise AccessDeniedError(
                f"{actor!r} may not {action.value} for role {target_role!r}"
            )

    # ------------------------------------------------------------------
    # Mediated administrative operations
    # ------------------------------------------------------------------
    def assign_role(self, actor: str, subject: str, role: str) -> None:
        """Assign ``role`` to ``subject`` on ``actor``'s authority."""
        self._require(actor, AdminAction.ASSIGN_ROLE, role)
        self._policy.assign_subject(subject, role)
        self._publish("admin.assign-role", actor, subject=subject, role=role)

    def revoke_role(self, actor: str, subject: str, role: str) -> None:
        """Revoke ``role`` from ``subject`` on ``actor``'s authority."""
        self._require(actor, AdminAction.REVOKE_ROLE, role)
        self._policy.revoke_subject(subject, role)
        self._publish("admin.revoke-role", actor, subject=subject, role=role)

    def delegate_role(
        self, actor: str, subject: str, role: str, until: datetime
    ) -> Delegation:
        """Time-box ``role`` to ``subject`` on ``actor``'s authority."""
        if self._delegations is None:
            raise PolicyError("no delegation manager attached")
        self._require(actor, AdminAction.DELEGATE_ROLE, role)
        delegation = self._delegations.delegate(
            subject, role, until=until, granted_by=actor
        )
        self._publish(
            "admin.delegate-role",
            actor,
            subject=subject,
            role=role,
            delegation=delegation.delegation_id,
        )
        return delegation

    def add_rule(self, actor: str, permission: Permission) -> Permission:
        """Add a permission whose subject role is in the actor's scope."""
        self._require(actor, AdminAction.ADD_RULE, permission.subject_role.name)
        added = self._policy.add_permission(permission)
        self._publish("admin.add-rule", actor, rule=permission.describe())
        return added

    def remove_rule(self, actor: str, permission: Permission) -> None:
        """Remove a permission whose subject role is in the actor's scope."""
        self._require(
            actor, AdminAction.REMOVE_RULE, permission.subject_role.name
        )
        self._policy.remove_permission(permission)
        self._publish("admin.remove-rule", actor, rule=permission.describe())

    def _publish(self, event_type: str, actor: str, **payload) -> None:
        if self._bus is not None:
            self._bus.publish(event_type, actor=actor, **payload)
